#include "service/protocol.hh"

#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <set>
#include <stdexcept>
#include <thread>

#include "cpu/trace_replay.hh"
#include "sim/checkpoint.hh"
#include "trace/reader.hh"
#include "workloads/spec.hh"

namespace contutto::service
{

std::string
hashHex(std::uint64_t h)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)h);
    return buf;
}

Request
Request::fromJson(const Json &j)
{
    Request r;
    r.id = j.at("id").asString();
    if (r.id.empty())
        throw ProtocolError("submit: empty id");
    if (r.id.size() > 256)
        throw ProtocolError("submit: id too long");
    r.kind = j.at("kind").asString();
    r.seed = j.getU64("seed", 1);
    if (const Json *p = j.find("priority"))
        r.priority = p->asI64();
    r.deadlineMs = j.getU64("deadlineMs", 0);
    r.stream = j.getBool("stream", false);
    r.traceId = j.getU64("traceId", 0);
    if (const Json *c = j.find("config")) {
        if (!c->isObject())
            throw ProtocolError("submit: config must be an object");
        r.config = *c;
    }
    return r;
}

Json
Request::toJson() const
{
    Json j = Json::object();
    j.set("type", Json::string("submit"));
    j.set("id", Json::string(id));
    j.set("kind", Json::string(kind));
    j.set("seed", Json::number(seed));
    j.set("priority", Json::number(priority));
    j.set("deadlineMs", Json::number(deadlineMs));
    // Only when set: a non-streaming submit keeps the exact wire
    // bytes it had before the telemetry plane existed.
    if (stream)
        j.set("stream", Json::boolean(true));
    if (traceId != 0)
        j.set("traceId", Json::number(traceId));
    j.set("config", config);
    return j;
}

namespace
{

/**
 * Walk @p config applying each member to a knob, collecting typos.
 * Campaign configs are small; a linear table keeps each kind's
 * knob list next to its Spec without macro machinery.
 */
class KnobReader
{
  public:
    explicit KnobReader(const Json &config) : config_(config) {}

    void
    u32(const char *name, unsigned &out)
    {
        if (const Json *v = config_.find(name)) {
            std::uint64_t raw = v->asU64();
            if (raw > 0xffffffffull)
                throw ProtocolError(std::string("config: ") + name
                                    + " out of range");
            out = unsigned(raw);
            ++consumed_;
        }
    }

    void
    u64(const char *name, std::uint64_t &out)
    {
        if (const Json *v = config_.find(name)) {
            out = v->asU64();
            ++consumed_;
        }
    }

    void
    str(const char *name, std::string &out)
    {
        if (const Json *v = config_.find(name)) {
            out = v->asString();
            ++consumed_;
        }
    }

    /** Every member must have matched a knob. */
    void
    finish() const
    {
        if (consumed_ == config_.members().size())
            return;
        // Name the first offender for the error message.
        for (const auto &kv : config_.members()) {
            if (!known_.count(kv.first))
                throw ProtocolError("config: unknown knob '"
                                    + kv.first + "'");
        }
        throw ProtocolError("config: unknown knob");
    }

    /** Record a knob name as known (even if absent). */
    void
    known(std::initializer_list<const char *> names)
    {
        for (const char *n : names)
            known_.insert(n);
    }

  private:
    const Json &config_;
    std::size_t consumed_ = 0;
    std::set<std::string> known_;
};

} // namespace

CampaignJob::CampaignJob(const std::string &kind,
                         std::uint64_t seed, const Json &config)
    : kind_(kind), seed_(seed)
{
    KnobReader k(config);
    if (kind == "ras_soak") {
        k.known({"bitFlips", "frameCorruptions", "frameDrops",
                 "burstErrors", "engineStalls", "ops", "faultBase",
                 "faultSize", "durationUs"});
        k.u32("bitFlips", soak_.bitFlips);
        k.u32("frameCorruptions", soak_.frameCorruptions);
        k.u32("frameDrops", soak_.frameDrops);
        k.u32("burstErrors", soak_.burstErrors);
        k.u32("engineStalls", soak_.engineStalls);
        k.u32("ops", soak_.ops);
        k.u64("faultBase", soak_.faultBase);
        k.u64("faultSize", soak_.faultSize);
        std::uint64_t durationUs = soak_.duration / microseconds(1);
        k.u64("durationUs", durationUs);
        soak_.duration = microseconds(durationUs);
        k.finish();
        if (soak_.ops == 0)
            throw ProtocolError("config: ops must be >= 1");
        soak_.seed = seed;
        configHash_ = soak_.hash();
    } else if (kind == "crash") {
        k.known({"powerCuts", "regionBlocks", "queueDepth",
                 "longOutageEvery", "brownouts", "dimmCapacityMiB"});
        k.u32("powerCuts", crash_.powerCuts);
        k.u32("regionBlocks", crash_.regionBlocks);
        k.u32("queueDepth", crash_.queueDepth);
        k.u32("longOutageEvery", crash_.longOutageEvery);
        k.u32("brownouts", crash_.brownouts);
        std::uint64_t capMiB = crash_.dimmCapacity / MiB;
        k.u64("dimmCapacityMiB", capMiB);
        crash_.dimmCapacity = capMiB * MiB;
        k.finish();
        if (crash_.powerCuts == 0 || crash_.regionBlocks == 0
            || crash_.queueDepth == 0)
            throw ProtocolError(
                "config: powerCuts/regionBlocks/queueDepth must "
                "be >= 1");
        if (std::uint64_t(crash_.regionBlocks) * 4096
            > crash_.dimmCapacity)
            throw ProtocolError(
                "config: region larger than the DIMM");
        crash_.seed = seed;
        configHash_ = crash_.hash();
    } else if (kind == "spec") {
        k.known({"benchmark", "buffer", "knob", "instructions",
                 "sampleMode", "sampleWarmup", "sampleWindow",
                 "samplePeriod"});
        k.u32("benchmark", spec_.benchmark);
        k.u32("buffer", spec_.buffer);
        k.u32("knob", spec_.knob);
        k.u64("instructions", spec_.instructions);
        unsigned sampleMode = 0;
        k.u32("sampleMode", sampleMode);
        spec_.sampling.enabled = sampleMode != 0;
        k.u64("sampleWarmup", spec_.sampling.warmupUnits);
        k.u64("sampleWindow", spec_.sampling.windowUnits);
        k.u64("samplePeriod", spec_.sampling.periodUnits);
        k.finish();
        if (spec_.benchmark >= 12)
            throw ProtocolError(
                "config: benchmark must be 0..11 (CINT2006)");
        if (spec_.buffer > 1)
            throw ProtocolError(
                "config: buffer must be 0 (centaur) or 1 "
                "(contutto)");
        if (spec_.buffer == 0 ? spec_.knob > 3 : spec_.knob > 7)
            throw ProtocolError(
                "config: knob out of range for the buffer");
        if (spec_.instructions == 0
            || spec_.instructions > 20'000'000)
            throw ProtocolError(
                "config: instructions must be 1..20000000");
        if (spec_.sampling.enabled && !spec_.sampling.valid())
            throw ProtocolError(
                "config: sampling knobs invalid (need window >= 1 "
                "and warmup+window <= period)");
        ckpt::Section s("spec");
        s.putU64(spec_.benchmark);
        s.putU64(spec_.buffer);
        s.putU64(spec_.knob);
        s.putU64(spec_.instructions);
        // Domain-separate from the other kinds' hashes; the
        // sampling knobs fold on top (disabled leaves the detailed
        // hash — and its memo entries — untouched).
        configHash_ = spec_.sampling.fold(
            ckpt::fnv1a(s.bytes().data(), s.bytes().size(),
                        0x53504543ull));
    } else if (kind == "trace") {
        k.known({"path", "buffer", "knob", "timed", "window",
                 "sampleMode", "sampleWarmup", "sampleWindow",
                 "samplePeriod"});
        k.str("path", trace_.path);
        k.u32("buffer", trace_.buffer);
        k.u32("knob", trace_.knob);
        k.u32("timed", trace_.timed);
        k.u32("window", trace_.window);
        unsigned sampleMode = 0;
        k.u32("sampleMode", sampleMode);
        trace_.sampling.enabled = sampleMode != 0;
        k.u64("sampleWarmup", trace_.sampling.warmupUnits);
        k.u64("sampleWindow", trace_.sampling.windowUnits);
        k.u64("samplePeriod", trace_.sampling.periodUnits);
        k.finish();
        if (trace_.path.empty())
            throw ProtocolError("config: path is required");
        if (trace_.buffer > 1)
            throw ProtocolError(
                "config: buffer must be 0 (centaur) or 1 "
                "(contutto)");
        if (trace_.buffer == 0 ? trace_.knob > 3 : trace_.knob > 7)
            throw ProtocolError(
                "config: knob out of range for the buffer");
        if (trace_.timed > 1)
            throw ProtocolError("config: timed must be 0 or 1");
        if (trace_.window == 0 || trace_.window > 1024)
            throw ProtocolError("config: window must be 1..1024");
        if (trace_.sampling.enabled && !trace_.sampling.valid())
            throw ProtocolError(
                "config: sampling knobs invalid (need window >= 1 "
                "and warmup+window <= period)");
        // Validate the file at admission; a corrupt or missing
        // trace fails here, not after a queue wait.
        try {
            trace::MappedTrace bin(trace_.path);
            trace_.checksum = bin.checksum();
        } catch (const trace::Error &e) {
            throw ProtocolError(std::string("config: ") + e.what());
        }
        ckpt::Section s("trace");
        s.putU64(trace_.buffer);
        s.putU64(trace_.knob);
        s.putU64(trace_.timed);
        s.putU64(trace_.window);
        // The trace's content identity, not its path: the memo key
        // must survive renames and reject edited files.
        s.putU64(trace_.checksum);
        // Domain-separate from the other kinds' hashes; sampling
        // knobs fold on top, as for spec.
        configHash_ = trace_.sampling.fold(
            ckpt::fnv1a(s.bytes().data(), s.bytes().size(),
                        0x54524143ull));
    } else if (kind == "spin") {
        k.known({"spinMs"});
        k.u64("spinMs", spinMs_);
        k.finish();
        if (spinMs_ > 60'000)
            throw ProtocolError("config: spinMs above 60s cap");
        ckpt::Section s("spin");
        s.putU64(spinMs_);
        configHash_ = ckpt::fnv1a(s.bytes().data(),
                                  s.bytes().size(),
                                  // Domain-separate from the
                                  // campaign spec hashes.
                                  0x5350494eull);
    } else {
        throw ProtocolError("submit: unknown kind '" + kind + "'");
    }
}

namespace
{

void
putCounter(Json &payload, const char *name, std::uint64_t v)
{
    payload.set(name, Json::number(v));
}

} // namespace

std::string
CampaignJob::runSpec(const std::atomic<bool> &cancel,
                     Progress *progress, Json payload) const
{
    auto profiles = workloads::specCint2006();
    const cpu::WorkloadProfile &prof =
        profiles.at(spec_.benchmark);

    cpu::Power8System::Params sp;
    if (spec_.buffer == 0) {
        const centaur::CentaurModel::Config configs[] = {
            centaur::CentaurModel::optimized(),
            centaur::CentaurModel::balanced(),
            centaur::CentaurModel::conservative(),
            centaur::CentaurModel::slowest(),
        };
        sp.buffer = cpu::BufferKind::centaur;
        sp.centaurConfig = configs[spec_.knob];
        sp.dimms = {cpu::DimmSpec{mem::MemTech::dram, 1 * GiB, {},
                                  {}}};
    } else {
        sp.buffer = cpu::BufferKind::contutto;
        sp.dimms = {
            cpu::DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}},
            cpu::DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}}};
    }
    cpu::Power8System sys(sp);
    if (!sys.train())
        throw std::runtime_error("spec: link training failed");
    if (spec_.buffer == 1)
        sys.card()->mbs().setKnobPosition(spec_.knob);

    ClockDomain core("core", 250); // 4 GHz POWER8 core
    cpu::CoreModel::Params cp;
    cp.instructions = spec_.instructions;
    cp.nestOverhead = sys.params().nestOverhead;
    cp.seed = seed_;
    if (spec_.sampling.enabled)
        cp.sampler = &sys.enableSampling(spec_.sampling, seed_);
    cpu::CoreModel model("core." + prof.name, sys.eventq(), core,
                         &sys, prof, cp, sys.port());

    if (progress)
        progress->workTotal.store(spec_.instructions,
                                  std::memory_order_relaxed);
    bool finished = false;
    cpu::CoreModel::Result r;
    model.start([&](const cpu::CoreModel::Result &res) {
        r = res;
        finished = true;
    });
    std::uint64_t steps = 0;
    while (!finished && sys.eventq().step()) {
        if ((++steps & 0xfff) != 0)
            continue;
        if (cancel.load(std::memory_order_relaxed))
            throw Cancelled{};
        if (progress)
            progress->workDone.store(model.instructionsDone(),
                                     std::memory_order_relaxed);
    }
    if (progress)
        progress->workDone.store(spec_.instructions,
                                 std::memory_order_relaxed);

    // All-integer payload: byte-identical whether computed fresh,
    // replayed from the memo, or recomputed after a restart.
    payload.set("benchmark", Json::string(prof.name));
    putCounter(payload, "instructions", r.instructions);
    putCounter(payload, "misses", r.misses);
    putCounter(payload, "runtimeTicks", r.runtime);
    payload.set("simMode",
                Json::string(spec_.sampling.enabled ? "sampled"
                                                    : "detailed"));
    if (spec_.sampling.enabled) {
        const sim::SamplingReport &rep = sys.sampler()->report();
        putCounter(payload, "windows", rep.windows);
        putCounter(payload, "detailedMisses", rep.detailedUnits);
        putCounter(payload, "fastForwardMisses",
                   rep.fastForwardUnits);
        putCounter(payload, "estimateRuntimeTicks",
                   std::uint64_t(rep.estimatedRuntimeTicks));
        putCounter(payload, "ciHalfTicks",
                   std::uint64_t(rep.ciHalfWidthTicks));
    }
    return payload.dump();
}

std::string
CampaignJob::runTrace(const std::atomic<bool> &cancel,
                      Progress *progress, Json payload) const
{
    trace::MappedTrace bin(trace_.path);
    if (bin.checksum() != trace_.checksum)
        throw std::runtime_error(
            "trace: file changed since admission (checksum "
            + hashHex(bin.checksum()) + " != admitted "
            + hashHex(trace_.checksum) + ")");

    cpu::Power8System::Params sp;
    if (trace_.buffer == 0) {
        const centaur::CentaurModel::Config configs[] = {
            centaur::CentaurModel::optimized(),
            centaur::CentaurModel::balanced(),
            centaur::CentaurModel::conservative(),
            centaur::CentaurModel::slowest(),
        };
        sp.buffer = cpu::BufferKind::centaur;
        sp.centaurConfig = configs[trace_.knob];
        sp.dimms = {cpu::DimmSpec{mem::MemTech::dram, 1 * GiB, {},
                                  {}}};
    } else {
        sp.buffer = cpu::BufferKind::contutto;
        sp.dimms = {
            cpu::DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}},
            cpu::DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}}};
    }
    cpu::Power8System sys(sp);
    if (!sys.train())
        throw std::runtime_error("trace: link training failed");
    if (trace_.buffer == 1)
        sys.card()->mbs().setKnobPosition(trace_.knob);

    ClockDomain core("core", 250);
    sim::SamplingController *sampler = nullptr;
    if (trace_.sampling.enabled)
        sampler = &sys.enableSampling(trace_.sampling, seed_);

    if (progress)
        progress->workTotal.store(bin.recordCount(),
                                  std::memory_order_relaxed);
    bool finished = false;
    std::uint64_t reads = 0, writes = 0, detailed = 0;
    Tick runtime = 0;
    auto pump = [&](auto &rep) {
        std::uint64_t steps = 0;
        while (!finished && sys.eventq().step()) {
            if ((++steps & 0xfff) != 0)
                continue;
            if (cancel.load(std::memory_order_relaxed))
                throw Cancelled{};
            if (progress)
                progress->workDone.store(
                    rep.issuedSoFar(), std::memory_order_relaxed);
        }
    };
    if (trace_.timed) {
        cpu::TimedTraceReplayer::Params tp;
        tp.nestOverhead = sys.params().nestOverhead;
        tp.sampler = sampler;
        cpu::TimedTraceReplayer rep("replay", sys.eventq(), core,
                                    &sys, tp, sys.port());
        rep.start(bin, [&](const auto &r) {
            reads = r.reads;
            writes = r.writes;
            detailed = r.detailed;
            runtime = r.runtime;
            finished = true;
        });
        struct Adapter
        {
            cpu::TimedTraceReplayer &rep;
            std::uint64_t issuedSoFar() const
            {
                return rep.replayedSoFar();
            }
        } adapter{rep};
        pump(adapter);
    } else {
        cpu::MemTrace mem = cpu::MemTrace::fromBinary(bin);
        cpu::TraceReplayer::Params tp;
        tp.window = trace_.window;
        tp.nestOverhead = sys.params().nestOverhead;
        tp.sampler = sampler;
        cpu::TraceReplayer rep("replay", sys.eventq(), core, &sys,
                               tp, sys.port());
        rep.start(mem, [&](const auto &r) {
            reads = r.reads;
            writes = r.writes;
            detailed = r.reads + r.writes;
            runtime = r.runtime;
            finished = true;
        });
        pump(rep);
    }
    if (progress)
        progress->workDone.store(bin.recordCount(),
                                 std::memory_order_relaxed);

    // All-integer payload, as everywhere: byte-identical fresh,
    // memoized, or recomputed.
    payload.set("traceChecksum",
                Json::string(hashHex(trace_.checksum)));
    putCounter(payload, "records", bin.recordCount());
    putCounter(payload, "reads", reads);
    putCounter(payload, "writes", writes);
    putCounter(payload, "detailedTrips", detailed);
    putCounter(payload, "runtimeTicks", runtime);
    payload.set("replayMode", Json::string(trace_.timed ? "timed"
                                                        : "window"));
    payload.set("simMode",
                Json::string(trace_.sampling.enabled ? "sampled"
                                                     : "detailed"));
    if (trace_.sampling.enabled) {
        const sim::SamplingReport &rep = sys.sampler()->report();
        putCounter(payload, "windows", rep.windows);
        putCounter(payload, "detailedMisses", rep.detailedUnits);
        putCounter(payload, "fastForwardMisses",
                   rep.fastForwardUnits);
    }
    return payload.dump();
}

std::string
CampaignJob::run(const std::atomic<bool> &cancel,
                 Progress *progress) const
{
    Json payload = Json::object();
    payload.set("kind", Json::string(kind_));
    payload.set("seed", Json::number(seed_));
    payload.set("configHash", Json::string(hashHex(configHash_)));

    if (kind_ == "spec")
        return runSpec(cancel, progress, std::move(payload));
    if (kind_ == "trace")
        return runTrace(cancel, progress, std::move(payload));

    if (kind_ == "spin") {
        const auto started = std::chrono::steady_clock::now();
        const auto until =
            started + std::chrono::milliseconds(spinMs_);
        if (progress)
            progress->workTotal.store(spinMs_,
                                      std::memory_order_relaxed);
        while (std::chrono::steady_clock::now() < until) {
            if (cancel.load(std::memory_order_relaxed))
                throw Cancelled{};
            if (progress) {
                auto done = std::chrono::duration_cast<
                    std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - started);
                progress->workDone.store(
                    std::uint64_t(done.count()),
                    std::memory_order_relaxed);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        if (progress)
            progress->workDone.store(spinMs_,
                                     std::memory_order_relaxed);
        // Deterministic by construction: wall time spent spinning
        // never leaks into the payload.
        putCounter(payload, "spinMs", spinMs_);
        payload.set("completed", Json::boolean(true));
        return payload.dump();
    }

    if (kind_ == "ras_soak") {
        // The campaign bodies run opaque; the board still gets the
        // planned work size up front and completion at the end, so
        // a streamed frame can at least show scale and phase.
        if (progress)
            progress->workTotal.store(soak_.ops,
                                      std::memory_order_relaxed);
        ras::SoakCampaign::Result r =
            ras::SoakCampaign::run(soak_, &cancel);
        if (r.cancelled)
            throw Cancelled{};
        if (progress)
            progress->workDone.store(soak_.ops,
                                     std::memory_order_relaxed);
        payload.set("healthy", Json::boolean(r.healthy()));
        payload.set("fingerprint",
                    Json::string(hashHex(r.fingerprint())));
        putCounter(payload, "planned", r.planned);
        putCounter(payload, "applied", r.applied);
        putCounter(payload, "corrected", r.corrected);
        putCounter(payload, "uncorrectable", r.uncorrectable);
        putCounter(payload, "mismatches", r.mismatches);
        putCounter(payload, "failedOps", r.failedOps);
        putCounter(payload, "cmdRetries", r.cmdRetries);
        putCounter(payload, "linkReplays", r.linkReplays);
        putCounter(payload, "scrubPasses", r.scrubPasses);
        putCounter(payload, "escalationLevel", r.escalationLevel);
        return payload.dump();
    }

    // kind_ == "crash" (the constructor admitted nothing else).
    if (progress)
        progress->workTotal.store(crash_.powerCuts,
                                  std::memory_order_relaxed);
    storage::CrashRecoveryCampaign campaign(crash_);
    storage::CrashRecoveryCampaign::RunOptions opts;
    opts.cancel = &cancel;
    storage::CrashRecoveryCampaign::Result r = campaign.run(opts);
    if (campaign.cancelled())
        throw Cancelled{};
    if (progress)
        progress->workDone.store(crash_.powerCuts,
                                 std::memory_order_relaxed);
    putCounter(payload, "cuts", r.cuts);
    putCounter(payload, "recoveries", r.recoveries);
    putCounter(payload, "failedRecoveries", r.failedRecoveries);
    putCounter(payload, "writesSubmitted", r.writesSubmitted);
    putCounter(payload, "writesCompleted", r.writesCompleted);
    putCounter(payload, "blocksFenced", r.blocksFenced);
    putCounter(payload, "intact", r.intact);
    putCounter(payload, "torn", r.torn);
    putCounter(payload, "detectedLosses", r.detectedLosses);
    putCounter(payload, "durabilityViolations",
               r.durabilityViolations);
    return payload.dump();
}

Json
makeResult(const std::string &id, const std::string &status,
           const std::string &outcome, std::uint64_t configHash,
           std::uint64_t seed, const std::string &payloadText)
{
    Json j = Json::object();
    j.set("type", Json::string("result"));
    j.set("id", Json::string(id));
    j.set("status", Json::string(status));
    j.set("outcome", Json::string(outcome));
    j.set("configHash", Json::string(hashHex(configHash)));
    j.set("seed", Json::number(seed));
    if (!payloadText.empty())
        j.set("payload", Json::parse(payloadText));
    return j;
}

Json
makeProgress(const std::string &id, const ProgressSample &sample)
{
    Json j = Json::object();
    j.set("type", Json::string("progress"));
    j.set("id", Json::string(id));
    j.set("seq", Json::number(sample.seq));
    j.set("state", Json::string(sample.state));
    j.set("elapsedMs", Json::number(sample.elapsedMs));
    j.set("queueDepth", Json::number(sample.queueDepth));
    j.set("running", Json::number(sample.running));
    j.set("workDone", Json::number(sample.workDone));
    j.set("workTotal", Json::number(sample.workTotal));
    j.set("heartbeats", Json::number(sample.heartbeats));
    j.set("traceId", Json::number(sample.traceId));
    return j;
}

void
attachTrace(Json &result, std::uint64_t traceId,
            std::uint64_t queueUs, std::uint64_t execUs,
            std::uint64_t serializeUs)
{
    Json t = Json::object();
    t.set("id", Json::number(traceId));
    t.set("queueUs", Json::number(queueUs));
    t.set("execUs", Json::number(execUs));
    t.set("serializeUs", Json::number(serializeUs));
    t.set("totalUs",
          Json::number(queueUs + execUs + serializeUs));
    result.set("trace", t);
}

void
attachSimMode(Json &result, const CampaignJob &job)
{
    result.set("simMode", Json::string(job.sampled() ? "sampled"
                                                     : "detailed"));
    if (!job.sampled())
        return;
    const sim::SamplingConfig &c = job.samplingConfig();
    Json s = Json::object();
    s.set("warmupUnits", Json::number(c.warmupUnits));
    s.set("windowUnits", Json::number(c.windowUnits));
    s.set("periodUnits", Json::number(c.periodUnits));
    result.set("sampling", s);
}

Json
makeShed(const std::string &id, std::uint64_t retryAfterMs,
         const std::string &reason)
{
    Json j = Json::object();
    j.set("type", Json::string("shed"));
    j.set("id", Json::string(id));
    j.set("retryAfterMs", Json::number(retryAfterMs));
    j.set("reason", Json::string(reason));
    return j;
}

Json
makeError(const std::string &message)
{
    Json j = Json::object();
    j.set("type", Json::string("error"));
    j.set("message", Json::string(message));
    return j;
}

} // namespace contutto::service
