/**
 * @file
 * CampaignClient: the retrying, deadline-aware client library.
 *
 * One call = one answered request. Underneath, the client absorbs
 * everything the overload-hardened server (and the chaos plan) can
 * throw at it:
 *
 *  - *Shed responses* are not errors: the client sleeps the
 *    server's retryAfterMs hint (plus seeded jitter, so a burst of
 *    shed clients doesn't re-stampede in lock-step) and resubmits.
 *
 *  - *Lost/truncated responses and refused connections* trigger a
 *    reconnect with jittered exponential backoff. The request id is
 *    reused verbatim on every retry, so the server's idempotency
 *    guarantees at-most-one execution however many times the wire
 *    eats the answer.
 *
 *  - *A per-call wall deadline* bounds the whole retry dance; an
 *    exhausted budget returns Outcome::timedOut locally.
 *
 * Backoff is deterministic per (seed, attempt): two clients with
 * different seeds jitter differently, one client re-run with the
 * same seed sleeps the same schedule — the chaos harness depends on
 * that for reproducible burst shapes.
 */

#ifndef CONTUTTO_SERVICE_CLIENT_HH
#define CONTUTTO_SERVICE_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.hh"
#include "sim/random.hh"

namespace contutto::service
{

class CampaignClient
{
  public:
    struct Params
    {
        std::string socketPath;
        /** Whole-call budget: connect + retries + response. */
        std::chrono::milliseconds callTimeout{30000};
        /** Per-response wait before the attempt is abandoned and
         *  the request retried (covers dropped responses). */
        std::chrono::milliseconds responseTimeout{5000};
        /** @{ Jittered exponential backoff between attempts:
         *  uniform in [base, base * 2^attempt], capped. */
        std::chrono::milliseconds backoffBase{5};
        std::chrono::milliseconds backoffCap{1000};
        std::uint64_t jitterSeed = 1;
        /** @} */
        /** Attempts before giving up (connects + resubmits). */
        unsigned maxAttempts = 16;
    };

    /** Why submit() returned; `response` is valid for ok/shed. */
    enum class Outcome
    {
        ok,          ///< Terminal result response received.
        shedGiveUp,  ///< Still shed after maxAttempts.
        timedOut,    ///< callTimeout exhausted client-side.
        error,       ///< Server error response or protocol breach.
        unreachable, ///< Could not connect within the attempts.
    };

    struct Reply
    {
        Outcome outcome = Outcome::error;
        /** The terminal response line, parsed (ok / shedGiveUp /
         *  error-with-response). */
        Json response = Json::makeNull();
        /** Attempts actually made. */
        unsigned attempts = 0;
        /** Sheds absorbed along the way (retried, not terminal). */
        unsigned shedRetries = 0;
        std::string error;
    };

    explicit CampaignClient(const Params &params);

    /**
     * Called from submit(), on the calling thread, once per
     * `progress` frame received for a stream=true request. Frames
     * are best-effort telemetry: the wire (or the chaos plan) may
     * drop or tear individual ones, so observers must tolerate seq
     * gaps; the terminal result is unaffected either way.
     */
    using ProgressFn = std::function<void(const Json &frame)>;
    void onProgress(ProgressFn fn) { progressFn_ = std::move(fn); }

    /** Submit @p request, retrying until answered or exhausted. */
    Reply submit(const Request &request);

    /** One stats round-trip (no retries beyond reconnects). */
    Reply stats();

    /** One health round-trip; @p format "" for the JSON snapshot
     *  or "prometheus" for the text exposition. */
    Reply health(const std::string &format = "");

    /** @return true when the server answers a ping within
     *  @p timeout, polling through connection refusals. */
    bool waitReady(std::chrono::milliseconds timeout);

  private:
    /** One connect + send + single-line receive. @return empty on
     *  any transport failure (caller backs off and retries). */
    std::string roundTrip(const std::string &line,
                          std::chrono::milliseconds timeout);
    /** Like roundTrip, but consumes `progress` frames (feeding
     *  progressFn_) until a terminal line, EOF or @p deadline. */
    std::string streamTrip(const std::string &line,
                           std::chrono::milliseconds lineTimeout,
                           std::chrono::steady_clock::time_point
                               deadline);
    Reply oneShot(const Json &request);
    void backoff(unsigned attempt,
                 std::chrono::milliseconds atLeast);

    Params params_;
    Rng rng_;
    ProgressFn progressFn_;
};

} // namespace contutto::service

#endif // CONTUTTO_SERVICE_CLIENT_HH
