#include "service/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace contutto::service
{

Json
Json::number(double v)
{
    Json j;
    j.kind_ = Kind::number;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    j.num_ = buf;
    return j;
}

void
Json::requireKind(Kind k) const
{
    if (kind_ != k)
        throw ProtocolError("json: wrong value kind");
}

bool
Json::asBool() const
{
    requireKind(Kind::boolean);
    return bool_;
}

std::uint64_t
Json::asU64() const
{
    requireKind(Kind::number);
    // Integral token only: a seed or deadline that arrives as
    // "1.5e3" is a client bug worth surfacing, not truncating.
    if (num_.find_first_of(".eE-") != std::string::npos)
        throw ProtocolError("json: '" + num_
                            + "' is not an unsigned integer");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(num_.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        throw ProtocolError("json: bad unsigned integer '" + num_
                            + "'");
    return v;
}

std::int64_t
Json::asI64() const
{
    requireKind(Kind::number);
    if (num_.find_first_of(".eE") != std::string::npos)
        throw ProtocolError("json: '" + num_
                            + "' is not an integer");
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(num_.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        throw ProtocolError("json: bad integer '" + num_ + "'");
    return v;
}

double
Json::asDouble() const
{
    requireKind(Kind::number);
    return std::strtod(num_.c_str(), nullptr);
}

const std::string &
Json::asString() const
{
    requireKind(Kind::string);
    return str_;
}

Json &
Json::set(const std::string &key, Json value)
{
    requireKind(Kind::object);
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(value);
            return kv.second;
        }
    }
    obj_.emplace_back(key, std::move(value));
    return obj_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::object)
        return nullptr;
    for (const auto &kv : obj_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *v = find(key);
    if (v == nullptr)
        throw ProtocolError("json: missing member '" + key + "'");
    return *v;
}

Json &
Json::append(Json value)
{
    requireKind(Kind::array);
    arr_.push_back(std::move(value));
    return arr_.back();
}

std::uint64_t
Json::getU64(const std::string &key, std::uint64_t def) const
{
    const Json *v = find(key);
    return v == nullptr ? def : v->asU64();
}

double
Json::getDouble(const std::string &key, double def) const
{
    const Json *v = find(key);
    return v == nullptr ? def : v->asDouble();
}

bool
Json::getBool(const std::string &key, bool def) const
{
    const Json *v = find(key);
    return v == nullptr ? def : v->asBool();
}

std::string
Json::getString(const std::string &key,
                const std::string &def) const
{
    const Json *v = find(key);
    return v == nullptr ? def : v->asString();
}

namespace
{

void
escapeTo(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::dumpTo(std::string &out) const
{
    switch (kind_) {
      case Kind::null:
        out += "null";
        break;
      case Kind::boolean:
        out += bool_ ? "true" : "false";
        break;
      case Kind::number:
        out += num_;
        break;
      case Kind::string:
        escapeTo(str_, out);
        break;
      case Kind::object: {
        out += '{';
        const char *sep = "";
        for (const auto &kv : obj_) {
            out += sep;
            escapeTo(kv.first, out);
            out += ':';
            kv.second.dumpTo(out);
            sep = ",";
        }
        out += '}';
        break;
      }
      case Kind::array: {
        out += '[';
        const char *sep = "";
        for (const Json &v : arr_) {
            out += sep;
            v.dumpTo(out);
            sep = ",";
        }
        out += ']';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

namespace
{

/** Recursive-descent parser over a bounded cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Json
    parseDocument()
    {
        Json v = parseValue(0);
        skipWs();
        if (pos_ != s_.size())
            throw ProtocolError("json: trailing garbage at byte "
                                + std::to_string(pos_));
        return v;
    }

  private:
    static constexpr unsigned kMaxDepth = 32;

    void
    skipWs()
    {
        while (pos_ < s_.size()
               && (s_[pos_] == ' ' || s_[pos_] == '\t'
                   || s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            throw ProtocolError("json: unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw ProtocolError(std::string("json: expected '") + c
                                + "' at byte "
                                + std::to_string(pos_));
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parseValue(unsigned depth)
    {
        if (depth > kMaxDepth)
            throw ProtocolError("json: nesting too deep");
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return Json::string(parseString());
          case 't':
            if (consume("true"))
                return Json::boolean(true);
            break;
          case 'f':
            if (consume("false"))
                return Json::boolean(false);
            break;
          case 'n':
            if (consume("null"))
                return Json::makeNull();
            break;
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
        }
        throw ProtocolError("json: unexpected character at byte "
                            + std::to_string(pos_));
    }

    Json
    parseObject(unsigned depth)
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            if (obj.find(key) != nullptr)
                throw ProtocolError("json: duplicate key '" + key
                                    + "'");
            obj.set(key, parseValue(depth + 1));
            skipWs();
            char c = peek();
            ++pos_;
            if (c == '}')
                return obj;
            if (c != ',')
                throw ProtocolError(
                    "json: expected ',' or '}' at byte "
                    + std::to_string(pos_ - 1));
        }
    }

    Json
    parseArray(unsigned depth)
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.append(parseValue(depth + 1));
            skipWs();
            char c = peek();
            ++pos_;
            if (c == ']')
                return arr;
            if (c != ',')
                throw ProtocolError(
                    "json: expected ',' or ']' at byte "
                    + std::to_string(pos_ - 1));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                throw ProtocolError("json: unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                throw ProtocolError(
                    "json: raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                throw ProtocolError("json: unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    throw ProtocolError("json: short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        throw ProtocolError(
                            "json: bad \\u escape");
                }
                // The protocol is ASCII + opaque byte strings; only
                // the control range the writer emits is accepted.
                if (code > 0xff)
                    throw ProtocolError(
                        "json: \\u escape beyond latin-1 "
                        "unsupported");
                out += char(code);
                break;
              }
              default:
                throw ProtocolError("json: bad escape character");
            }
        }
    }

    Json
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < s_.size() && std::isdigit(
                       static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            throw ProtocolError("json: bad number");
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                throw ProtocolError("json: bad number fraction");
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size()
                && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                throw ProtocolError("json: bad number exponent");
        }
        // Preserve the exact token (see header: u64 round-trip).
        return Json::parseNumberToken(
            s_.substr(start, pos_ - start));
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

Json
Json::parseNumberToken(std::string token)
{
    Json j;
    j.kind_ = Kind::number;
    j.num_ = std::move(token);
    return j;
}

} // namespace contutto::service
