/**
 * @file
 * Minimal JSON document type for the campaign service wire protocol.
 *
 * The service speaks newline-delimited JSON over a Unix socket, so
 * it needs both directions: a strict parser for incoming requests
 * (malformed input from a confused client must become a clean
 * protocol error, never UB) and a deterministic writer for outgoing
 * responses. Determinism matters more than convenience here — the
 * memo-cache contract is that a replayed result is *byte-identical*
 * to the computed one, so dump() must be a pure function of the
 * value: object members keep insertion order, and integral numbers
 * round-trip through their exact decimal token (a u64 seed must not
 * detour through a double and come back rounded).
 *
 * This is intentionally not a general-purpose JSON library: no
 * \uXXXX escapes beyond the control range, no comments, documents
 * capped at a depth sane for a line protocol.
 */

#ifndef CONTUTTO_SERVICE_JSON_HH
#define CONTUTTO_SERVICE_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace contutto::service
{

/** Raised on malformed protocol input (parse or type mismatch). */
class ProtocolError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One JSON value; a document is a tree of these. */
class Json
{
  public:
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        object,
        array,
    };

    Json() = default;

    /** @{ Leaf constructors. */
    static Json makeNull() { return Json(); }
    static Json
    boolean(bool b)
    {
        Json j;
        j.kind_ = Kind::boolean;
        j.bool_ = b;
        return j;
    }
    static Json
    number(std::uint64_t v)
    {
        Json j;
        j.kind_ = Kind::number;
        j.num_ = std::to_string(v);
        return j;
    }
    static Json
    number(std::int64_t v)
    {
        Json j;
        j.kind_ = Kind::number;
        j.num_ = std::to_string(v);
        return j;
    }
    static Json number(double v);
    static Json
    string(std::string s)
    {
        Json j;
        j.kind_ = Kind::string;
        j.str_ = std::move(s);
        return j;
    }
    static Json
    object()
    {
        Json j;
        j.kind_ = Kind::object;
        return j;
    }
    static Json
    array()
    {
        Json j;
        j.kind_ = Kind::array;
        return j;
    }
    /** @} */

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::null; }
    bool isObject() const { return kind_ == Kind::object; }
    bool isArray() const { return kind_ == Kind::array; }
    bool isString() const { return kind_ == Kind::string; }
    bool isNumber() const { return kind_ == Kind::number; }
    bool isBool() const { return kind_ == Kind::boolean; }

    /** @{ Typed reads; a kind mismatch is a ProtocolError. */
    bool asBool() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    double asDouble() const;
    const std::string &asString() const;
    /** @} */

    /** @{ Object access. Members keep insertion order. */
    Json &set(const std::string &key, Json value);
    /** nullptr when the key is absent. */
    const Json *find(const std::string &key) const;
    /** ProtocolError when the key is absent. */
    const Json &at(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &
    members() const
    {
        requireKind(Kind::object);
        return obj_;
    }
    /** @} */

    /** @{ Array access. */
    Json &append(Json value);
    const std::vector<Json> &
    items() const
    {
        requireKind(Kind::array);
        return arr_;
    }
    /** @} */

    /** @{ Convenience: optional scalar member with default. */
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;
    /** @} */

    /** Deterministic single-line serialization (no whitespace). */
    std::string dump() const;

    /** Strict whole-string parse; throws ProtocolError. */
    static Json parse(const std::string &text);

    /** Wrap an already-validated numeric token (parser internal). */
    static Json parseNumberToken(std::string token);

  private:
    void requireKind(Kind k) const;
    void dumpTo(std::string &out) const;

    Kind kind_ = Kind::null;
    bool bool_ = false;
    /** The exact decimal token, preserved verbatim. */
    std::string num_;
    std::string str_;
    std::vector<std::pair<std::string, Json>> obj_;
    std::vector<Json> arr_;
};

} // namespace contutto::service

#endif // CONTUTTO_SERVICE_JSON_HH
