#include "service/client.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

namespace contutto::service
{

namespace
{

using Clock = std::chrono::steady_clock;

int
connectTo(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off,
                           data.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && (errno == EINTR || errno == EAGAIN))
                continue;
            return false;
        }
        off += std::size_t(n);
    }
    return true;
}

/**
 * Incremental line reader over one connection: keeps the carry-over
 * between lines, so a streaming response (progress* then result)
 * can be consumed frame by frame. A line without its '\n'
 * terminator (truncated response) is *not* a line — the newline is
 * the protocol's integrity marker.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** One line within @p timeout; empty on EOF/error/timeout. */
    std::string
    next(std::chrono::milliseconds timeout)
    {
        const auto deadline = Clock::now() + timeout;
        for (;;) {
            std::size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            if (buf_.size() > (1u << 20))
                return {};
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline
                                           - Clock::now());
            if (left.count() <= 0)
                return {};
            pollfd pfd{fd_, POLLIN, 0};
            int r = ::poll(
                &pfd, 1,
                int(std::min<std::int64_t>(left.count(), 100)));
            if (r < 0 && errno != EINTR)
                return {};
            if (r <= 0)
                continue;
            char chunk[4096];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                if (n < 0
                    && (errno == EINTR || errno == EAGAIN))
                    continue;
                return {}; // EOF before the newline: truncated.
            }
            buf_.append(chunk, std::size_t(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

} // namespace

CampaignClient::CampaignClient(const Params &params)
    : params_(params), rng_(params.jitterSeed)
{
}

std::string
CampaignClient::roundTrip(const std::string &line,
                          std::chrono::milliseconds timeout)
{
    int fd = connectTo(params_.socketPath);
    if (fd < 0)
        return {};
    std::string out;
    if (sendAll(fd, line + "\n")) {
        LineReader reader(fd);
        out = reader.next(timeout);
    }
    ::close(fd);
    return out;
}

std::string
CampaignClient::streamTrip(
    const std::string &line, std::chrono::milliseconds lineTimeout,
    std::chrono::steady_clock::time_point deadline)
{
    int fd = connectTo(params_.socketPath);
    if (fd < 0)
        return {};
    std::string out;
    if (sendAll(fd, line + "\n")) {
        LineReader reader(fd);
        for (;;) {
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline
                                           - Clock::now());
            if (left.count() <= 0)
                break;
            // Each received frame re-arms the per-line wait, so a
            // long-running streamed campaign is bounded by frame
            // spacing, not by total runtime.
            std::string l =
                reader.next(std::min(left, lineTimeout));
            if (l.empty())
                break; // transport failure or silence: retry path
            try {
                Json j = Json::parse(l);
                if (j.isObject()
                    && j.getString("type", "") == "progress") {
                    if (progressFn_)
                        progressFn_(j);
                    continue;
                }
                out = l; // terminal (result / shed / error)
            } catch (const ProtocolError &) {
                // A torn progress frame glued to its successor
                // (injected truncation). Progress is best-effort:
                // skip the garbage and keep reading. If the tear
                // swallowed the terminal frame, the reader hits
                // EOF, out stays empty, and the caller's retry of
                // the same id replays the recorded verdict.
                continue;
            }
            break;
        }
    }
    ::close(fd);
    return out;
}

void
CampaignClient::backoff(unsigned attempt,
                        std::chrono::milliseconds atLeast)
{
    // Exponential window with full jitter, floored by the server's
    // retry-after hint when one was given.
    std::uint64_t base = std::uint64_t(params_.backoffBase.count());
    std::uint64_t cap = std::uint64_t(params_.backoffCap.count());
    std::uint64_t window = base << std::min(attempt, 20u);
    window = std::min(std::max(window, base), cap);
    std::uint64_t sleepMs = base + rng_.below(window + 1);
    sleepMs = std::max(sleepMs,
                       std::uint64_t(atLeast.count()));
    std::this_thread::sleep_for(
        std::chrono::milliseconds(sleepMs));
}

CampaignClient::Reply
CampaignClient::submit(const Request &request)
{
    Reply reply;
    const std::string line = request.toJson().dump();
    const auto deadline = Clock::now() + params_.callTimeout;

    for (unsigned attempt = 0; attempt < params_.maxAttempts;
         ++attempt) {
        if (Clock::now() >= deadline) {
            reply.outcome = Outcome::timedOut;
            reply.error = "call timeout exhausted";
            return reply;
        }
        ++reply.attempts;

        auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - Clock::now());
        std::string respLine =
            request.stream
                ? streamTrip(line, params_.responseTimeout,
                             deadline)
                : roundTrip(line,
                            std::min(left,
                                     params_.responseTimeout));
        if (respLine.empty()) {
            // Refused / dropped / truncated: same recovery — back
            // off and resubmit the identical id.
            backoff(attempt, std::chrono::milliseconds(0));
            continue;
        }

        Json resp;
        try {
            resp = Json::parse(respLine);
            const std::string type = resp.at("type").asString();
            if (type == "result") {
                reply.outcome = Outcome::ok;
                reply.response = resp;
                return reply;
            }
            if (type == "shed") {
                ++reply.shedRetries;
                reply.response = resp;
                backoff(attempt,
                        std::chrono::milliseconds(
                            resp.getU64("retryAfterMs", 0)));
                continue;
            }
            if (type == "error") {
                reply.outcome = Outcome::error;
                reply.response = resp;
                reply.error = resp.at("message").asString();
                return reply;
            }
            throw ProtocolError("unexpected response type '"
                                + type + "'");
        } catch (const ProtocolError &e) {
            // A garbled-but-newline-terminated response; treat it
            // like a lost one.
            reply.error = e.what();
            backoff(attempt, std::chrono::milliseconds(0));
            continue;
        }
    }

    if (reply.shedRetries == reply.attempts && reply.attempts > 0)
        reply.outcome = Outcome::shedGiveUp;
    else if (reply.error.empty()) {
        reply.outcome = Outcome::unreachable;
        reply.error = "no response within "
                      + std::to_string(params_.maxAttempts)
                      + " attempts";
    } else {
        reply.outcome = Outcome::error;
    }
    return reply;
}

CampaignClient::Reply
CampaignClient::oneShot(const Json &request)
{
    Reply reply;
    for (unsigned attempt = 0; attempt < params_.maxAttempts;
         ++attempt) {
        ++reply.attempts;
        std::string respLine =
            roundTrip(request.dump(), params_.responseTimeout);
        if (!respLine.empty()) {
            try {
                reply.response = Json::parse(respLine);
                reply.outcome = Outcome::ok;
                return reply;
            } catch (const ProtocolError &e) {
                reply.error = e.what();
            }
        }
        backoff(attempt, std::chrono::milliseconds(0));
    }
    reply.outcome = Outcome::unreachable;
    return reply;
}

CampaignClient::Reply
CampaignClient::stats()
{
    Json req = Json::object();
    req.set("type", Json::string("stats"));
    return oneShot(req);
}

CampaignClient::Reply
CampaignClient::health(const std::string &format)
{
    Json req = Json::object();
    req.set("type", Json::string("health"));
    if (!format.empty())
        req.set("format", Json::string(format));
    return oneShot(req);
}

bool
CampaignClient::waitReady(std::chrono::milliseconds timeout)
{
    Json ping = Json::object();
    ping.set("type", Json::string("ping"));
    const std::string line = ping.dump();
    const auto deadline = Clock::now() + timeout;
    while (Clock::now() < deadline) {
        std::string resp =
            roundTrip(line, std::chrono::milliseconds(500));
        if (!resp.empty())
            return true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }
    return false;
}

} // namespace contutto::service
