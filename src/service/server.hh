/**
 * @file
 * CampaignServer: the long-lived campaign daemon.
 *
 * Serves campaign requests over a Unix-domain socket (one JSON
 * line per request/response, see protocol.hh) and survives
 * overload by *design*:
 *
 *  - *Bounded admission.* Requests wait in a priority queue with a
 *    hard cap. When the queue is full — or the server is draining —
 *    the request is shed immediately with an explicit retryAfterMs
 *    hint, never silently dropped and never queued without bound.
 *    Backpressure is a first-class answer, not a failure mode.
 *
 *  - *Deadlines end to end.* A request's deadlineMs covers queue
 *    wait plus execution. The remaining budget at dispatch becomes
 *    the CampaignSupervisor task deadline, so the watchdog raises
 *    the same cancel token the event loops poll; a request whose
 *    budget expired while queued is answered `timeout` without
 *    wasting a worker on it.
 *
 *  - *Idempotent requests.* Request ids are client-chosen and
 *    idempotent: a duplicate of an in-flight id coalesces onto the
 *    same execution (one simulation, N answers), and a duplicate
 *    of a completed id replays the recorded response. A client
 *    that retries because a response was lost can never cause a
 *    second execution.
 *
 *  - *Memoized determinism.* Results are cached in a bounded LRU
 *    keyed by (config hash, seed). The engine is deterministic, so
 *    a memo hit IS the result — byte-identical payload to a fresh
 *    computation, including by a restarted server that warmed its
 *    cache from the drained index.
 *
 *  - *Graceful drain.* requestDrain() (SIGTERM in campaignd) stops
 *    admission, finishes in-flight work, persists the memo index
 *    through the atomic checkpoint writer, then stop() tears the
 *    socket down. A drain that overruns its budget cancels the
 *    remaining supervisors cooperatively rather than hanging.
 *
 *  - *Chaos hooks.* The fault plan injects delayed, dropped, and
 *    truncated responses and worker crashes on a deterministic
 *    cadence, so the chaos harness can attack the service layer
 *    itself and assert the exactly-once contract end to end.
 */

#ifndef CONTUTTO_SERVICE_SERVER_HH
#define CONTUTTO_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/memo_cache.hh"
#include "service/protocol.hh"

namespace contutto::sim
{
class CampaignSupervisor;
}

namespace contutto::service
{

class CampaignServer
{
  public:
    /** Deterministic-cadence fault injection (0 = never). */
    struct FaultPlan
    {
        /** Delay every Nth result response by delayMs. */
        unsigned delayEveryN = 0;
        std::uint64_t delayMs = 50;
        /** Drop every Nth result response (close instead). */
        unsigned dropEveryN = 0;
        /** Truncate every Nth result response mid-line. */
        unsigned truncateEveryN = 0;
        /** Crash the worker on every Nth execution's first
         *  attempt (the supervisor's retry ladder absorbs it). */
        unsigned crashEveryN = 0;
    };

    struct Params
    {
        std::string socketPath;
        /** Worker threads executing campaigns. */
        unsigned workers = 2;
        /** Admission queue cap (queued, not running). */
        std::size_t queueCap = 64;
        /** Memo cache entries; 0 disables memoization. */
        std::size_t memoCapacity = 4096;
        /** Warm from / persist to this index (empty: in-memory
         *  only). Loaded at start, saved at drain. */
        std::string memoPath;
        /** Completed-request replay window (dedup LRU). */
        std::size_t completedCap = 4096;
        /** Applied when a submit carries deadlineMs == 0. */
        std::uint64_t defaultDeadlineMs = 0;
        /** Base retry hint for shed responses. */
        std::uint64_t shedRetryAfterMs = 50;
        /** Supervisor knobs for each execution. */
        unsigned attempts = 2;
        std::chrono::milliseconds watchdogInterval{5};
        std::chrono::milliseconds cancelGrace{2000};
        /** Drain budget before in-flight work is cancelled. */
        std::chrono::milliseconds drainTimeout{30000};
        FaultPlan faults;
    };

    /** Monotonic counters; snapshot under one lock. */
    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t accepted = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t timedOut = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t shed = 0;
        std::uint64_t duplicates = 0;
        std::uint64_t memoHits = 0;
        std::uint64_t memoMisses = 0;
        std::uint64_t protocolErrors = 0;
        std::uint64_t faultsInjected = 0;
        std::uint64_t executions = 0;
        std::size_t queueDepth = 0;
        std::size_t queuePeak = 0;
        std::size_t running = 0;
        bool draining = false;
    };

    explicit CampaignServer(const Params &params);
    ~CampaignServer();

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /** Bind, listen, spawn the accept loop and the worker pool.
     *  Throws std::runtime_error when the socket cannot be set
     *  up. Loads the memo index when memoPath names one. */
    void start();

    /** Stop admitting work; in-flight and queued jobs still run to
     *  completion and their waiters are answered. Idempotent. */
    void requestDrain();

    /** Drain, wait (up to drainTimeout) for in-flight work,
     *  persist the memo index, tear down the socket and join all
     *  threads. Returns true when the drain beat the timeout
     *  (clean), false when stragglers had to be cancelled. */
    bool stop();

    Stats stats() const;
    const std::string &socketPath() const
    {
        return params_.socketPath;
    }
    const MemoCache &memo() const { return memo_; }

  private:
    struct Job;

    void acceptLoop();
    void workerLoop(unsigned index);
    void handleConnection(int fd);
    /** One request line -> one response line (or injected fault).
     *  @return false when the connection must close. */
    bool handleLine(int fd, const std::string &line);
    bool handleSubmit(int fd, const Json &doc);
    void runJob(const std::shared_ptr<Job> &job, unsigned worker);
    bool respond(int fd, const Json &response, bool faultable);
    Json statsJson();
    Json resultFor(const Job &job) const;

    Params params_;
    MemoCache memo_;

    int listenFd_ = -1;
    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    std::mutex connMtx_;
    std::vector<std::thread> connections_;

    mutable std::mutex mtx_;
    std::condition_variable workAvail_;
    std::condition_variable jobDone_;
    /** (−priority, admission seq) -> job: pop = begin(). */
    std::map<std::pair<std::int64_t, std::uint64_t>,
             std::shared_ptr<Job>>
        queue_;
    std::unordered_map<std::string, std::shared_ptr<Job>> active_;
    /** Admitted job per (config hash, seed): single-flight, so
     *  concurrent fresh-id twins never burn a second execution. */
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::shared_ptr<Job>>
        keyActive_;
    /** Completed-job replay window, coldest first. */
    std::list<std::shared_ptr<Job>> doneLru_;
    std::unordered_map<std::string,
                       std::list<std::shared_ptr<Job>>::iterator>
        done_;
    /** Per-worker live supervisor, for drain-timeout cancel. */
    std::vector<sim::CampaignSupervisor *> liveSupervisors_;
    Stats stats_;
    std::uint64_t seq_ = 0;
    bool draining_ = false;
    /** Set only by stop(), after the queue has drained. */
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> responseTick_{0};
    std::atomic<std::uint64_t> executionTick_{0};
    bool started_ = false;
    bool stopped_ = false;
};

} // namespace contutto::service

#endif // CONTUTTO_SERVICE_SERVER_HH
