/**
 * @file
 * CampaignServer: the long-lived campaign daemon.
 *
 * Serves campaign requests over a Unix-domain socket (one JSON
 * line per request/response, see protocol.hh) and survives
 * overload by *design*:
 *
 *  - *Bounded admission.* Requests wait in a priority queue with a
 *    hard cap. When the queue is full — or the server is draining —
 *    the request is shed immediately with an explicit retryAfterMs
 *    hint, never silently dropped and never queued without bound.
 *    Backpressure is a first-class answer, not a failure mode.
 *
 *  - *Deadlines end to end.* A request's deadlineMs covers queue
 *    wait plus execution. The remaining budget at dispatch becomes
 *    the CampaignSupervisor task deadline, so the watchdog raises
 *    the same cancel token the event loops poll; a request whose
 *    budget expired while queued is answered `timeout` without
 *    wasting a worker on it.
 *
 *  - *Idempotent requests.* Request ids are client-chosen and
 *    idempotent: a duplicate of an in-flight id coalesces onto the
 *    same execution (one simulation, N answers), and a duplicate
 *    of a completed id replays the recorded response. A client
 *    that retries because a response was lost can never cause a
 *    second execution.
 *
 *  - *Memoized determinism.* Results are cached in a bounded LRU
 *    keyed by (config hash, seed). The engine is deterministic, so
 *    a memo hit IS the result — byte-identical payload to a fresh
 *    computation, including by a restarted server that warmed its
 *    cache from the drained index.
 *
 *  - *Graceful drain.* requestDrain() (SIGTERM in campaignd) stops
 *    admission, finishes in-flight work, persists the memo index
 *    through the atomic checkpoint writer, then stop() tears the
 *    socket down. A drain that overruns its budget cancels the
 *    remaining supervisors cooperatively rather than hanging.
 *
 *  - *Chaos hooks.* The fault plan injects delayed, dropped, and
 *    truncated responses and worker crashes on a deterministic
 *    cadence, so the chaos harness can attack the service layer
 *    itself and assert the exactly-once contract end to end.
 *
 *  - *Live telemetry.* Every admission decision, queue wait, memo
 *    probe, execution and response is mirrored into a lock-cheap
 *    MetricsRegistry (sim/metrics.hh) that a `health` request can
 *    snapshot at any moment — JSON or Prometheus text — without
 *    perturbing the workload. A submit carrying `stream:true`
 *    additionally receives rate-limited, seq-numbered `progress`
 *    frames on its own connection while it waits (queued and
 *    running states, work counts, supervisor heartbeats), always
 *    strictly before its terminal `result` frame. Each request
 *    carries a trace id; the server opens svc.queue / svc.exec /
 *    svc.serialize spans against it (sim/span.hh), reports the
 *    exact same microsecond attribution in the result frame, and
 *    a periodic sampler thread records queue-depth and in-flight
 *    trajectories between requests.
 */

#ifndef CONTUTTO_SERVICE_SERVER_HH
#define CONTUTTO_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/memo_cache.hh"
#include "service/protocol.hh"
#include "sim/metrics.hh"

namespace contutto::sim
{
class CampaignSupervisor;
}

namespace contutto::service
{

class CampaignServer
{
  public:
    /** Deterministic-cadence fault injection (0 = never). */
    struct FaultPlan
    {
        /** Delay every Nth result response by delayMs. */
        unsigned delayEveryN = 0;
        std::uint64_t delayMs = 50;
        /** Drop every Nth result response (close instead). */
        unsigned dropEveryN = 0;
        /** Truncate every Nth result response mid-line. */
        unsigned truncateEveryN = 0;
        /** Crash the worker on every Nth execution's first
         *  attempt (the supervisor's retry ladder absorbs it). */
        unsigned crashEveryN = 0;
    };

    struct Params
    {
        std::string socketPath;
        /** Worker threads executing campaigns. */
        unsigned workers = 2;
        /** Admission queue cap (queued, not running). */
        std::size_t queueCap = 64;
        /** Memo cache entries; 0 disables memoization. */
        std::size_t memoCapacity = 4096;
        /** Warm from / persist to this index (empty: in-memory
         *  only). Loaded at start, saved at drain. */
        std::string memoPath;
        /** Completed-request replay window (dedup LRU). */
        std::size_t completedCap = 4096;
        /** Applied when a submit carries deadlineMs == 0. */
        std::uint64_t defaultDeadlineMs = 0;
        /** Base retry hint for shed responses. */
        std::uint64_t shedRetryAfterMs = 50;
        /** Supervisor knobs for each execution. */
        unsigned attempts = 2;
        std::chrono::milliseconds watchdogInterval{5};
        std::chrono::milliseconds cancelGrace{2000};
        /** Drain budget before in-flight work is cancelled. */
        std::chrono::milliseconds drainTimeout{30000};
        /** Rate limit between progress frames per streaming
         *  request (the subscription knob is per-submit). */
        std::chrono::milliseconds progressPeriod{100};
        /** Telemetry sampler cadence (0 disables the sampler). */
        std::chrono::milliseconds samplePeriod{50};
        FaultPlan faults;
    };

    /** Monotonic counters; snapshot under one lock. */
    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t accepted = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t timedOut = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t shed = 0;
        std::uint64_t duplicates = 0;
        std::uint64_t memoHits = 0;
        std::uint64_t memoMisses = 0;
        std::uint64_t protocolErrors = 0;
        std::uint64_t faultsInjected = 0;
        std::uint64_t executions = 0;
        std::size_t queueDepth = 0;
        std::size_t queuePeak = 0;
        std::size_t running = 0;
        bool draining = false;
    };

    explicit CampaignServer(const Params &params);
    ~CampaignServer();

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /** Bind, listen, spawn the accept loop and the worker pool.
     *  Throws std::runtime_error when the socket cannot be set
     *  up. Loads the memo index when memoPath names one. */
    void start();

    /** Stop admitting work; in-flight and queued jobs still run to
     *  completion and their waiters are answered. Idempotent. */
    void requestDrain();

    /** Drain, wait (up to drainTimeout) for in-flight work,
     *  persist the memo index, tear down the socket and join all
     *  threads. Returns true when the drain beat the timeout
     *  (clean), false when stragglers had to be cancelled. */
    bool stop();

    Stats stats() const;
    const std::string &socketPath() const
    {
        return params_.socketPath;
    }
    const MemoCache &memo() const { return memo_; }

    /** Point-in-time read of the live metrics registry. */
    metrics::Snapshot metricsSnapshot() const
    {
        return registry_.snapshot();
    }

    /** Prometheus text exposition of the registry. */
    std::string prometheusText() const
    {
        return registry_.prometheusText();
    }

  private:
    struct Job;

    void acceptLoop();
    void workerLoop(unsigned index);
    void samplerLoop();
    void handleConnection(int fd);
    /** One request line -> one response line (or injected fault).
     *  @return false when the connection must close. */
    bool handleLine(int fd, const std::string &line);
    bool handleSubmit(int fd, const Json &doc);
    void runJob(const std::shared_ptr<Job> &job, unsigned worker);
    bool respond(int fd, const Json &response, bool faultable);
    /** Emit one progress frame (never closes the stream on an
     *  injected fault). @return false when the peer is gone. */
    bool respondProgress(int fd, const Json &frame);
    /**
     * Wait (under @p lk) until @p watch completes or the server
     * stops; when @p streaming, emits rate-limited seq-numbered
     * progress frames for @p req to @p fd along the way.
     * @return true when the job reached done.
     */
    bool waitForJob(std::unique_lock<std::mutex> &lk, int fd,
                    const Request &req,
                    const std::shared_ptr<Job> &watch,
                    bool streaming, std::uint64_t &seq);
    Json statsJson();
    Json healthJson(const Json &doc);
    Json resultFor(Job &job);
    /** Microseconds since the server epoch (span tick domain). */
    std::uint64_t nowUs() const;
    /** Assign/confirm a request trace id (0 -> fresh). */
    std::uint64_t traceIdFor(std::uint64_t requested);
    /** One structured drain-cancellation error-log line. */
    void logDrainCancel(const Job &job, const char *state);

    Params params_;
    MemoCache memo_;

    int listenFd_ = -1;
    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    std::mutex connMtx_;
    std::vector<std::thread> connections_;

    mutable std::mutex mtx_;
    std::condition_variable workAvail_;
    std::condition_variable jobDone_;
    /** (−priority, admission seq) -> job: pop = begin(). */
    std::map<std::pair<std::int64_t, std::uint64_t>,
             std::shared_ptr<Job>>
        queue_;
    std::unordered_map<std::string, std::shared_ptr<Job>> active_;
    /** Admitted job per (config hash, seed): single-flight, so
     *  concurrent fresh-id twins never burn a second execution. */
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::shared_ptr<Job>>
        keyActive_;
    /** Completed-job replay window, coldest first. */
    std::list<std::shared_ptr<Job>> doneLru_;
    std::unordered_map<std::string,
                       std::list<std::shared_ptr<Job>>::iterator>
        done_;
    /** Per-worker live supervisor, for drain-timeout cancel. */
    std::vector<sim::CampaignSupervisor *> liveSupervisors_;
    /** Per-worker job in execution, for drain straggler logging. */
    std::vector<std::shared_ptr<Job>> liveJobs_;
    Stats stats_;
    std::uint64_t seq_ = 0;
    bool draining_ = false;
    /** Set only by stop(), after the queue has drained. */
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> responseTick_{0};
    std::atomic<std::uint64_t> executionTick_{0};
    std::atomic<std::uint64_t> progressTick_{0};
    std::atomic<std::uint64_t> traceSeq_{0};
    bool started_ = false;
    bool stopped_ = false;

    /** @{ Live telemetry plane. */
    metrics::MetricsRegistry registry_;
    metrics::Counter *mSubmitted_ = nullptr;
    metrics::Counter *mAccepted_ = nullptr;
    metrics::Counter *mCompleted_ = nullptr;
    metrics::Counter *mShed_ = nullptr;
    metrics::Counter *mDuplicates_ = nullptr;
    metrics::Counter *mCoalesced_ = nullptr;
    metrics::Counter *mMemoHits_ = nullptr;
    metrics::Counter *mMemoMisses_ = nullptr;
    metrics::Counter *mExecutions_ = nullptr;
    metrics::Counter *mFaults_ = nullptr;
    metrics::Counter *mProtocolErrors_ = nullptr;
    metrics::Counter *mProgressFrames_ = nullptr;
    metrics::Counter *mDrainCancelled_ = nullptr;
    metrics::Counter *mTimedOut_ = nullptr;
    metrics::Counter *mCancelled_ = nullptr;
    metrics::Counter *mFailed_ = nullptr;
    metrics::Counter *mSamplerTicks_ = nullptr;
    metrics::Counter *mSampledJobs_ = nullptr;
    metrics::Gauge *gQueueDepth_ = nullptr;
    metrics::Gauge *gRunning_ = nullptr;
    metrics::Gauge *gInFlight_ = nullptr;
    metrics::Gauge *gDraining_ = nullptr;
    metrics::Histogram *hQueueWaitMs_ = nullptr;
    metrics::Histogram *hExecMs_ = nullptr;
    metrics::Histogram *hSerializeUs_ = nullptr;
    metrics::Histogram *hE2eMs_ = nullptr;
    metrics::Histogram *hQueueDepthSampled_ = nullptr;
    metrics::Histogram *hRunningSampled_ = nullptr;
    std::chrono::steady_clock::time_point epoch_;
    std::thread samplerThread_;
    std::mutex samplerMtx_;
    std::condition_variable samplerCv_;
    bool samplerStop_ = false;
    /** @} */
};

} // namespace contutto::service

#endif // CONTUTTO_SERVICE_SERVER_HH
