/**
 * @file
 * Campaign service wire protocol: newline-delimited JSON.
 *
 * One request per line, one response per line. A submit names a
 * campaign *kind*, a seed, and a config object of per-kind knob
 * overrides; the server answers with a result whose `payload`
 * member is a deterministic rendering of the campaign's Result.
 * Determinism is the protocol's load-bearing wall: the same
 * (config hash, seed) always yields byte-identical payload text,
 * whether freshly computed, replayed from the memo cache, or
 * recomputed by a restarted server after a drain.
 *
 * Request lines:
 *   {"type":"submit","id":"...","kind":"ras_soak|crash|spin|spec",
 *    "seed":N,"priority":N,"deadlineMs":N,"config":{...},
 *    "stream":bool,"traceId":N}
 *   {"type":"stats"}           server counters (admission, memo, ...)
 *   {"type":"health"}          full metrics-registry snapshot
 *   {"type":"health","format":"prometheus"}
 *                              same registry, text exposition
 *                              wrapped in {"text":"..."}
 *   {"type":"ping"}            liveness probe
 *
 * Response lines:
 *   {"type":"result","id":"...","status":"ok|error|timeout|
 *    cancelled","outcome":"...","configHash":"hex","seed":N,
 *    "payload":{...},"trace":{"id":N,"queueUs":N,"execUs":N,
 *    "serializeUs":N}}         terminal answer for a submit
 *   {"type":"progress","id":"...","seq":N,"state":"queued|
 *    running","elapsedMs":N,...}
 *                              streamed before the result when the
 *                              submit carried stream:true; seq is
 *                              strictly increasing per request and
 *                              no frame ever follows the result
 *   {"type":"shed","id":"...","retryAfterMs":N,"reason":"..."}
 *                              admission refused; try again later
 *   {"type":"error","message":"..."}   malformed request
 *   {"type":"stats",...} / {"type":"health",...} / {"type":"pong"}
 *
 * The campaign kinds:
 *   ras_soak  ras::SoakCampaign       (multi-fault soak, §4 RAS)
 *   crash     storage::CrashRecoveryCampaign (power-cut campaign)
 *   spin      a cancellable wall-clock spin — the calibration /
 *             chaos workload: it holds a worker for `spinMs` real
 *             milliseconds, which makes backpressure and deadline
 *             behaviour testable without guessing how fast the
 *             simulator runs on this machine.
 *   spec      one SPEC CINT2006 profile on a freshly built channel
 *             (knobs: benchmark index, buffer 0=centaur/1=contutto,
 *             knob = Centaur config index or ConTutto knob position,
 *             instructions, and the sampled-execution knobs
 *             sampleMode/sampleWarmup/sampleWindow/samplePeriod).
 *             The sampling knobs fold into the config hash, so a
 *             sampled run never shares a memo entry with a detailed
 *             one; result frames carry "simMode" (and the knobs,
 *             when sampled) for every kind.
 *   trace     replay one binary memory trace (src/trace) through a
 *             freshly built channel (knobs: path, buffer/knob as
 *             for spec, timed 1=recorded-time replay/0=window
 *             replay, window, and the sampling knobs). The trace
 *             file is validated at admission and its checksum —
 *             not its path — folds into the config hash, so a memo
 *             entry can only ever be satisfied by the exact trace
 *             bytes that produced it; the file is re-validated
 *             against the admitted checksum when the job runs.
 */

#ifndef CONTUTTO_SERVICE_PROTOCOL_HH
#define CONTUTTO_SERVICE_PROTOCOL_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "ras/soak_campaign.hh"
#include "service/json.hh"
#include "sim/sampling.hh"
#include "storage/crash_campaign.hh"

namespace contutto::service
{

/** A parsed submit request. */
struct Request
{
    std::string id;
    std::string kind;
    std::uint64_t seed = 1;
    /** Larger runs first; ties in arrival order. */
    std::int64_t priority = 0;
    /** Wall budget from admission to answer (0: unlimited). */
    std::uint64_t deadlineMs = 0;
    /** Subscribe to progress frames before the result frame. */
    bool stream = false;
    /** Client-chosen trace id threaded through admission, queue,
     *  execution and respond (0: server assigns one). */
    std::uint64_t traceId = 0;
    Json config = Json::object();

    /** Parse a submit line (already known to be type=submit). */
    static Request fromJson(const Json &j);
    Json toJson() const;
};

/**
 * A validated, runnable campaign configuration: the union of the
 * supported kinds, with the seed threaded in and the stable config
 * hash (seed excluded) precomputed. Construction validates the
 * kind and knob names, so a typo'd config fails at admission, not
 * after a queue wait.
 */
class CampaignJob
{
  public:
    /** Throws ProtocolError on unknown kind or malformed config. */
    CampaignJob(const std::string &kind, std::uint64_t seed,
                const Json &config);

    const std::string &kind() const { return kind_; }
    std::uint64_t seed() const { return seed_; }
    /** FNV-1a of (kind, knobs); seed deliberately excluded. The
     *  sampled-execution knobs are folded in when enabled. */
    std::uint64_t configHash() const { return configHash_; }

    /** True when this job executes in SMARTS-sampled mode. */
    bool
    sampled() const
    {
        return samplingConfig().enabled;
    }
    /** The sampled-execution knobs (disabled for kinds without
     *  them). */
    const sim::SamplingConfig &
    samplingConfig() const
    {
        return kind_ == "trace" ? trace_.sampling : spec_.sampling;
    }

    /**
     * Live progress board for one running campaign: the campaign
     * body publishes work counts, the supervisor tick stamps
     * heartbeats, and the streaming waiter samples all of it into
     * progress frames. Atomics because the writer (worker thread),
     * the ticker (watchdog thread) and the readers (connection
     * threads) never share a lock.
     */
    struct Progress
    {
        std::atomic<std::uint64_t> workDone{0};
        std::atomic<std::uint64_t> workTotal{0};
        /** Supervisor watchdog ticks observed while running. */
        std::atomic<std::uint64_t> heartbeats{0};
    };

    /**
     * Run the campaign to its deterministic payload. @p cancel is
     * the supervisor's cooperative token; a cancelled run throws
     * Cancelled (the supervisor then reports timedOut/cancelled).
     * A non-null @p progress is updated as the campaign advances;
     * it never influences the payload (determinism is untouched).
     */
    std::string run(const std::atomic<bool> &cancel,
                    Progress *progress = nullptr) const;

    /** Thrown by run() when the cancel token stopped the work. */
    struct Cancelled
    {
    };

  private:
    /** Knobs of the "spec" kind: one CINT2006 profile on a fresh
     *  single-channel system, optionally sampled. */
    struct SpecSpec
    {
        unsigned benchmark = 3; ///< index into specCint2006 (mcf)
        unsigned buffer = 0;    ///< 0: Centaur, 1: ConTutto
        /** Centaur config index (0-3) or ConTutto knob (0-7). */
        unsigned knob = 0;
        std::uint64_t instructions = 100000;
        sim::SamplingConfig sampling{};
    };

    /** Knobs of the "trace" kind: one binary trace replayed on a
     *  fresh single-channel system. */
    struct TraceSpec
    {
        std::string path;
        unsigned buffer = 0; ///< 0: Centaur, 1: ConTutto
        unsigned knob = 0;
        /** 1: recorded-time replay, 0: window-model replay. */
        unsigned timed = 1;
        /** MLP window for window-model replay. */
        unsigned window = 8;
        /** The admitted trace file's validated checksum. */
        std::uint64_t checksum = 0;
        sim::SamplingConfig sampling{};
    };

    std::string runSpec(const std::atomic<bool> &cancel,
                        Progress *progress, Json payload) const;
    std::string runTrace(const std::atomic<bool> &cancel,
                         Progress *progress, Json payload) const;

    std::string kind_;
    std::uint64_t seed_ = 1;
    std::uint64_t configHash_ = 0;
    ras::SoakCampaign::Spec soak_;
    storage::CrashRecoveryCampaign::Spec crash_;
    std::uint64_t spinMs_ = 0;
    SpecSpec spec_;
    TraceSpec trace_;
};

/** One sampled point of a request's life, for a progress frame. */
struct ProgressSample
{
    std::uint64_t seq = 0;
    /** "queued" or "running". */
    const char *state = "queued";
    std::uint64_t elapsedMs = 0;
    std::uint64_t queueDepth = 0;
    std::uint64_t running = 0;
    std::uint64_t workDone = 0;
    std::uint64_t workTotal = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t traceId = 0;
};

/** @{ Response constructors (each dumps to one line, no '\n'). */
Json makeResult(const std::string &id, const std::string &status,
                const std::string &outcome,
                std::uint64_t configHash, std::uint64_t seed,
                const std::string &payloadText);
Json makeProgress(const std::string &id,
                  const ProgressSample &sample);
Json makeShed(const std::string &id, std::uint64_t retryAfterMs,
              const std::string &reason);
Json makeError(const std::string &message);
/** @} */

/**
 * Attach the request-level trace attribution to a result frame:
 * the trace id plus exact queue-wait, execution and serialization
 * microseconds. The three stages partition the server-side life of
 * the request, so their sum tracks the client-observed end-to-end
 * latency to within scheduling noise.
 */
void attachTrace(Json &result, std::uint64_t traceId,
                 std::uint64_t queueUs, std::uint64_t execUs,
                 std::uint64_t serializeUs);

/**
 * Attach the execution-regime attribution to a result frame:
 * "simMode" ("detailed" or "sampled") on every result, plus the
 * sampling knobs when the job ran sampled — so a client can always
 * tell which regime produced a payload, memoized or fresh.
 */
void attachSimMode(Json &result, const CampaignJob &job);

/** 16-digit lower-case hex, the canonical hash spelling. */
std::string hashHex(std::uint64_t h);

} // namespace contutto::service

#endif // CONTUTTO_SERVICE_PROTOCOL_HH
