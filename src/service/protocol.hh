/**
 * @file
 * Campaign service wire protocol: newline-delimited JSON.
 *
 * One request per line, one response per line. A submit names a
 * campaign *kind*, a seed, and a config object of per-kind knob
 * overrides; the server answers with a result whose `payload`
 * member is a deterministic rendering of the campaign's Result.
 * Determinism is the protocol's load-bearing wall: the same
 * (config hash, seed) always yields byte-identical payload text,
 * whether freshly computed, replayed from the memo cache, or
 * recomputed by a restarted server after a drain.
 *
 * Request lines:
 *   {"type":"submit","id":"...","kind":"ras_soak|crash|spin",
 *    "seed":N,"priority":N,"deadlineMs":N,"config":{...}}
 *   {"type":"stats"}           server counters (admission, memo, ...)
 *   {"type":"ping"}            liveness probe
 *
 * Response lines:
 *   {"type":"result","id":"...","status":"ok|error|timeout|
 *    cancelled","outcome":"...","configHash":"hex","seed":N,
 *    "payload":{...}}          terminal answer for a submit
 *   {"type":"shed","id":"...","retryAfterMs":N,"reason":"..."}
 *                              admission refused; try again later
 *   {"type":"error","message":"..."}   malformed request
 *   {"type":"stats",...} / {"type":"pong"}
 *
 * The campaign kinds:
 *   ras_soak  ras::SoakCampaign       (multi-fault soak, §4 RAS)
 *   crash     storage::CrashRecoveryCampaign (power-cut campaign)
 *   spin      a cancellable wall-clock spin — the calibration /
 *             chaos workload: it holds a worker for `spinMs` real
 *             milliseconds, which makes backpressure and deadline
 *             behaviour testable without guessing how fast the
 *             simulator runs on this machine.
 */

#ifndef CONTUTTO_SERVICE_PROTOCOL_HH
#define CONTUTTO_SERVICE_PROTOCOL_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "ras/soak_campaign.hh"
#include "service/json.hh"
#include "storage/crash_campaign.hh"

namespace contutto::service
{

/** A parsed submit request. */
struct Request
{
    std::string id;
    std::string kind;
    std::uint64_t seed = 1;
    /** Larger runs first; ties in arrival order. */
    std::int64_t priority = 0;
    /** Wall budget from admission to answer (0: unlimited). */
    std::uint64_t deadlineMs = 0;
    Json config = Json::object();

    /** Parse a submit line (already known to be type=submit). */
    static Request fromJson(const Json &j);
    Json toJson() const;
};

/**
 * A validated, runnable campaign configuration: the union of the
 * supported kinds, with the seed threaded in and the stable config
 * hash (seed excluded) precomputed. Construction validates the
 * kind and knob names, so a typo'd config fails at admission, not
 * after a queue wait.
 */
class CampaignJob
{
  public:
    /** Throws ProtocolError on unknown kind or malformed config. */
    CampaignJob(const std::string &kind, std::uint64_t seed,
                const Json &config);

    const std::string &kind() const { return kind_; }
    std::uint64_t seed() const { return seed_; }
    /** FNV-1a of (kind, knobs); seed deliberately excluded. */
    std::uint64_t configHash() const { return configHash_; }

    /**
     * Run the campaign to its deterministic payload. @p cancel is
     * the supervisor's cooperative token; a cancelled run throws
     * Cancelled (the supervisor then reports timedOut/cancelled).
     */
    std::string run(const std::atomic<bool> &cancel) const;

    /** Thrown by run() when the cancel token stopped the work. */
    struct Cancelled
    {
    };

  private:
    std::string kind_;
    std::uint64_t seed_ = 1;
    std::uint64_t configHash_ = 0;
    ras::SoakCampaign::Spec soak_;
    storage::CrashRecoveryCampaign::Spec crash_;
    std::uint64_t spinMs_ = 0;
};

/** @{ Response constructors (each dumps to one line, no '\n'). */
Json makeResult(const std::string &id, const std::string &status,
                const std::string &outcome,
                std::uint64_t configHash, std::uint64_t seed,
                const std::string &payloadText);
Json makeShed(const std::string &id, std::uint64_t retryAfterMs,
              const std::string &reason);
Json makeError(const std::string &message);
/** @} */

/** 16-digit lower-case hex, the canonical hash spelling. */
std::string hashHex(std::uint64_t h);

} // namespace contutto::service

#endif // CONTUTTO_SERVICE_PROTOCOL_HH
