#include "service/memo_cache.hh"

#include "sim/checkpoint.hh"

namespace contutto::service
{

namespace
{
constexpr const char *kSection = "campaign-memo";
} // namespace

std::string
MemoCache::lookup(std::uint64_t configHash, std::uint64_t seed)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = index_.find({configHash, seed});
    if (it == index_.end()) {
        ++misses_;
        return {};
    }
    ++hits_;
    // Refresh recency: splice to the hot end.
    lru_.splice(lru_.end(), lru_, it->second);
    it->second = std::prev(lru_.end());
    return it->second->second;
}

void
MemoCache::insert(std::uint64_t configHash, std::uint64_t seed,
                  const std::string &payload)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lk(mtx_);
    Key key{configHash, seed};
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = payload;
        lru_.splice(lru_.end(), lru_, it->second);
        it->second = std::prev(lru_.end());
        return;
    }
    lru_.emplace_back(key, payload);
    index_[key] = std::prev(lru_.end());
    while (index_.size() > capacity_) {
        index_.erase(lru_.front().first);
        lru_.pop_front();
        ++evictions_;
    }
}

std::uint64_t
MemoCache::hits() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return hits_;
}

std::uint64_t
MemoCache::misses() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return misses_;
}

std::uint64_t
MemoCache::evictions() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return evictions_;
}

std::size_t
MemoCache::size() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return index_.size();
}

void
MemoCache::save(const std::string &path) const
{
    ckpt::Checkpoint cp;
    ckpt::Section &s = cp.add(kSection);
    std::lock_guard<std::mutex> lk(mtx_);
    s.putU32(std::uint32_t(lru_.size()));
    for (const auto &entry : lru_) {
        s.putU64(entry.first.first);
        s.putU64(entry.first.second);
        s.putStr(entry.second);
    }
    cp.writeFile(path);
}

void
MemoCache::load(const std::string &path)
{
    ckpt::Checkpoint cp = ckpt::Checkpoint::readFile(path);
    ckpt::Section &s = cp.section(kSection);
    std::uint32_t n = s.getU32();
    std::lock_guard<std::mutex> lk(mtx_);
    lru_.clear();
    index_.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t hash = s.getU64();
        std::uint64_t seed = s.getU64();
        std::string payload = s.getStr();
        if (capacity_ == 0)
            continue;
        Key key{hash, seed};
        auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(payload);
            continue;
        }
        lru_.emplace_back(key, std::move(payload));
        index_[key] = std::prev(lru_.end());
        while (index_.size() > capacity_) {
            index_.erase(lru_.front().first);
            lru_.pop_front();
        }
    }
}

} // namespace contutto::service
