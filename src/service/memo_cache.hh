/**
 * @file
 * Size-bounded LRU memoization of campaign results.
 *
 * The whole simulation stack is deterministic: the same (config
 * hash, seed) always produces the same Result, so a replayed
 * request is a pure cache hit — the service can answer thousands
 * of duplicate sweep points without touching the engine. The cache
 * is bounded (an overload-hardened service must not grow without
 * limit just because clients are creative), LRU-evicted, and
 * persistable: on graceful drain the server saves the memo index
 * through the atomic checkpoint writer, and a restarted server
 * warms itself from that file — so a drain/restart cycle stays
 * byte-identical for every key it had already computed.
 */

#ifndef CONTUTTO_SERVICE_MEMO_CACHE_HH
#define CONTUTTO_SERVICE_MEMO_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace contutto::service
{

/** LRU map of (config hash, seed) -> result payload text. */
class MemoCache
{
  public:
    using Key = std::pair<std::uint64_t, std::uint64_t>;

    explicit MemoCache(std::size_t capacity)
        : capacity_(capacity)
    {
    }

    /** @return the payload for @p key, refreshing its recency;
     *  empty string on miss (payloads are never empty). */
    std::string lookup(std::uint64_t configHash,
                       std::uint64_t seed);

    /** Insert/refresh @p payload; evicts the coldest entry when
     *  over capacity. A capacity of 0 disables the cache. */
    void insert(std::uint64_t configHash, std::uint64_t seed,
                const std::string &payload);

    /** @{ Counters (monotonic since construction/load). */
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;
    std::size_t size() const;
    /** @} */

    /** Persist every entry, hottest last, via the atomic
     *  checkpoint writer (tmp + fsync + rename). */
    void save(const std::string &path) const;

    /** Load a previously saved index; entries beyond capacity are
     *  dropped coldest-first. Throws ckpt::Error on corruption. */
    void load(const std::string &path);

  private:
    mutable std::mutex mtx_;
    std::size_t capacity_;
    /** Front = coldest, back = hottest. */
    std::list<std::pair<Key, std::string>> lru_;
    std::map<Key, std::list<std::pair<Key, std::string>>::iterator>
        index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace contutto::service

#endif // CONTUTTO_SERVICE_MEMO_CACHE_HH
