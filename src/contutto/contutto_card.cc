#include "contutto/contutto_card.hh"

namespace contutto::fpga
{

ContuttoCard::ContuttoCard(const std::string &name, EventQueue &eq,
                           const ClockDomain &fabricDomain,
                           const ClockDomain &ddrDomain,
                           stats::StatGroup *parent,
                           const Params &params,
                           dmi::DmiChannel &upChannel,
                           dmi::DmiChannel &downChannel,
                           std::vector<mem::MemoryDevice *> devices)
    : SimObject(name, eq, fabricDomain, parent), params_(params),
      mbi_(name + ".mbi", eq, fabricDomain, this, params.mbi,
           upChannel, downChannel),
      bus_(name + ".avalon", eq, fabricDomain, this, params.avalon)
{
    ct_assert(!devices.empty());
    std::vector<mem::Ddr3Controller *> raw_ports;
    for (unsigned i = 0; i < devices.size(); ++i) {
        ct_assert(devices[i] != nullptr);
        controllers_.push_back(std::make_unique<mem::Ddr3Controller>(
            name + ".mc" + std::to_string(i), eq, ddrDomain, this,
            params.memctrl, *devices[i]));
        raw_ports.push_back(controllers_.back().get());
        capacity_ += devices[i]->capacity();
    }

    memSlave_ = std::make_unique<InterleavedMemSlave>(
        raw_ports,
        mem::LineInterleave{unsigned(raw_ports.size()),
                            dmi::cacheLineSize});
    bus_.attach(*memSlave_, bus::AddressRange{0, capacity_});

    mbs_ = std::make_unique<Mbs>(name + ".mbs", eq, fabricDomain,
                                 this, params.mbs, mbi_, bus_);
}

ResourceModel
ContuttoCard::resources() const
{
    ResourceModel model;
    model.addBaseDesign();
    if (params_.withLatencyKnob)
        model.addLatencyKnob();
    if (params_.withInlineOps)
        model.addInlineAccelEngines();
    if (params_.withAccelerators > 0)
        model.addAccessProcessor(params_.withAccelerators);
    if (params_.withPcie)
        model.addPcie();
    if (params_.withTcam)
        model.addTcam();
    return model;
}

} // namespace contutto::fpga
