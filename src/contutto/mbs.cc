#include "contutto/mbs.hh"

#include "sim/span.hh"
#include "sim/trace.hh"

#include <algorithm>
#include <cstring>

namespace contutto::fpga
{

using namespace dmi;
using namespace mem;

namespace
{

std::int64_t
laneAt(const CacheLine &line, unsigned lane)
{
    std::int64_t v = 0;
    std::memcpy(&v, line.data() + lane * 8, 8);
    return v;
}

void
setLane(CacheLine &line, unsigned lane, std::int64_t v)
{
    std::memcpy(line.data() + lane * 8, &v, 8);
}

} // namespace

Mbs::Mbs(const std::string &name, EventQueue &eq,
         const ClockDomain &domain, stats::StatGroup *parent,
         const Params &params, BufferLink &link, bus::AvalonBus &bus)
    : SimObject(name, eq, domain, parent), params_(params),
      link_(link), bus_(bus),
      writeArbEvent_{
          EventFunctionWrapper([this] { writeArbPump(0); },
                               name + ".writeArb0"),
          EventFunctionWrapper([this] { writeArbPump(1); },
                               name + ".writeArb1")},
      upPumpEvent_([this] { upstreamPump(); }, name + ".upPump"),
      stats_{{this, "reads", "read commands executed"},
             {this, "writes", "write commands executed"},
             {this, "rmws", "partial (RMW) writes executed"},
             {this, "flushes", "flush commands executed"},
             {this, "inlineOps", "in-line accelerated ops executed"},
             {this, "writeArbGrants", "write-port arbiter grants"},
             {this, "addrOrderStalls",
              "commands deferred for same-line ordering"},
             {this, "upstreamFrames", "frames sent upstream"},
             {this, "doneFramesPacked",
              "done frames carrying multiple tags"},
             {this, "cmdTimeouts", "command watchdog expirations"},
             {this, "cmdRetries", "memory accesses re-issued"},
             {this, "tagsReclaimed", "stuck tags forcibly freed"},
             {this, "droppedCompletions",
              "memory completions lost to injected stalls"},
             {this, "poisonedResponses",
              "read responses sent upstream poisoned"},
             {this, "engineOccupancy",
              "active command engines at dispatch"}}
{
    ct_assert(params_.knobPosition <= 7);
    readPorts_[0] = &bus_.createPort(name + ".rd0");
    readPorts_[1] = &bus_.createPort(name + ".rd1");
    writePorts_[0] = &bus_.createPort(name + ".wr0");
    writePorts_[1] = &bus_.createPort(name + ".wr1");
    link_.onFrame = [this](const DownFrame &f) { frameArrived(f); };
}

Mbs::~Mbs()
{
    for (auto &ev : writeArbEvent_)
        if (ev.scheduled())
            eventq().deschedule(&ev);
    if (upPumpEvent_.scheduled())
        eventq().deschedule(&upPumpEvent_);
}

void
Mbs::setKnobPosition(unsigned pos)
{
    ct_assert(pos <= 7);
    params_.knobPosition = pos;
}

bool
Mbs::quiescent() const
{
    return activeEngines_ == 0 && upQueue_.empty()
        && pendingFlushes_.empty() && deferred_.empty();
}

void
Mbs::powerReset()
{
    assembler_.reset();
    for (Engine &e : engines_) {
        e.active = false;
        e.phase = Phase::idle;
        e.retries = 0;
    }
    activeEngines_ = 0;
    for (unsigned p = 0; p < 2; ++p) {
        writeReady_[p].clear();
        if (writeArbEvent_[p].scheduled())
            eventq().deschedule(&writeArbEvent_[p]);
    }
    upQueue_.clear();
    if (upPumpEvent_.scheduled())
        eventq().deschedule(&upPumpEvent_);
    pendingFlushes_.clear();
    deferred_.clear();
}

void
Mbs::checkpointSave(ckpt::Section &out) const
{
    if (!quiescent())
        panic("%s: checkpoint while not quiescent", name().c_str());
    out.putU32(params_.knobPosition);
    out.putU32(frameCounter_);
    out.putU32(issueSeqCounter_);
    out.putU32(stallBudget_);
    out.putU32(std::uint32_t(engines_.size()));
    for (const Engine &e : engines_)
        out.putU32(e.issueSeq);
}

void
Mbs::checkpointRestore(ckpt::Section &in)
{
    if (!quiescent())
        panic("%s: restore while not quiescent", name().c_str());
    params_.knobPosition = in.getU32();
    frameCounter_ = in.getU32();
    issueSeqCounter_ = in.getU32();
    stallBudget_ = in.getU32();
    if (in.getU32() != engines_.size())
        throw ckpt::Error("MBS engine count mismatch");
    for (Engine &e : engines_)
        e.issueSeq = in.getU32();
}

bool
Mbs::addrConflictsWithActive(const MemCommand &cmd) const
{
    if (cmd.type == CmdType::flush)
        return false; // flush carries no address
    for (const Engine &e : engines_)
        if (e.active && e.cmd.type != CmdType::flush
            && e.cmd.addr == cmd.addr)
            return true;
    return false;
}

void
Mbs::retryDeferred()
{
    // Dispatch deferred commands in arrival order; a command stays
    // deferred while an active engine or an *earlier* deferred
    // command targets the same line.
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = deferred_.begin(); it != deferred_.end();
             ++it) {
            if (addrConflictsWithActive(it->cmd))
                continue;
            bool older_same_line = false;
            for (auto jt = deferred_.begin(); jt != it; ++jt) {
                if (jt->cmd.type != CmdType::flush
                    && jt->cmd.addr == it->cmd.addr) {
                    older_same_line = true;
                    break;
                }
            }
            if (older_same_line)
                continue;
            Deferred d = *it;
            deferred_.erase(it);
            dispatch(d.cmd, d.decoder, true);
            progress = true;
            break;
        }
    }
}

void
Mbs::frameArrived(const DownFrame &frame)
{
    unsigned decoder = frameCounter_++ & 1;
    if (auto cmd = assembler_.feed(frame)) {
        MemCommand c = *cmd;
        OneShotEvent::schedule(
            eventq(), clockEdge(params_.decodeCycles),
            [this, c, decoder] { dispatch(c, decoder); });
    }
}

void
Mbs::dispatch(const MemCommand &cmd, unsigned decoder,
              bool deferredRetry)
{
    // The command has fully arrived and cleared the decode pipeline:
    // end the downstream-wire span, start the buffer-residency span
    // (which includes any same-line deferral below). Re-dispatches
    // of deferred commands keep the spans they already own.
    if (!deferredRetry && cmd.traceId != noTraceId) {
        span::closeIfOpen(cmd.traceId, "dmi.down", curTick());
        span::open(cmd.traceId, "mbs", curTick());
    }

    // Same-line ordering: a command to a line with an older command
    // still in flight waits so reads cannot pass writes.
    if (addrConflictsWithActive(cmd)) {
        ++stats_.addrOrderStalls;
        deferred_.push_back(Deferred{cmd, decoder});
        return;
    }

    Engine &e = engines_[cmd.tag];
    if (e.active)
        panic("MBS: tag %u dispatched while engine busy", cmd.tag);
    e.active = true;
    e.cmd = cmd;
    ++activeEngines_;
    stats_.engineOccupancy.sample(double(activeEngines_));
    CT_TRACE("MBS", *this, "dispatch tag %u type %d addr 0x%llx "
             "(%u engines busy)", cmd.tag, int(cmd.type),
             (unsigned long long)cmd.addr, activeEngines_);

    switch (cmd.type) {
      case CmdType::read128:
        ++stats_.reads;
        e.phase = Phase::readIssued;
        issueRead(cmd.tag, decoder);
        break;
      case CmdType::write128:
        ++stats_.writes;
        e.phase = Phase::writeArb;
        requestWriteGrant(cmd.tag);
        break;
      case CmdType::partialWrite:
        // Atomic RMW: read, merge in the ALU, write back (§3.3(iii)).
        ++stats_.rmws;
        e.phase = Phase::readIssued;
        issueRead(cmd.tag, decoder);
        break;
      case CmdType::flush: {
        ++stats_.flushes;
        FlushOp op;
        op.tag = cmd.tag;
        for (unsigned t = 0; t < numTags; ++t) {
            const Engine &other = engines_[t];
            if (t != cmd.tag && other.active
                && other.cmd.type != CmdType::read128
                && other.cmd.type != CmdType::flush)
                op.waitingOn.push_back(std::uint8_t(t));
        }
        // Writes held in the same-line ordering queue are older than
        // this flush and must drain too.
        for (const Deferred &d : deferred_)
            if (d.cmd.type != CmdType::read128
                && d.cmd.type != CmdType::flush)
                op.waitingOn.push_back(d.cmd.tag);
        if (op.waitingOn.empty()) {
            respondDone(cmd.tag);
            finishEngine(cmd.tag);
        } else {
            pendingFlushes_.push_back(std::move(op));
        }
        break;
      }
      case CmdType::minStore:
      case CmdType::maxStore:
      case CmdType::condSwap:
        if (!params_.inlineOpsEnabled) {
            warn("MBS: in-line ops disabled; completing tag %u as "
                 "no-op", cmd.tag);
            respondDone(cmd.tag);
            finishEngine(cmd.tag);
            break;
        }
        ++stats_.inlineOps;
        e.phase = Phase::readIssued;
        issueRead(cmd.tag, decoder);
        break;
    }
}

bool
Mbs::consumeStall()
{
    if (stallBudget_ == 0)
        return false;
    --stallBudget_;
    ++stats_.droppedCompletions;
    return true;
}

void
Mbs::armCmdTimeout(unsigned tag)
{
    if (params_.cmdTimeout == 0)
        return;
    Engine &e = engines_[tag];
    e.issueSeq = ++issueSeqCounter_;
    std::uint32_t seq = e.issueSeq;
    // Exponential backoff: each retry waits twice as long, giving a
    // congested memory system room to drain before giving up.
    Tick wait = params_.cmdTimeout << e.retries;
    OneShotEvent::schedule(eventq(), curTick() + wait,
                           [this, tag, seq] {
                               engineTimeout(tag, seq);
                           });
}

void
Mbs::engineTimeout(unsigned tag, std::uint32_t seq)
{
    Engine &e = engines_[tag];
    // Stale watchdog: the access completed (or the tag moved on).
    if (!e.active || e.issueSeq != seq)
        return;
    if (e.phase != Phase::readIssued && e.phase != Phase::writeIssued)
        return;

    ++stats_.cmdTimeouts;
    if (e.retries >= params_.maxCmdRetries) {
        reclaimTag(tag);
        return;
    }
    ++e.retries;
    ++stats_.cmdRetries;
    CT_TRACE("MBS", *this, "tag %u timed out in phase %d; retry %u",
             tag, int(e.phase), e.retries);
    if (e.phase == Phase::readIssued)
        issueRead(tag, tag & 1);
    else
        issueWrite(tag, tag / (numTags / 2));
}

void
Mbs::reclaimTag(unsigned tag)
{
    Engine &e = engines_[tag];
    ++stats_.tagsReclaimed;
    warn("MBS: reclaiming tag %u after %u retries", tag, e.retries);
    if (errorLog_)
        errorLog_->record(curTick(), name(),
                          firmware::Severity::unrecoverable,
                          "command tag " + std::to_string(tag)
                              + " reclaimed after retry exhaustion");

    // The host is owed a response for the tag; a read gets poisoned
    // data so it never consumes garbage, everything else gets a bare
    // done. Write-class commands must also release any flush
    // waiting on them.
    bool write_class = e.cmd.type != CmdType::read128
        && e.cmd.type != CmdType::flush;
    if (e.cmd.type == CmdType::read128) {
        ++stats_.poisonedResponses;
        respondReadData(tag, CacheLine{}, true);
    }
    respondDone(tag);
    finishEngine(tag);
    if (write_class)
        noteWriteDrained(std::uint8_t(tag));
}

void
Mbs::issueRead(unsigned tag, unsigned decoder)
{
    Engine &e = engines_[tag];
    armCmdTimeout(tag);
    std::uint32_t seq = e.issueSeq;
    auto req = std::make_shared<MemRequest>();
    req->addr = e.cmd.addr;
    req->isWrite = false;
    req->traceId = e.cmd.traceId;
    req->onDone = [this, tag, seq](MemRequest &r) {
        CacheLine data = r.data;
        bool poisoned = r.poisoned;
        OneShotEvent::schedule(
            eventq(), clockEdge(params_.readReturnCycles),
            [this, tag, seq, data, poisoned] {
                Engine &eng = engines_[tag];
                if (!eng.active || eng.issueSeq != seq
                    || eng.phase != Phase::readIssued)
                    return; // superseded by a retry or reclaim
                if (consumeStall())
                    return;
                readReturned(tag, data, poisoned);
            });
    };
    issueToBus(*readPorts_[decoder], req);
}

void
Mbs::readReturned(unsigned tag, const CacheLine &data, bool poisoned)
{
    Engine &e = engines_[tag];
    ct_assert(e.active && e.phase == Phase::readIssued);
    if (e.cmd.type == CmdType::read128) {
        if (poisoned) {
            ++stats_.poisonedResponses;
            if (errorLog_)
                errorLog_->record(curTick(), name(),
                                  firmware::Severity::recoverable,
                                  "uncorrectable ECC on read tag "
                                      + std::to_string(tag));
        }
        respondReadData(tag, data, poisoned);
        respondDone(tag);
        finishEngine(tag);
        return;
    }
    if (poisoned) {
        // Containment: an RMW or in-line op must not fold poisoned
        // old data into memory. Drop the write, free the tag, and
        // let firmware know the line is suspect.
        ++stats_.poisonedResponses;
        if (errorLog_)
            errorLog_->record(curTick(), name(),
                              firmware::Severity::recoverable,
                              "RMW on poisoned line contained, tag "
                                  + std::to_string(tag));
        respondDone(tag);
        finishEngine(tag);
        noteWriteDrained(std::uint8_t(tag));
        return;
    }
    // RMW and in-line ops continue to the write path via the ALU.
    e.oldData = data;
    e.phase = Phase::writeArb;
    requestWriteGrant(tag);
}

void
Mbs::requestWriteGrant(unsigned tag)
{
    unsigned port = tag / (numTags / 2); // 16 engines per port
    writeReady_[port].push_back(std::uint8_t(tag));
    if (!writeArbEvent_[port].scheduled())
        scheduleClocked(&writeArbEvent_[port], 0);
}

void
Mbs::writeArbPump(unsigned port)
{
    if (writeReady_[port].empty())
        return;
    std::uint8_t tag = writeReady_[port].front();
    writeReady_[port].pop_front();
    ++stats_.writeArbGrants;

    Engine &e = engines_[tag];
    ct_assert(e.active && e.phase == Phase::writeArb);
    if (e.cmd.type == CmdType::write128) {
        // The ALU acts as a NOP for plain writes.
        e.phase = Phase::writeIssued;
        issueWrite(tag, port);
    } else {
        e.phase = Phase::merging;
        OneShotEvent::schedule(eventq(),
                               clockEdge(params_.aluCycles),
                               [this, tag, port] {
                                   mergeAndWrite(tag, port);
                               });
    }

    if (!writeReady_[port].empty())
        scheduleClocked(&writeArbEvent_[port], 1);
}

void
Mbs::mergeAndWrite(unsigned tag, unsigned port)
{
    Engine &e = engines_[tag];
    ct_assert(e.active && e.phase == Phase::merging);
    switch (e.cmd.type) {
      case CmdType::partialWrite:
        for (std::size_t i = 0; i < cacheLineSize; ++i)
            if (!e.cmd.enables[i])
                e.cmd.data[i] = e.oldData[i];
        break;
      case CmdType::minStore:
      case CmdType::maxStore:
        for (unsigned lane = 0; lane < cacheLineSize / 8; ++lane) {
            std::int64_t oldv = laneAt(e.oldData, lane);
            std::int64_t newv = laneAt(e.cmd.data, lane);
            std::int64_t keep = e.cmd.type == CmdType::minStore
                ? std::min(oldv, newv)
                : std::max(oldv, newv);
            setLane(e.cmd.data, lane, keep);
        }
        break;
      case CmdType::condSwap: {
        std::int64_t expected = laneAt(e.cmd.data, 0);
        std::int64_t desired = laneAt(e.cmd.data, 1);
        std::int64_t current = laneAt(e.oldData, 0);
        if (current != expected) {
            // Compare failed: no write; report the old value.
            MemResponse resp;
            resp.type = RespType::swapOld;
            resp.tag = std::uint8_t(tag);
            resp.swapSucceeded = false;
            resp.traceId = e.cmd.traceId;
            std::memcpy(resp.data.data(), e.oldData.data(), 8);
            enqueueUpstream(encodeResponse(resp));
            respondDone(tag);
            finishEngine(tag);
            noteWriteDrained(std::uint8_t(tag));
            return;
        }
        e.cmd.data = e.oldData;
        setLane(e.cmd.data, 0, desired);
        break;
      }
      default:
        panic("MBS: merge for non-RMW command");
    }
    e.phase = Phase::writeIssued;
    issueWrite(tag, port);
}

void
Mbs::issueWrite(unsigned tag, unsigned port)
{
    Engine &e = engines_[tag];
    armCmdTimeout(tag);
    std::uint32_t seq = e.issueSeq;
    auto req = std::make_shared<MemRequest>();
    req->addr = e.cmd.addr;
    req->isWrite = true;
    req->data = e.cmd.data;
    req->traceId = e.cmd.traceId;
    req->onDone = [this, tag, seq](MemRequest &) {
        Engine &eng = engines_[tag];
        if (!eng.active || eng.issueSeq != seq
            || eng.phase != Phase::writeIssued)
            return; // superseded by a retry or reclaim
        if (consumeStall())
            return;
        writeCompleted(tag);
    };
    issueToBus(*writePorts_[port], req);
}

void
Mbs::writeCompleted(unsigned tag)
{
    Engine &e = engines_[tag];
    ct_assert(e.active && e.phase == Phase::writeIssued);
    if (e.cmd.type == CmdType::condSwap) {
        MemResponse resp;
        resp.type = RespType::swapOld;
        resp.tag = std::uint8_t(tag);
        resp.swapSucceeded = true;
        resp.traceId = e.cmd.traceId;
        std::memcpy(resp.data.data(), e.oldData.data(), 8);
        enqueueUpstream(encodeResponse(resp));
    }
    respondDone(tag);
    finishEngine(tag);
    noteWriteDrained(std::uint8_t(tag));
}

void
Mbs::noteWriteDrained(std::uint8_t tag)
{
    for (auto it = pendingFlushes_.begin();
         it != pendingFlushes_.end();) {
        auto &waiting = it->waitingOn;
        waiting.erase(std::remove(waiting.begin(), waiting.end(), tag),
                      waiting.end());
        if (waiting.empty()) {
            respondDone(it->tag);
            finishEngine(it->tag);
            it = pendingFlushes_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Mbs::respondReadData(unsigned tag, const CacheLine &data,
                     bool poisoned)
{
    MemResponse resp;
    resp.type = RespType::readData;
    resp.tag = std::uint8_t(tag);
    resp.data = data;
    resp.poisoned = poisoned;
    resp.traceId = engines_[tag].cmd.traceId;
    enqueueUpstream(encodeResponse(resp));
}

void
Mbs::respondDone(unsigned tag)
{
    MemResponse resp;
    resp.type = RespType::done;
    resp.tag = std::uint8_t(tag);
    resp.traceId = engines_[tag].cmd.traceId;
    enqueueUpstream(encodeResponse(resp));
}

void
Mbs::enqueueUpstream(std::vector<UpFrame> frames)
{
    for (auto &f : frames)
        upQueue_.push_back(std::move(f));
    if (!upPumpEvent_.scheduled())
        scheduleClocked(&upPumpEvent_, params_.respondCycles);
}

void
Mbs::upstreamPump()
{
    for (unsigned n = 0;
         n < params_.upstreamFramesPerCycle && !upQueue_.empty();
         ++n) {
        UpFrame f = upQueue_.front();
        upQueue_.pop_front();
        // Completion packing: adjacent done frames share a frame.
        if (f.type == FrameType::done) {
            while (f.doneCount < params_.doneTagsPerFrame
                   && f.doneCount < 4 && !upQueue_.empty()
                   && upQueue_.front().type == FrameType::done
                   && upQueue_.front().doneCount == 1) {
                f.doneTags[f.doneCount++] =
                    upQueue_.front().doneTags[0];
                upQueue_.pop_front();
            }
            if (f.doneCount > 1)
                ++stats_.doneFramesPacked;
        }
        link_.sendFrame(f);
        ++stats_.upstreamFrames;
    }
    if (!upQueue_.empty())
        scheduleClocked(&upPumpEvent_, 1);
}

void
Mbs::finishEngine(unsigned tag)
{
    Engine &e = engines_[tag];
    ct_assert(e.active);
    if (e.cmd.traceId != noTraceId)
        span::closeIfOpen(e.cmd.traceId, "mbs", curTick());
    e = Engine{};
    ct_assert(activeEngines_ > 0);
    --activeEngines_;
    if (!deferred_.empty())
        retryDeferred();
}

void
Mbs::issueToBus(bus::AvalonBus::Port &port,
                const MemRequestPtr &req)
{
    unsigned delay_cycles =
        params_.knobPosition * params_.knobStepCycles;
    if (delay_cycles == 0) {
        port.submit(req);
        return;
    }
    if (req->traceId != noTraceId)
        span::open(req->traceId, "mbs.knob", curTick());
    bus::AvalonBus::Port *p = &port;
    MemRequestPtr r = req;
    OneShotEvent::schedule(
        eventq(), clockEdge(delay_cycles), [this, p, r] {
            if (r->traceId != noTraceId)
                span::closeIfOpen(r->traceId, "mbs.knob", curTick());
            p->submit(r);
        });
}

} // namespace contutto::fpga
