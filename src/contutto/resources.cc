#include "contutto/resources.hh"

#include <sstream>

namespace contutto::fpga
{

ResourceModel::ResourceModel(DeviceCapacity device) : device_(device)
{}

void
ResourceModel::add(const ResourceCost &cost)
{
    blocks_.push_back(cost);
}

void
ResourceModel::addBaseDesign()
{
    // Per-block split of the paper's Table 1 totals (the paper
    // reports only the sums; the split below is a plausible
    // apportioning that adds up exactly).
    add({"DMI PHY + 32:1 gearbox", 18432, 36864, 28});
    add({"MBI (CRC/seq/replay)", 18424, 24539, 36});
    add({"MBS (decoders + 32 engines)", 52000, 68000, 64});
    add({"Avalon interconnect + CDC", 12000, 18000, 20});
    add({"DDR3 soft controllers (x2)", 30000, 38000, 80});
    add({"Service (FSI/I2C/CSR)", 6000, 6000, 16});
}

void
ResourceModel::addLatencyKnob()
{
    add({"latency knob delay modules", 850, 2100, 0});
}

void
ResourceModel::addInlineAccelEngines()
{
    add({"in-line accel command engines", 9200, 11400, 8});
}

void
ResourceModel::addAccessProcessor(unsigned num_accelerators)
{
    add({"Access processor", 14500, 16800, 40});
    for (unsigned i = 0; i < num_accelerators; ++i)
        add({"block accelerator #" + std::to_string(i), 11000, 13000,
             24});
}

void
ResourceModel::addPcie()
{
    add({"PCIe endpoint", 21000, 29000, 60});
}

void
ResourceModel::addTcam()
{
    add({"TCAM", 16000, 12000, 180});
}

std::uint64_t
ResourceModel::totalAlms() const
{
    std::uint64_t sum = 0;
    for (const auto &b : blocks_)
        sum += b.alms;
    return sum;
}

std::uint64_t
ResourceModel::totalRegisters() const
{
    std::uint64_t sum = 0;
    for (const auto &b : blocks_)
        sum += b.registers;
    return sum;
}

std::uint64_t
ResourceModel::totalM20k() const
{
    std::uint64_t sum = 0;
    for (const auto &b : blocks_)
        sum += b.m20k;
    return sum;
}

double
ResourceModel::almUtilization() const
{
    return double(totalAlms()) / double(device_.alms);
}

double
ResourceModel::registerUtilization() const
{
    return double(totalRegisters()) / double(device_.registers);
}

double
ResourceModel::m20kUtilization() const
{
    return double(totalM20k()) / double(device_.m20k);
}

bool
ResourceModel::fits() const
{
    return totalAlms() <= device_.alms
        && totalRegisters() <= device_.registers
        && totalM20k() <= device_.m20k;
}

std::string
ResourceModel::report() const
{
    std::ostringstream os;
    os << "Resource   | Available | Utilized\n";
    os << "-----------+-----------+---------------------\n";
    auto line = [&os](const char *name, std::uint64_t avail,
                      std::uint64_t used) {
        os << name << " | " << avail << " | " << used << " ("
           << int(100.0 * double(used) / double(avail) + 0.5)
           << "%)\n";
    };
    line("ALMs      ", device_.alms, totalAlms());
    line("Registers ", device_.registers, totalRegisters());
    line("M20K      ", device_.m20k, totalM20k());
    return os.str();
}

} // namespace contutto::fpga
