/**
 * @file
 * The ConTutto card: the paper's primary contribution, assembled.
 *
 * A ConTutto card plugs into a POWER8 DMI slot in place of a CDIMM
 * and implements the memory-buffer function in a Stratix V FPGA
 * (paper §3). This class wires the FPGA logic together:
 *
 *   DMI channels -> MBI (link layer with replay/freeze)
 *               -> MBS (frame decoders, 32 command engines)
 *               -> latency knob delay modules
 *               -> Avalon bus (CDC)
 *               -> one DDR3 soft controller per DIMM port
 *               -> the plugged memory devices (DRAM/MRAM/NVDIMM).
 *
 * Consecutive cache lines interleave across the DIMM ports. The
 * resource model accounts the blocks present in the configuration
 * (Table 1).
 */

#ifndef CONTUTTO_CONTUTTO_CONTUTTO_CARD_HH
#define CONTUTTO_CONTUTTO_CONTUTTO_CARD_HH

#include <memory>
#include <vector>

#include "bus/avalon.hh"
#include "contutto/mbs.hh"
#include "contutto/resources.hh"
#include "dmi/channel.hh"
#include "dmi/link.hh"
#include "mem/ddr3_controller.hh"
#include "mem/line_interleave.hh"

namespace contutto::fpga
{

/** Routes line-interleaved accesses to the per-port controllers. */
class InterleavedMemSlave : public bus::AvalonSlave
{
  public:
    InterleavedMemSlave(std::vector<mem::Ddr3Controller *> ports,
                        mem::LineInterleave interleave)
        : ports_(std::move(ports)), interleave_(interleave)
    {}

    void
    access(const mem::MemRequestPtr &req) override
    {
        unsigned port = interleave_.portOf(req->addr);
        req->addr = interleave_.localAddr(req->addr);
        ports_[port]->submit(req);
    }

    std::string slaveName() const override { return "dimmPorts"; }

  private:
    std::vector<mem::Ddr3Controller *> ports_;
    mem::LineInterleave interleave_;
};

/** The assembled card. */
class ContuttoCard : public SimObject
{
  public:
    struct Params
    {
        /**
         * MBI link parameters. Defaults reflect the paper's timing
         * optimizations: FIFO-less receive capture plus a 2-stage
         * CRC (3 RX cycles), 1 TX cycle, and the 4-frame replay
         * freeze workaround.
         */
        dmi::BufferLink::Params mbi{
            /*txProcCycles=*/1,
            /*rxProcCycles=*/3,
            /*ackTimeout=*/nanoseconds(400),
            /*freezeRepeats=*/4,
            /*ackCoalesceCycles=*/1,
            /*windowLimit=*/120,
        };
        Mbs::Params mbs;
        bus::AvalonBus::Params avalon{
            /*cdcCycles=*/6,
            /*portIssueCycles=*/1,
            /*portQueueCapacity=*/64,
        };
        /**
         * Soft-IP DDR3 controller timing. The generated half-rate
         * FPGA controller is far slower than Centaur's hard ASIC
         * controller; its deep frontend is a major contributor to
         * ConTutto's 390 ns base latency (Table 3).
         */
        mem::Ddr3Controller::Params memctrl{
            mem::ddr3_1333(),
            /*numBanks=*/8,
            /*frontendLatency=*/nanoseconds(105),
            /*bankInterleaveShift=*/7,
            /*queueCapacity=*/64,
        };
        /** Account optional blocks in the resource model. */
        bool withLatencyKnob = true;
        bool withInlineOps = true;
        unsigned withAccelerators = 0; ///< Access processor count.
        bool withPcie = false;
        bool withTcam = false;
    };

    /**
     * @param devices one memory device per DIMM port (the card has
     *        two DDR3 DIMM connectors; tests may use one).
     */
    ContuttoCard(const std::string &name, EventQueue &eq,
                 const ClockDomain &fabricDomain,
                 const ClockDomain &ddrDomain,
                 stats::StatGroup *parent, const Params &params,
                 dmi::DmiChannel &upChannel,
                 dmi::DmiChannel &downChannel,
                 std::vector<mem::MemoryDevice *> devices);

    /** The MBI link endpoint (for training and link stats). */
    dmi::BufferLink &mbi() { return mbi_; }

    /**
     * What losing the 12 V input does to the FPGA: link-layer state
     * and every in-flight command evaporate. The DIMMs' own story
     * (NVDIMM saves) is the PowerDomain's business, not the card's.
     */
    void
    powerReset()
    {
        mbi_.resetLink();
        mbs_->powerReset();
    }

    /** The MBS command logic (knob control, stats). */
    Mbs &mbs() { return *mbs_; }

    bus::AvalonBus &avalon() { return bus_; }

    mem::Ddr3Controller &controller(unsigned i)
    {
        return *controllers_.at(i);
    }

    unsigned numPorts() const { return unsigned(controllers_.size()); }

    /** Total memory behind the card. */
    std::uint64_t capacity() const { return capacity_; }

    /** Static FPGA resource accounting for this configuration. */
    ResourceModel resources() const;

    /** True when the card has no command or response in flight. */
    bool
    quiescent() const
    {
        if (!mbs_->quiescent() || !mbi_.quiescent())
            return false;
        for (const auto &c : controllers_)
            if (c->pending() != 0)
                return false;
        return true;
    }

  private:
    Params params_;
    dmi::BufferLink mbi_;
    bus::AvalonBus bus_;
    std::vector<std::unique_ptr<mem::Ddr3Controller>> controllers_;
    std::unique_ptr<InterleavedMemSlave> memSlave_;
    std::unique_ptr<Mbs> mbs_;
    std::uint64_t capacity_ = 0;
};

} // namespace contutto::fpga

#endif // CONTUTTO_CONTUTTO_CONTUTTO_CARD_HH
