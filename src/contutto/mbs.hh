/**
 * @file
 * The Memory Buffer Synchronous (MBS) logic of ConTutto.
 *
 * MBS receives and executes the downstream commands (paper
 * §3.3(iii)): two parallel frame decoders handle two frames per
 * 250 MHz cycle; 32 identical command engines own commands from
 * dispatch to completion; read requests are issued directly by the
 * frame decoders on dedicated Avalon read ports (no arbitration);
 * each Avalon write port serves 16 engines through an arbiter, with
 * the shared RMW ALU on the write path; a single unified arbiter
 * feeds the upstream channel so read data stays contiguous while
 * done notifications can pack together.
 *
 * Extensions over the Centaur feature set (paper §4.2-4.3):
 *  - a software-controlled latency knob inserting delay modules
 *    between MBS and the Avalon bus, 6 fabric cycles (24 ns) per
 *    position;
 *  - a flush command that completes only after all outstanding
 *    writes reached memory (persistent-memory support);
 *  - in-line accelerated ops (min-store, max-store, conditional
 *    swap) executed by augmented command engines.
 */

#ifndef CONTUTTO_CONTUTTO_MBS_HH
#define CONTUTTO_CONTUTTO_MBS_HH

#include <array>
#include <deque>
#include <vector>

#include "bus/avalon.hh"
#include "dmi/codec.hh"
#include "dmi/link.hh"
#include "firmware/error_log.hh"
#include "sim/checkpoint.hh"

namespace contutto::fpga
{

/** The MBS command-processing logic. */
class Mbs : public SimObject, public ckpt::Checkpointable
{
  public:
    struct Params
    {
        /** Frame parse + command dispatch pipeline, cycles. */
        unsigned decodeCycles = 3;
        /** Read-return handler pipeline, cycles. */
        unsigned readReturnCycles = 2;
        /** Upstream arbitration pipeline, cycles. */
        unsigned respondCycles = 1;
        /** RMW ALU latency, cycles. */
        unsigned aluCycles = 1;
        /** Latency-knob step: 6 cycles = 24 ns (paper §4.1). */
        unsigned knobStepCycles = 6;
        /** Initial knob position (0..7). */
        unsigned knobPosition = 0;
        /** Upstream frames the arbiter can launch per cycle. */
        unsigned upstreamFramesPerCycle = 2;
        /** Done tags that may share one upstream frame. */
        unsigned doneTagsPerFrame = 2;
        /** Enable the in-line accelerated ops (§4.3). */
        bool inlineOpsEnabled = true;
        /**
         * Per-command watchdog: if a memory access has not completed
         * this long after issue the engine re-issues it (with
         * exponential backoff) and eventually reclaims the tag. The
         * default sits far above any legitimate access latency, even
         * with a saturated 64-deep controller queue, so only genuine
         * losses trip it. 0 disables the watchdog.
         */
        Tick cmdTimeout = microseconds(20);
        /** Re-issues before a stuck tag is reclaimed. */
        unsigned maxCmdRetries = 3;
    };

    Mbs(const std::string &name, EventQueue &eq,
        const ClockDomain &domain, stats::StatGroup *parent,
        const Params &params, dmi::BufferLink &link,
        bus::AvalonBus &bus);

    ~Mbs() override;

    /** Move the latency knob (software controllable, §4.1). */
    void setKnobPosition(unsigned pos);
    unsigned knobPosition() const { return params_.knobPosition; }

    /** Added one-way latency of the current knob setting. */
    Tick
    knobDelay() const
    {
        return clockPeriod() * params_.knobPosition
            * params_.knobStepCycles;
    }

    /** True when all 32 engines are idle and nothing is queued. */
    bool quiescent() const;

    /** Engines currently owning a command. */
    unsigned activeEngines() const { return activeEngines_; }

    /** Route RAS events (reclaimed tags, poison) to the FSP log. */
    void attachErrorLog(firmware::ErrorLog *log) { errorLog_ = log; }

    /**
     * Power-cut reset: drop every engine, partial command assembly,
     * queued arbitration and upstream frame, exactly as the real
     * FPGA does when the rails collapse. Stale bus completions that
     * arrive afterwards are discarded by the per-issue generation
     * guard; the host port's own abort handles the commands' fate.
     */
    void powerReset();

    /**
     * Fault injection: swallow the next @p n memory completions as
     * if the bus lost them, leaving the engines to their watchdogs.
     */
    void stallNextCompletions(unsigned n) { stallBudget_ += n; }

    struct MbsStats
    {
        stats::Scalar reads;
        stats::Scalar writes;
        stats::Scalar rmws;
        stats::Scalar flushes;
        stats::Scalar inlineOps;
        stats::Scalar writeArbGrants;
        stats::Scalar addrOrderStalls;
        stats::Scalar upstreamFrames;
        stats::Scalar doneFramesPacked;
        stats::Scalar cmdTimeouts;        ///< Watchdog expirations.
        stats::Scalar cmdRetries;         ///< Accesses re-issued.
        stats::Scalar tagsReclaimed;      ///< Tags freed by force.
        stats::Scalar droppedCompletions; ///< Injected stalls consumed.
        stats::Scalar poisonedResponses;  ///< Poison sent upstream.
        stats::Distribution engineOccupancy;
    };

    const MbsStats &mbsStats() const { return stats_; }

    /** @{ ckpt::Checkpointable: the state that survives powerReset
     *  and steers future behavior — knob position, decoder rotation,
     *  issue-sequence counter, stall budget, per-engine generation
     *  guards. Only legal while quiescent. */
    void checkpointSave(ckpt::Section &out) const override;
    void checkpointRestore(ckpt::Section &in) override;
    /** @} */

  private:
    enum class Phase : std::uint8_t
    {
        idle,
        readIssued,     ///< Waiting for memory read data.
        writeArb,       ///< Waiting for a write-port grant.
        writeIssued,    ///< Waiting for memory write completion.
        merging,        ///< In the RMW ALU.
    };

    struct Engine
    {
        bool active = false;
        Phase phase = Phase::idle;
        dmi::MemCommand cmd;
        dmi::CacheLine oldData{}; ///< Read data for RMW/inline ops.
        unsigned retries = 0;     ///< Watchdog re-issues so far.
        /**
         * Generation counter for the outstanding memory access;
         * completions and timeouts for older issues of this tag
         * carry a stale value and are ignored.
         */
        std::uint32_t issueSeq = 0;
    };

    /** A pending flush: completes when its tag set drains. */
    struct FlushOp
    {
        std::uint8_t tag;
        std::vector<std::uint8_t> waitingOn;
    };

    void frameArrived(const dmi::DownFrame &frame);
    void dispatch(const dmi::MemCommand &cmd, unsigned decoder,
                  bool deferredRetry = false);
    bool addrConflictsWithActive(const dmi::MemCommand &cmd) const;
    void retryDeferred();
    void issueRead(unsigned tag, unsigned decoder);
    void readReturned(unsigned tag, const dmi::CacheLine &data,
                      bool poisoned);
    void requestWriteGrant(unsigned tag);
    void writeArbPump(unsigned port);
    void issueWrite(unsigned tag, unsigned port);
    void writeCompleted(unsigned tag);
    void armCmdTimeout(unsigned tag);
    void engineTimeout(unsigned tag, std::uint32_t seq);
    void reclaimTag(unsigned tag);
    bool consumeStall();
    void mergeAndWrite(unsigned tag, unsigned port);
    void respondReadData(unsigned tag, const dmi::CacheLine &data,
                         bool poisoned);
    void respondDone(unsigned tag);
    void enqueueUpstream(std::vector<dmi::UpFrame> frames);
    void upstreamPump();
    void finishEngine(unsigned tag);
    void noteWriteDrained(std::uint8_t tag);

    /** Submit to the bus through the latency-knob delay modules. */
    void issueToBus(bus::AvalonBus::Port &port,
                    const mem::MemRequestPtr &req);

    Params params_;
    dmi::BufferLink &link_;
    bus::AvalonBus &bus_;
    dmi::CommandAssembler assembler_;
    std::array<Engine, dmi::numTags> engines_{};
    unsigned activeEngines_ = 0;
    unsigned frameCounter_ = 0; ///< Alternates the two decoders.

    bus::AvalonBus::Port *readPorts_[2];
    bus::AvalonBus::Port *writePorts_[2];

    /** Per-write-port arbitration queue of ready engines. */
    std::deque<std::uint8_t> writeReady_[2];
    EventFunctionWrapper writeArbEvent_[2];

    std::deque<dmi::UpFrame> upQueue_;
    EventFunctionWrapper upPumpEvent_;

    std::vector<FlushOp> pendingFlushes_;

    /** Commands held back by same-line address ordering. */
    struct Deferred
    {
        dmi::MemCommand cmd;
        unsigned decoder;
    };
    std::deque<Deferred> deferred_;

    std::uint32_t issueSeqCounter_ = 0;
    unsigned stallBudget_ = 0;
    firmware::ErrorLog *errorLog_ = nullptr;

    MbsStats stats_;
};

} // namespace contutto::fpga

#endif // CONTUTTO_CONTUTTO_MBS_HH
