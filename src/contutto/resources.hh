/**
 * @file
 * Static FPGA resource accounting for the ConTutto design.
 *
 * Synthesis cannot be simulated; instead every block in the design
 * declares its post-fit resource cost (ALMs, registers, M20K block
 * RAMs) and the model sums them against the Stratix V A9 device
 * capacity. The base-configuration totals reproduce Table 1 of the
 * paper: 136,856 ALMs (43%), 191,403 registers (30%), 244 M20K (9%).
 * Optional blocks (latency knob, in-line ops, Access processor and
 * accelerators, PCIe, TCAM) add their costs when enabled, supporting
 * the paper's point that the base design leaves most of the FPGA
 * free for architectural exploration.
 */

#ifndef CONTUTTO_CONTUTTO_RESOURCES_HH
#define CONTUTTO_CONTUTTO_RESOURCES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace contutto::fpga
{

/** Resource cost of one logic block. */
struct ResourceCost
{
    std::string block;
    std::uint64_t alms = 0;
    std::uint64_t registers = 0;
    std::uint64_t m20k = 0;
};

/** The Stratix V GX A9 device capacity (paper Table 1). */
struct DeviceCapacity
{
    std::uint64_t alms = 317000;
    std::uint64_t registers = 634000;
    std::uint64_t m20k = 2640;
};

/** Accumulates block costs and reports utilization. */
class ResourceModel
{
  public:
    explicit ResourceModel(DeviceCapacity device = {});

    /** Add a block's cost. */
    void add(const ResourceCost &cost);

    /** Add the fixed base-design blocks (paper Table 1 totals). */
    void addBaseDesign();

    /** @{ Optional feature blocks. */
    void addLatencyKnob();
    void addInlineAccelEngines();
    void addAccessProcessor(unsigned num_accelerators);
    void addPcie();
    void addTcam();
    /** @} */

    std::uint64_t totalAlms() const;
    std::uint64_t totalRegisters() const;
    std::uint64_t totalM20k() const;

    double almUtilization() const;
    double registerUtilization() const;
    double m20kUtilization() const;

    /** True when everything fits in the device. */
    bool fits() const;

    const std::vector<ResourceCost> &blocks() const { return blocks_; }
    const DeviceCapacity &device() const { return device_; }

    /** Render a Table 1 style report. */
    std::string report() const;

  private:
    DeviceCapacity device_;
    std::vector<ResourceCost> blocks_;
};

} // namespace contutto::fpga

#endif // CONTUTTO_CONTUTTO_RESOURCES_HH
