/**
 * @file
 * DMI link watchdog: replay-storm detection and escalation.
 *
 * Sporadic CRC errors are business as usual on a multi-gigabit link —
 * the replay protocol absorbs them silently. A *storm* of replays in
 * a short window means something is broken: a marginal lane, a failed
 * retrain, persistent interference. The watchdog counts replays in a
 * sliding window and escalates through the repair ladder the paper
 * attributes to the link hardware and service processor (§2.2, §3.2):
 *
 *   level 1  retrain the link          (info)
 *   level 2  activate the spare lane   (recoverable)
 *   level 3  degraded-width operation  (recoverable)
 *   level 4  channel offline           (unrecoverable)
 *
 * Actions are injected as callbacks so the watchdog composes with any
 * channel topology; every escalation lands in the firmware ErrorLog
 * with its severity.
 */

#ifndef CONTUTTO_RAS_WATCHDOG_HH
#define CONTUTTO_RAS_WATCHDOG_HH

#include <deque>
#include <functional>

#include "firmware/error_log.hh"
#include "sim/sim_object.hh"

namespace contutto::ras
{

/** Watches one link's replay rate and escalates on storms. */
class LinkWatchdog : public SimObject
{
  public:
    struct Params
    {
        /** Sliding window over which replays are counted. */
        Tick window = microseconds(2);
        /** Replays within the window that constitute a storm. */
        unsigned replayThreshold = 4;
        /**
         * Minimum time between escalations, giving the previous
         * repair a chance to take effect before judging it failed.
         */
        Tick cooldown = microseconds(10);
    };

    /** Repair actions, one per escalation level. */
    struct Actions
    {
        std::function<void()> retrain;
        std::function<void()> spareLane;
        std::function<void()> degrade;
        std::function<void()> offline;
    };

    LinkWatchdog(const std::string &name, EventQueue &eq,
                 const ClockDomain &domain, stats::StatGroup *parent,
                 const Params &params);

    void setActions(Actions actions) { actions_ = std::move(actions); }

    void attachErrorLog(firmware::ErrorLog *log) { errorLog_ = log; }

    /** Feed from LinkEndpoint::onReplay. */
    void noteReplay();

    /** 0 = healthy; 1..4 = highest repair level reached. */
    unsigned escalationLevel() const { return level_; }

    /** Declare the link healthy again (e.g. after manual repair). */
    void reset();

    struct WatchdogStats
    {
        stats::Scalar replaysObserved;
        stats::Scalar stormsDetected;
        stats::Scalar retrains;
        stats::Scalar sparesActivated;
        stats::Scalar degrades;
        stats::Scalar offlines;
    };

    const WatchdogStats &watchdogStats() const { return stats_; }

  private:
    void escalate();

    Params params_;
    Actions actions_;
    firmware::ErrorLog *errorLog_ = nullptr;
    std::deque<Tick> recent_; ///< Replay times inside the window.
    unsigned level_ = 0;
    Tick nextAllowed_ = 0;    ///< Cooldown gate for escalations.
    WatchdogStats stats_;
};

} // namespace contutto::ras

#endif // CONTUTTO_RAS_WATCHDOG_HH
