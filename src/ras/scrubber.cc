#include "ras/scrubber.hh"

#include <algorithm>

namespace contutto::ras
{

PatrolScrubber::PatrolScrubber(const std::string &name, EventQueue &eq,
                               const ClockDomain &domain,
                               stats::StatGroup *parent,
                               const Params &params,
                               mem::MemImage &image)
    : SimObject(name, eq, domain, parent), params_(params),
      image_(image), cursor_(params.base),
      beatEvent_([this] { beat(); }, name + ".beat"),
      stats_{{this, "linesScrubbed", "lines verified by patrol"},
             {this, "scrubCorrected",
              "single-bit faults repaired by patrol"},
             {this, "scrubUncorrectable",
              "multi-bit faults found by patrol"},
             {this, "scrubPasses", "complete sweeps of the region"}}
{
    ct_assert(params_.period > 0);
    ct_assert(params_.linesPerBeat > 0 && params_.lineSize > 0);
    if (params_.size == 0)
        params_.size = image_.capacity() - params_.base;
    ct_assert(params_.base + params_.size <= image_.capacity());
}

PatrolScrubber::~PatrolScrubber()
{
    if (beatEvent_.scheduled())
        eventq().deschedule(&beatEvent_);
}

void
PatrolScrubber::start()
{
    if (running_)
        return;
    running_ = true;
    if (!beatEvent_.scheduled())
        eventq().schedule(&beatEvent_, curTick() + params_.period);
}

void
PatrolScrubber::stop()
{
    running_ = false;
    if (beatEvent_.scheduled())
        eventq().deschedule(&beatEvent_);
}

void
PatrolScrubber::beat()
{
    if (!running_)
        return;
    Addr end = params_.base + params_.size;
    for (unsigned i = 0; i < params_.linesPerBeat; ++i) {
        std::size_t len = std::size_t(
            std::min<std::uint64_t>(params_.lineSize, end - cursor_));
        mem::EccScan scan = image_.verify(cursor_, len);
        ++stats_.linesScrubbed;
        stats_.scrubCorrected += scan.corrected;
        stats_.scrubUncorrectable += scan.uncorrectable;
        if (scan.uncorrectable != 0 && errorLog_)
            errorLog_->record(curTick(), name(),
                              firmware::Severity::recoverable,
                              "scrub found uncorrectable line at 0x"
                                  + std::to_string(cursor_));
        cursor_ += len;
        if (cursor_ >= end) {
            cursor_ = params_.base;
            ++stats_.scrubPasses;
        }
    }
    eventq().schedule(&beatEvent_, curTick() + params_.period);
}

} // namespace contutto::ras
