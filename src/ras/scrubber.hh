/**
 * @file
 * Patrol scrubber: background ECC sweep of a memory image.
 *
 * Demand reads only verify lines the workload touches; a latent
 * single-bit fault in cold memory would sit undetected until a second
 * hit in the same word makes it uncorrectable. The patrol scrubber
 * walks the whole image on a configurable period — the classic
 * DRAM-scrub strategy server RAS guides mandate — repairing
 * single-bit faults in place and reporting multi-bit ones to the
 * service processor's ErrorLog.
 */

#ifndef CONTUTTO_RAS_SCRUBBER_HH
#define CONTUTTO_RAS_SCRUBBER_HH

#include "firmware/error_log.hh"
#include "mem/mem_image.hh"
#include "sim/sim_object.hh"

namespace contutto::ras
{

/** Periodically verifies and repairs a region of a MemImage. */
class PatrolScrubber : public SimObject
{
  public:
    struct Params
    {
        /** Time between scrub beats. */
        Tick period = microseconds(1);
        /** Lines verified per beat. */
        unsigned linesPerBeat = 8;
        /** Scrub granule; matches the ECC line the issue specifies. */
        std::size_t lineSize = 64;
        /** First byte of the scrubbed region. */
        Addr base = 0;
        /** Region length; 0 means the whole image. */
        std::uint64_t size = 0;
    };

    PatrolScrubber(const std::string &name, EventQueue &eq,
                   const ClockDomain &domain, stats::StatGroup *parent,
                   const Params &params, mem::MemImage &image);

    ~PatrolScrubber() override;

    /** Begin (or resume) patrolling from the current cursor. */
    void start();

    /** Pause patrolling; start() resumes where it stopped. */
    void stop();

    bool running() const { return running_; }

    /** Report multi-bit findings to the FSP log. */
    void attachErrorLog(firmware::ErrorLog *log) { errorLog_ = log; }

    /** Complete sweeps of the region so far. */
    std::uint64_t passes() const
    {
        return std::uint64_t(stats_.scrubPasses.value());
    }

    struct ScrubStats
    {
        stats::Scalar linesScrubbed;
        stats::Scalar scrubCorrected;
        stats::Scalar scrubUncorrectable;
        stats::Scalar scrubPasses;
    };

    const ScrubStats &scrubStats() const { return stats_; }

  private:
    void beat();

    Params params_;
    mem::MemImage &image_;
    firmware::ErrorLog *errorLog_ = nullptr;
    Addr cursor_;
    bool running_ = false;
    EventFunctionWrapper beatEvent_;
    ScrubStats stats_;
};

} // namespace contutto::ras

#endif // CONTUTTO_RAS_SCRUBBER_HH
