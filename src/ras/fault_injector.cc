#include "ras/fault_injector.hh"

#include <algorithm>
#include <set>

#include "sim/trace.hh"

namespace contutto::ras
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::dramBitFlip: return "dramBitFlip";
      case FaultKind::checkBitFlip: return "checkBitFlip";
      case FaultKind::frameCorrupt: return "frameCorrupt";
      case FaultKind::burstError: return "burstError";
      case FaultKind::frameDrop: return "frameDrop";
      case FaultKind::engineStall: return "engineStall";
      case FaultKind::scramblerDesync: return "scramblerDesync";
      case FaultKind::laneFail: return "laneFail";
      case FaultKind::nvdimmPowerLoss: return "nvdimmPowerLoss";
      case FaultKind::nvdimmPowerRestore: return "nvdimmPowerRestore";
      case FaultKind::powerCut: return "powerCut";
      case FaultKind::powerRestore: return "powerRestore";
      case FaultKind::brownout: return "brownout";
    }
    return "?";
}

FaultInjector::FaultInjector(const std::string &name, EventQueue &eq,
                             const ClockDomain &domain,
                             stats::StatGroup *parent,
                             std::uint64_t seed)
    : SimObject(name, eq, domain, parent), rng_(seed),
      stats_{{this, "bitFlips", "DRAM data bits flipped"},
             {this, "checkFlips", "ECC check bits flipped"},
             {this, "frameCorruptions", "frames single-bit corrupted"},
             {this, "burstErrors", "burst errors injected"},
             {this, "frameDrops", "frames dropped"},
             {this, "engineStalls", "completions swallowed"},
             {this, "scramblerDesyncs", "rx scrambler slips"},
             {this, "laneFails", "hard lane failures"},
             {this, "powerLosses", "NVDIMM power pulls"},
             {this, "powerRestores", "NVDIMM power restores"},
             {this, "powerCuts", "power-domain cuts"},
             {this, "domainRestores", "power-domain restores"},
             {this, "brownouts", "input dips injected"}}
{
}

unsigned
FaultInjector::addMemory(mem::MemImage *image)
{
    ct_assert(image != nullptr);
    memories_.push_back(image);
    return unsigned(memories_.size() - 1);
}

unsigned
FaultInjector::addChannel(dmi::DmiChannel *channel)
{
    ct_assert(channel != nullptr);
    channels_.push_back(channel);
    return unsigned(channels_.size() - 1);
}

unsigned
FaultInjector::addMbs(fpga::Mbs *mbs)
{
    ct_assert(mbs != nullptr);
    mbs_.push_back(mbs);
    return unsigned(mbs_.size() - 1);
}

unsigned
FaultInjector::addNvdimm(mem::NvdimmDevice *nvdimm)
{
    ct_assert(nvdimm != nullptr);
    nvdimms_.push_back(nvdimm);
    return unsigned(nvdimms_.size() - 1);
}

unsigned
FaultInjector::addPowerTarget(PowerTarget *target)
{
    ct_assert(target != nullptr);
    powerTargets_.push_back(target);
    return unsigned(powerTargets_.size() - 1);
}

void
FaultInjector::inject(const FaultEvent &ev)
{
    switch (ev.kind) {
      case FaultKind::dramBitFlip:
        memories_.at(ev.target)->injectBitFlip(ev.addr, ev.bit);
        ++stats_.bitFlips;
        break;
      case FaultKind::checkBitFlip:
        memories_.at(ev.target)->injectCheckBitFlip(ev.addr,
                                                    ev.bit % 8);
        ++stats_.checkFlips;
        break;
      case FaultKind::frameCorrupt:
        channels_.at(ev.target)->corruptNext(ev.count);
        stats_.frameCorruptions += ev.count;
        break;
      case FaultKind::burstError:
        channels_.at(ev.target)->corruptBurst(ev.bit, ev.count);
        ++stats_.burstErrors;
        break;
      case FaultKind::frameDrop:
        channels_.at(ev.target)->dropNext(ev.count);
        stats_.frameDrops += ev.count;
        break;
      case FaultKind::engineStall:
        mbs_.at(ev.target)->stallNextCompletions(ev.count);
        stats_.engineStalls += ev.count;
        break;
      case FaultKind::scramblerDesync:
        channels_.at(ev.target)->desyncRxScrambler();
        ++stats_.scramblerDesyncs;
        break;
      case FaultKind::laneFail:
        channels_.at(ev.target)->failLane(ev.bit);
        ++stats_.laneFails;
        break;
      case FaultKind::nvdimmPowerLoss:
        nvdimms_.at(ev.target)->powerLoss();
        ++stats_.powerLosses;
        break;
      case FaultKind::nvdimmPowerRestore:
        nvdimms_.at(ev.target)->powerRestore();
        ++stats_.powerRestores;
        break;
      case FaultKind::powerCut:
        powerTargets_.at(ev.target)->powerCut();
        ++stats_.powerCuts;
        break;
      case FaultKind::powerRestore:
        powerTargets_.at(ev.target)->powerRestore();
        ++stats_.domainRestores;
        break;
      case FaultKind::brownout:
        powerTargets_.at(ev.target)->brownout(ev.duration);
        ++stats_.brownouts;
        break;
    }
    history_.push_back(ev);
    CT_TRACE("RAS", *this, "injected %s target %u addr 0x%llx",
             faultKindName(ev.kind), ev.target,
             (unsigned long long)ev.addr);
}

void
FaultInjector::schedule(const FaultEvent &ev)
{
    ct_assert(ev.when >= curTick());
    FaultEvent copy = ev;
    OneShotEvent::schedule(eventq(), ev.when,
                           [this, copy] { inject(copy); });
}

std::vector<FaultEvent>
FaultInjector::planCampaign(const CampaignSpec &spec)
{
    std::vector<FaultEvent> plan;
    auto randWhen = [&] {
        return spec.start
            + Tick(rng_.below(std::uint64_t(spec.duration) + 1));
    };

    if (spec.bitFlips > 0) {
        ct_assert(!memories_.empty());
        ct_assert(spec.memSize >= Addr(spec.bitFlips) * 8
                  && "need one distinct word per flip");
        // Distinct (image, word) pairs: a second flip in the same
        // word would turn a correctable fault uncorrectable and
        // break the campaign's counter accounting.
        std::set<std::pair<unsigned, Addr>> used;
        while (used.size() < spec.bitFlips) {
            unsigned target =
                unsigned(rng_.below(memories_.size()));
            Addr word = spec.memBase
                + Addr(rng_.below(spec.memSize / 8)) * 8;
            if (!used.insert({target, word}).second)
                continue;
            FaultEvent ev;
            ev.when = randWhen();
            ev.kind = FaultKind::dramBitFlip;
            ev.target = target;
            ev.addr = word;
            ev.bit = unsigned(rng_.below(64));
            plan.push_back(ev);
        }
    }

    auto channelFaults = [&](FaultKind kind, unsigned n,
                             unsigned bit, unsigned count) {
        if (n == 0)
            return;
        ct_assert(!channels_.empty());
        for (unsigned i = 0; i < n; ++i) {
            FaultEvent ev;
            ev.when = randWhen();
            ev.kind = kind;
            ev.target = unsigned(rng_.below(channels_.size()));
            ev.bit = bit;
            ev.count = count;
            plan.push_back(ev);
        }
    };
    channelFaults(FaultKind::frameCorrupt, spec.frameCorruptions,
                  0, 1);
    channelFaults(FaultKind::frameDrop, spec.frameDrops, 0, 1);
    if (spec.burstErrors > 0) {
        ct_assert(!channels_.empty());
        for (unsigned i = 0; i < spec.burstErrors; ++i) {
            FaultEvent ev;
            ev.when = randWhen();
            ev.kind = FaultKind::burstError;
            ev.target = unsigned(rng_.below(channels_.size()));
            ev.bit = unsigned(rng_.below(64));
            ev.count = spec.burstBits;
            plan.push_back(ev);
        }
    }
    channelFaults(FaultKind::scramblerDesync, spec.scramblerDesyncs,
                  0, 1);

    if (spec.engineStalls > 0) {
        ct_assert(!mbs_.empty());
        for (unsigned i = 0; i < spec.engineStalls; ++i) {
            FaultEvent ev;
            ev.when = randWhen();
            ev.kind = FaultKind::engineStall;
            ev.target = unsigned(rng_.below(mbs_.size()));
            ev.count = 1;
            plan.push_back(ev);
        }
    }

    if (spec.powerCuts > 0) {
        ct_assert(!powerTargets_.empty());
        ct_assert(spec.outageMin <= spec.outageMax);
        for (unsigned i = 0; i < spec.powerCuts; ++i) {
            FaultEvent cut;
            cut.when = randWhen();
            cut.kind = FaultKind::powerCut;
            cut.target = unsigned(rng_.below(powerTargets_.size()));
            Tick outage =
                Tick(rng_.range(std::uint64_t(spec.outageMin),
                                std::uint64_t(spec.outageMax)));
            FaultEvent restore = cut;
            restore.kind = FaultKind::powerRestore;
            restore.when = cut.when + outage;
            plan.push_back(cut);
            plan.push_back(restore);
        }
    }

    if (spec.brownouts > 0) {
        ct_assert(!powerTargets_.empty());
        ct_assert(spec.brownoutMin <= spec.brownoutMax);
        for (unsigned i = 0; i < spec.brownouts; ++i) {
            FaultEvent ev;
            ev.when = randWhen();
            ev.kind = FaultKind::brownout;
            ev.target = unsigned(rng_.below(powerTargets_.size()));
            ev.duration =
                Tick(rng_.range(std::uint64_t(spec.brownoutMin),
                                std::uint64_t(spec.brownoutMax)));
            plan.push_back(ev);
        }
    }

    // Apply in time order so the schedule below is stable and the
    // history reads chronologically.
    std::stable_sort(plan.begin(), plan.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.when < b.when;
                     });
    return plan;
}

std::vector<FaultEvent>
FaultInjector::runCampaign(const CampaignSpec &spec)
{
    std::vector<FaultEvent> plan = planCampaign(spec);
    for (const FaultEvent &ev : plan)
        schedule(ev);
    return plan;
}

std::uint64_t
FaultInjector::injected(FaultKind kind) const
{
    const stats::Scalar *s = nullptr;
    switch (kind) {
      case FaultKind::dramBitFlip: s = &stats_.bitFlips; break;
      case FaultKind::checkBitFlip: s = &stats_.checkFlips; break;
      case FaultKind::frameCorrupt:
        s = &stats_.frameCorruptions;
        break;
      case FaultKind::burstError: s = &stats_.burstErrors; break;
      case FaultKind::frameDrop: s = &stats_.frameDrops; break;
      case FaultKind::engineStall: s = &stats_.engineStalls; break;
      case FaultKind::scramblerDesync:
        s = &stats_.scramblerDesyncs;
        break;
      case FaultKind::laneFail: s = &stats_.laneFails; break;
      case FaultKind::nvdimmPowerLoss: s = &stats_.powerLosses; break;
      case FaultKind::nvdimmPowerRestore:
        s = &stats_.powerRestores;
        break;
      case FaultKind::powerCut: s = &stats_.powerCuts; break;
      case FaultKind::powerRestore:
        s = &stats_.domainRestores;
        break;
      case FaultKind::brownout: s = &stats_.brownouts; break;
    }
    return s ? std::uint64_t(s->value()) : 0;
}

void
FaultInjector::checkpointSave(ckpt::Section &out) const
{
    rng_.checkpointSave(out);
    out.putU64(history_.size());
    for (const FaultEvent &ev : history_) {
        out.putU64(ev.when);
        out.putU8(std::uint8_t(ev.kind));
        out.putU32(ev.target);
        out.putU64(ev.addr);
        out.putU32(ev.bit);
        out.putU32(ev.count);
        out.putU64(ev.duration);
    }
}

void
FaultInjector::checkpointRestore(ckpt::Section &in)
{
    rng_.checkpointRestore(in);
    history_.clear();
    std::uint64_t n = in.getU64();
    history_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        FaultEvent ev;
        ev.when = in.getU64();
        ev.kind = FaultKind(in.getU8());
        ev.target = in.getU32();
        ev.addr = in.getU64();
        ev.bit = in.getU32();
        ev.count = in.getU32();
        ev.duration = in.getU64();
        history_.push_back(ev);
    }
}

} // namespace contutto::ras
