/**
 * @file
 * The RAS soak campaign as a reusable driver.
 *
 * A randomized multi-fault campaign against a live ConTutto system:
 * DRAM bit flips, frame corruptions, burst errors, frame drops and
 * engine stalls land while a closed-loop workload writes and reads
 * memory bit-exactly. Originally an integration test; extracted so
 * the long-running soak *campaigns* — many seeds farmed over shards
 * under the CampaignSupervisor, resumable from a task ledger — can
 * drive the identical scenario the test pins down. The test now
 * asserts on Result; bench_ras_soak runs fleets of them.
 */

#ifndef CONTUTTO_RAS_SOAK_CAMPAIGN_HH
#define CONTUTTO_RAS_SOAK_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <tuple>

#include "sim/checkpoint.hh"
#include "sim/types.hh"

namespace contutto::ras
{

/** One seeded soak run; stateless (construct-run-discard inside). */
class SoakCampaign
{
  public:
    struct Spec
    {
        std::uint64_t seed = 1;
        /** @{ Faults planned over the campaign window. */
        unsigned bitFlips = 24;
        unsigned frameCorruptions = 6;
        unsigned frameDrops = 4;
        unsigned burstErrors = 2;
        unsigned engineStalls = 3;
        /** @} */
        /** Write+read-verify pairs (region A), 8 closed loops. */
        unsigned ops = 320;
        /** Cold reference region (region B), per DIMM. */
        Addr faultBase = 4 * MiB;
        std::uint64_t faultSize = 64 * KiB;
        /** Fault-injection window. */
        Tick duration = microseconds(100);

        /** Stable serialization of every field *except* seed, in
         *  declaration order — the campaign service memoizes on
         *  (hash(), seed), so the seed must not fold into the
         *  config hash. */
        void serialize(ckpt::Section &out) const;
        /** FNV-1a over serialize(): the memo/config key. Same spec,
         *  same hash, across runs and processes. */
        std::uint64_t hash() const;
    };

    /** Counters plus the health verdicts the test asserts on; ==
     *  comparable so same-seed reproducibility is one line. */
    struct Result
    {
        /** @{ Health. */
        bool trained = false;
        /** Every op completed (forward progress under faults). */
        bool progressed = false;
        /** No host tags / command engines leaked at the end. */
        bool nothingLeaked = false;
        /** Region B matched its reference after two scrub passes. */
        bool regionRepaired = false;
        /** The cancel flag stopped the run early; counters partial. */
        bool cancelled = false;
        /** @} */

        /** @{ Counters (the reproducibility surface). */
        std::uint64_t planned = 0;
        std::uint64_t applied = 0;
        std::uint64_t corrected = 0;
        std::uint64_t uncorrectable = 0;
        std::uint64_t mismatches = 0;
        std::uint64_t failedOps = 0;
        std::uint64_t poisonedOps = 0;
        std::uint64_t cmdTimeouts = 0;
        std::uint64_t cmdRetries = 0;
        std::uint64_t tagsReclaimed = 0;
        std::uint64_t droppedCompletions = 0;
        std::uint64_t framesCorrupted = 0;
        std::uint64_t framesDropped = 0;
        std::uint64_t linkReplays = 0;
        std::uint64_t replaysObserved = 0;
        std::uint64_t escalationLevel = 0;
        std::uint64_t scrubPasses = 0;
        /** @} */

        auto
        tied() const
        {
            return std::tie(trained, progressed, nothingLeaked,
                            regionRepaired, cancelled, planned,
                            applied, corrected, uncorrectable,
                            mismatches, failedOps, poisonedOps,
                            cmdTimeouts, cmdRetries, tagsReclaimed,
                            droppedCompletions, framesCorrupted,
                            framesDropped, linkReplays,
                            replaysObserved, escalationLevel,
                            scrubPasses);
        }
        bool operator==(const Result &o) const
        {
            return tied() == o.tied();
        }

        /** The acceptance bar shared by test and campaign: zero
         *  integrity violations, nothing leaked, faults accounted. */
        bool
        healthy() const
        {
            return trained && progressed && nothingLeaked
                   && regionRepaired && !cancelled
                   && mismatches == 0 && failedOps == 0
                   && poisonedOps == 0 && applied == planned
                   && uncorrectable == 0;
        }

        /** Order-independent digest for the soak task ledger. */
        std::uint64_t fingerprint() const;
    };

    /**
     * Run the whole campaign synchronously. @p cancel, when
     * non-null, is polled between event batches (the supervisor's
     * cooperative token); a cancelled run returns early with
     * cancelled set and undefined counters.
     */
    static Result run(const Spec &spec,
                      const std::atomic<bool> *cancel = nullptr);
};

} // namespace contutto::ras

#endif // CONTUTTO_RAS_SOAK_CAMPAIGN_HH
