/**
 * @file
 * Unified fault-injection campaign driver.
 *
 * Every fault hook in the stack — DRAM bit flips (MemImage), frame
 * corruption/bursts/drops (DmiChannel), engine completion stalls
 * (Mbs), scrambler desync, lane failure, NVDIMM power loss — is
 * routed through one registry so integration tests compose faults
 * declaratively. Randomized campaigns are seeded from sim/random.hh:
 * the same seed plans the identical fault list, which is what lets
 * the soak test assert counter-for-counter reproducibility.
 */

#ifndef CONTUTTO_RAS_FAULT_INJECTOR_HH
#define CONTUTTO_RAS_FAULT_INJECTOR_HH

#include <vector>

#include "contutto/mbs.hh"
#include "dmi/channel.hh"
#include "mem/device.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"

namespace contutto::ras
{

/** Everything the injector knows how to break. */
enum class FaultKind : std::uint8_t
{
    dramBitFlip,      ///< Flip one data bit under the ECC's nose.
    checkBitFlip,     ///< Flip one stored ECC check bit.
    frameCorrupt,     ///< Single-bit corruption of the next frame(s).
    burstError,       ///< Contiguous multi-bit burst on the wire.
    frameDrop,        ///< Frame lost before the receiver.
    engineStall,      ///< Memory completion swallowed in the buffer.
    scramblerDesync,  ///< RX scrambler slips one frame slot.
    laneFail,         ///< Hard lane failure (spare or degrade).
    nvdimmPowerLoss,  ///< Pull power from an NVDIMM.
    nvdimmPowerRestore, ///< Restore power to an NVDIMM.
    powerCut,         ///< Kill a whole power domain.
    powerRestore,     ///< Bring a power domain back.
    brownout,         ///< Input dip; rides through or cuts power.
};

/**
 * A whole power domain the injector can kill and revive — the
 * firmware::PowerDomain implements this; the indirection keeps the
 * RAS layer free of a dependency on the firmware stack.
 */
class PowerTarget
{
  public:
    virtual ~PowerTarget() = default;
    virtual void powerCut() = 0;
    virtual void powerRestore() = 0;
    /** An input dip of @p dip; may or may not reach the rails. */
    virtual void brownout(Tick dip) = 0;
};

const char *faultKindName(FaultKind k);

/** One planned or applied fault. */
struct FaultEvent
{
    Tick when = 0;       ///< Absolute tick (schedule only).
    FaultKind kind = FaultKind::dramBitFlip;
    unsigned target = 0; ///< Index in the registry for this kind.
    Addr addr = 0;       ///< Byte address (memory faults).
    unsigned bit = 0;    ///< Bit index / start bit / lane number.
    unsigned count = 1;  ///< Frames, burst bits, or stalls.
    Tick duration = 0;   ///< Brownout dip length.
};

/** The single registry + driver for scripted fault campaigns. */
class FaultInjector : public SimObject, public ckpt::Checkpointable
{
  public:
    FaultInjector(const std::string &name, EventQueue &eq,
                  const ClockDomain &domain, stats::StatGroup *parent,
                  std::uint64_t seed);

    /** @{ Register targets; returns the index to use in events. */
    unsigned addMemory(mem::MemImage *image);
    unsigned addChannel(dmi::DmiChannel *channel);
    unsigned addMbs(fpga::Mbs *mbs);
    unsigned addNvdimm(mem::NvdimmDevice *nvdimm);
    unsigned addPowerTarget(PowerTarget *target);
    /** @} */

    /** Apply one fault immediately. */
    void inject(const FaultEvent &ev);

    /** Apply one fault at ev.when (must not be in the past). */
    void schedule(const FaultEvent &ev);

    /** Shape of a randomized multi-fault campaign. */
    struct CampaignSpec
    {
        Tick start = 0;           ///< First possible injection time.
        Tick duration = microseconds(100); ///< Injection window.
        /** DRAM single-bit flips, each in a *distinct* 8 B word of
         *  [memBase, memBase+memSize) so corrected-error counters
         *  match the injected count exactly. */
        unsigned bitFlips = 0;
        Addr memBase = 0;
        std::uint64_t memSize = 0;
        unsigned frameCorruptions = 0; ///< Across all channels.
        unsigned frameDrops = 0;       ///< Across all channels.
        unsigned burstErrors = 0;      ///< Across all channels.
        unsigned burstBits = 24;       ///< Bits per injected burst.
        unsigned engineStalls = 0;     ///< Across all Mbs targets.
        unsigned scramblerDesyncs = 0; ///< Across all channels.
        /** Power-cut/restore pairs across all power targets; each
         *  cut is followed by a restore after a seeded outage in
         *  [outageMin, outageMax]. Restores may land after
         *  start+duration. */
        unsigned powerCuts = 0;
        Tick outageMin = microseconds(50);
        Tick outageMax = microseconds(500);
        /** Input dips across all power targets; dip lengths are
         *  seeded in [brownoutMin, brownoutMax] — whether one rides
         *  through or turns into an outage is the domain's call. */
        unsigned brownouts = 0;
        Tick brownoutMin = microseconds(1);
        Tick brownoutMax = microseconds(1000);
    };

    /**
     * Deterministically expand a spec into concrete events (same
     * seed, same spec => identical plan) without applying them.
     */
    std::vector<FaultEvent> planCampaign(const CampaignSpec &spec);

    /** Plan and schedule everything; returns the plan. */
    std::vector<FaultEvent> runCampaign(const CampaignSpec &spec);

    /** Faults applied so far for @p kind. */
    std::uint64_t injected(FaultKind kind) const;

    /** Every fault applied so far, in application order. */
    const std::vector<FaultEvent> &history() const { return history_; }

    struct InjectorStats
    {
        stats::Scalar bitFlips;
        stats::Scalar checkFlips;
        stats::Scalar frameCorruptions;
        stats::Scalar burstErrors;
        stats::Scalar frameDrops;
        stats::Scalar engineStalls;
        stats::Scalar scramblerDesyncs;
        stats::Scalar laneFails;
        stats::Scalar powerLosses;
        stats::Scalar powerRestores;
        stats::Scalar powerCuts;
        stats::Scalar domainRestores;
        stats::Scalar brownouts;
    };

    const InjectorStats &injectorStats() const { return stats_; }

    /** @{ ckpt::Checkpointable: the campaign RNG stream and the
     *  applied-fault history. Scheduled-but-unapplied faults are the
     *  caller's to avoid (checkpoint between campaigns). */
    void checkpointSave(ckpt::Section &out) const override;
    void checkpointRestore(ckpt::Section &in) override;
    /** @} */

  private:
    Rng rng_;
    std::vector<mem::MemImage *> memories_;
    std::vector<dmi::DmiChannel *> channels_;
    std::vector<fpga::Mbs *> mbs_;
    std::vector<mem::NvdimmDevice *> nvdimms_;
    std::vector<PowerTarget *> powerTargets_;
    std::vector<FaultEvent> history_;
    InjectorStats stats_;
};

} // namespace contutto::ras

#endif // CONTUTTO_RAS_FAULT_INJECTOR_HH
