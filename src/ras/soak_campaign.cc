#include "ras/soak_campaign.hh"

#include <cstddef>
#include <functional>
#include <vector>

#include "cpu/system.hh"
#include "ras/fault_injector.hh"
#include "sim/checkpoint.hh"

namespace contutto::ras
{

namespace
{

dmi::CacheLine
patternFor(unsigned op)
{
    dmi::CacheLine line;
    for (unsigned j = 0; j < line.size(); ++j)
        line[j] = std::uint8_t(op * 31 + j * 7 + 5);
    return line;
}

/** Poll the cooperative token this often between event steps. */
constexpr unsigned kCancelStride = 4096;

bool
wantCancel(const std::atomic<bool> *cancel)
{
    return cancel != nullptr
           && cancel->load(std::memory_order_relaxed);
}

/**
 * Step @p eq until @p done (or the queue drains), polling the
 * cancel token every kCancelStride events. Returns false when the
 * loop stopped because of a cancel.
 */
bool
stepUntil(EventQueue &eq, const std::function<bool()> &done,
          const std::atomic<bool> *cancel)
{
    unsigned n = 0;
    while (!done() && eq.step()) {
        if (++n % kCancelStride == 0 && wantCancel(cancel))
            return false;
    }
    return !wantCancel(cancel);
}

} // namespace

void
SoakCampaign::Spec::serialize(ckpt::Section &out) const
{
    out.putU32(bitFlips);
    out.putU32(frameCorruptions);
    out.putU32(frameDrops);
    out.putU32(burstErrors);
    out.putU32(engineStalls);
    out.putU32(ops);
    out.putU64(faultBase);
    out.putU64(faultSize);
    out.putU64(duration);
}

std::uint64_t
SoakCampaign::Spec::hash() const
{
    ckpt::Section s("spec");
    serialize(s);
    return ckpt::fnv1a(s.bytes().data(), s.bytes().size());
}

std::uint64_t
SoakCampaign::Result::fingerprint() const
{
    // Fixed-width image of every compared field, hashed; the ledger
    // stores this so a resumed campaign can detect a seed whose
    // behaviour changed under it.
    std::vector<std::uint64_t> img{
        std::uint64_t(trained),       std::uint64_t(progressed),
        std::uint64_t(nothingLeaked), std::uint64_t(regionRepaired),
        std::uint64_t(cancelled),     planned,
        applied,                      corrected,
        uncorrectable,                mismatches,
        failedOps,                    poisonedOps,
        cmdTimeouts,                  cmdRetries,
        tagsReclaimed,                droppedCompletions,
        framesCorrupted,              framesDropped,
        linkReplays,                  replaysObserved,
        escalationLevel,              scrubPasses,
    };
    return ckpt::fnv1a(img.data(),
                       img.size() * sizeof(std::uint64_t));
}

SoakCampaign::Result
SoakCampaign::run(const Spec &spec, const std::atomic<bool> *cancel)
{
    using namespace contutto::cpu;

    Result r;

    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    p.seed = spec.seed;
    // A tight watchdog so injected completion losses recover inside
    // the campaign horizon (default is 20 us).
    p.cardParams.mbs.cmdTimeout = microseconds(5);
    p.ras.scrubEnabled = true;
    p.ras.scrub.period = microseconds(1);
    p.ras.scrub.linesPerBeat = 64;
    p.ras.scrub.base = spec.faultBase;
    p.ras.scrub.size = spec.faultSize;
    p.ras.watchdogEnabled = true;

    Power8System sys(p);
    r.trained = sys.train();
    if (!r.trained || wantCancel(cancel)) {
        r.cancelled = wantCancel(cancel);
        return r;
    }

    // Region B: a cold reference region in each DIMM that only the
    // bit-flip faults and the patrol scrubber ever touch.
    std::vector<std::uint8_t> ref(spec.faultSize);
    for (std::size_t i = 0; i < ref.size(); ++i)
        ref[i] = std::uint8_t(i * 13 + (i >> 9));
    for (unsigned d = 0; d < sys.numDimms(); ++d)
        sys.dimm(d).image().write(spec.faultBase, ref.size(),
                                  ref.data());

    FaultInjector inj("inj", sys.eventq(), sys.nestDomain(), &sys,
                      spec.seed);
    inj.addMemory(&sys.dimm(0).image());
    inj.addMemory(&sys.dimm(1).image());
    inj.addChannel(&sys.downChannel());
    inj.addChannel(&sys.upChannel());
    inj.addMbs(&sys.card()->mbs());

    FaultInjector::CampaignSpec cs;
    cs.start = sys.eventq().curTick();
    cs.duration = spec.duration;
    cs.bitFlips = spec.bitFlips;
    cs.memBase = spec.faultBase;
    cs.memSize = spec.faultSize;
    cs.frameCorruptions = spec.frameCorruptions;
    cs.frameDrops = spec.frameDrops;
    cs.burstErrors = spec.burstErrors;
    cs.engineStalls = spec.engineStalls;
    auto plan = inj.runCampaign(cs);
    r.planned = plan.size();

    // Region A workload: 8 closed loops, each writing a line then
    // reading it back and checking the data bit for bit.
    unsigned started = 0, completed = 0;
    const unsigned ops = spec.ops;
    std::function<void()> issueNext = [&] {
        if (started >= ops)
            return;
        unsigned op = started++;
        Addr a = Addr(op) * dmi::cacheLineSize;
        dmi::CacheLine line = patternFor(op);
        sys.port().write(a, line,
                         [&, a, op](const HostOpResult &wr) {
            if (wr.failed)
                ++r.failedOps;
            sys.port().read(a, [&, op](const HostOpResult &rr) {
                if (rr.failed)
                    ++r.failedOps;
                if (rr.poisoned)
                    ++r.poisonedOps;
                if (rr.data != patternFor(op))
                    ++r.mismatches;
                ++completed;
                issueNext();
            });
        });
    };
    for (int i = 0; i < 8; ++i)
        issueNext();
    if (!stepUntil(sys.eventq(),
                   [&] { return completed >= ops; }, cancel)) {
        r.cancelled = true;
        return r;
    }
    r.progressed = completed == ops;
    sys.runUntilIdle();

    // Let the remainder of the campaign window elapse so every
    // planned fault has been applied.
    Tick campaignEnd = cs.start + cs.duration + microseconds(1);
    if (sys.eventq().curTick() < campaignEnd)
        sys.runFor(campaignEnd - sys.eventq().curTick());
    if (wantCancel(cancel)) {
        r.cancelled = true;
        return r;
    }

    // Drain reads: enough traffic to consume any fault budget that
    // was armed after the workload went quiet (pending frame
    // corruptions/drops, swallowed completions), so the injected
    // counts reconcile exactly against the channel and MBS stats.
    for (int i = 0; i < 48; ++i)
        sys.port().read(Addr(i) * dmi::cacheLineSize,
                        [](const HostOpResult &) {});
    sys.runUntilIdle();

    // Two further full scrub passes repair every latent bit flip.
    for (unsigned d = 0; d < sys.numDimms(); ++d) {
        PatrolScrubber *scrub = sys.channel().scrubber(d);
        if (scrub == nullptr)
            continue;
        std::uint64_t target = scrub->passes() + 2;
        if (!stepUntil(sys.eventq(),
                       [&] { return scrub->passes() >= target; },
                       cancel)) {
            r.cancelled = true;
            return r;
        }
    }

    // Forward progress with nothing leaked.
    r.nothingLeaked = sys.port().inFlight() == 0
                      && sys.port().queued() == 0
                      && sys.card()->mbs().activeEngines() == 0;

    // Data integrity: the cold region matches the reference again.
    r.regionRepaired = true;
    std::vector<std::uint8_t> now(spec.faultSize);
    for (unsigned d = 0; d < sys.numDimms(); ++d) {
        sys.dimm(d).image().read(spec.faultBase, now.size(),
                                 now.data());
        if (now != ref)
            r.regionRepaired = false;
    }

    const auto &mbs = sys.card()->mbs().mbsStats();
    const auto &down = sys.downChannel().channelStats();
    const auto &up = sys.upChannel().channelStats();
    r.applied = inj.history().size();
    r.corrected = sys.dimm(0).image().correctedErrors()
                  + sys.dimm(1).image().correctedErrors();
    r.uncorrectable = sys.dimm(0).image().uncorrectableErrors()
                      + sys.dimm(1).image().uncorrectableErrors();
    r.cmdTimeouts = std::uint64_t(mbs.cmdTimeouts.value());
    r.cmdRetries = std::uint64_t(mbs.cmdRetries.value());
    r.tagsReclaimed = std::uint64_t(mbs.tagsReclaimed.value());
    r.droppedCompletions =
        std::uint64_t(mbs.droppedCompletions.value());
    r.framesCorrupted = std::uint64_t(down.framesCorrupted.value()
                                      + up.framesCorrupted.value());
    r.framesDropped = std::uint64_t(down.framesDropped.value()
                                    + up.framesDropped.value());
    r.linkReplays = std::uint64_t(
        sys.hostLink().linkStats().replaysTriggered.value()
        + sys.card()->mbi().linkStats().replaysTriggered.value());
    LinkWatchdog *dog = sys.channel().watchdog();
    if (dog != nullptr) {
        r.replaysObserved = std::uint64_t(
            dog->watchdogStats().replaysObserved.value());
        r.escalationLevel = dog->escalationLevel();
    }
    if (sys.channel().scrubber(0) != nullptr
        && sys.channel().scrubber(1) != nullptr)
        r.scrubPasses = sys.channel().scrubber(0)->passes()
                        + sys.channel().scrubber(1)->passes();
    return r;
}

} // namespace contutto::ras
