/**
 * @file
 * SEC-DED ECC codec for the memory path.
 *
 * Classic Hamming(72,64) with an overall parity bit, the geometry of
 * x72 ECC DIMMs: every 64-bit data word carries 8 check bits, so a
 * 64 B line is protected by 8 check bytes. Single-bit errors (in data
 * or check bits) are corrected; double-bit errors are detected and
 * reported uncorrectable so the datapath can poison the response
 * instead of returning garbage.
 *
 * Header-only on purpose: mem (MemImage) maintains the check bytes on
 * every functional write, while the higher-level RAS machinery
 * (patrol scrubber, fault injector) lives in ct_ras; keeping the
 * codec free of link dependencies avoids a library cycle.
 */

#ifndef CONTUTTO_RAS_ECC_HH
#define CONTUTTO_RAS_ECC_HH

#include <array>
#include <cstdint>

namespace contutto::ras
{

/** Outcome of decoding one protected word. */
enum class EccStatus : std::uint8_t
{
    clean,         ///< Syndrome zero, parity good.
    corrected,     ///< Single-bit error located and repaired.
    uncorrectable, ///< Double-bit (or worse) error detected.
};

namespace detail
{

/**
 * Codeword position (1-based, powers of two reserved for check
 * bits) of each of the 64 data bits.
 */
inline const std::array<std::uint8_t, 64> &
dataPositions()
{
    static const std::array<std::uint8_t, 64> table = [] {
        std::array<std::uint8_t, 64> t{};
        unsigned pos = 1;
        for (unsigned i = 0; i < 64; ++i) {
            while ((pos & (pos - 1)) == 0) // skip powers of two
                ++pos;
            t[i] = std::uint8_t(pos++);
        }
        return t;
    }();
    return table;
}

/** Map a codeword position back to its data-bit index; -1 if none. */
inline const std::array<std::int8_t, 128> &
positionToData()
{
    static const std::array<std::int8_t, 128> table = [] {
        std::array<std::int8_t, 128> t{};
        t.fill(-1);
        for (unsigned i = 0; i < 64; ++i)
            t[dataPositions()[i]] = std::int8_t(i);
        return t;
    }();
    return table;
}

/** XOR of the codeword positions of all set data bits. */
inline unsigned
dataSyndrome(std::uint64_t word)
{
    unsigned syn = 0;
    while (word != 0) {
        unsigned i = unsigned(__builtin_ctzll(word));
        syn ^= dataPositions()[i];
        word &= word - 1;
    }
    return syn;
}

} // namespace detail

/**
 * Compute the 8 check bits for a 64-bit word: 7 Hamming check bits
 * (bits 0..6) plus the overall parity (bit 7).
 */
inline std::uint8_t
eccEncode(std::uint64_t word)
{
    unsigned syn = detail::dataSyndrome(word);
    std::uint8_t check = std::uint8_t(syn & 0x7F);
    unsigned ones = unsigned(__builtin_popcountll(word))
        + unsigned(__builtin_popcount(check));
    if (ones & 1)
        check |= 0x80; // overall parity covers data + check bits
    return check;
}

/** Result of decoding one word against its stored check byte. */
struct EccDecode
{
    EccStatus status = EccStatus::clean;
    std::uint64_t data = 0;   ///< Corrected data word.
    std::uint8_t check = 0;   ///< Corrected check byte.
};

/**
 * Verify @p word against @p check; correct a single flipped bit in
 * either the data or the check byte.
 */
inline EccDecode
eccDecode(std::uint64_t word, std::uint8_t check)
{
    EccDecode out;
    out.data = word;
    out.check = check;

    unsigned syn = detail::dataSyndrome(word) ^ (check & 0x7F);
    unsigned ones = unsigned(__builtin_popcountll(word))
        + unsigned(__builtin_popcount(check));
    bool parity_bad = (ones & 1) != 0;

    if (syn == 0 && !parity_bad)
        return out; // clean

    if (!parity_bad) {
        // Even overall parity with a nonzero syndrome means an even
        // number of flipped bits: detected but not correctable.
        out.status = EccStatus::uncorrectable;
        return out;
    }

    // Odd number of errors: assume one and locate it.
    out.status = EccStatus::corrected;
    if (syn == 0) {
        out.check = std::uint8_t(check ^ 0x80); // parity bit itself
    } else if ((syn & (syn - 1)) == 0) {
        // A power-of-two syndrome points at a Hamming check bit.
        unsigned idx = unsigned(__builtin_ctz(syn));
        out.check = std::uint8_t(check ^ (1u << idx));
    } else {
        std::int8_t bit = detail::positionToData()[syn];
        if (bit < 0) {
            // Syndrome points outside the codeword: multi-bit error.
            out.status = EccStatus::uncorrectable;
            return out;
        }
        out.data = word ^ (std::uint64_t(1) << unsigned(bit));
    }
    return out;
}

/** Check bytes needed to protect @p bytes of data (one per 8 B). */
constexpr std::size_t
eccCheckBytes(std::size_t bytes)
{
    return bytes / 8;
}

} // namespace contutto::ras

#endif // CONTUTTO_RAS_ECC_HH
