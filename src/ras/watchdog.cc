#include "ras/watchdog.hh"

namespace contutto::ras
{

LinkWatchdog::LinkWatchdog(const std::string &name, EventQueue &eq,
                           const ClockDomain &domain,
                           stats::StatGroup *parent,
                           const Params &params)
    : SimObject(name, eq, domain, parent), params_(params),
      stats_{{this, "replaysObserved", "replay events seen"},
             {this, "stormsDetected",
              "windows exceeding the replay threshold"},
             {this, "retrains", "level-1 link retrains requested"},
             {this, "sparesActivated",
              "level-2 spare-lane activations"},
             {this, "degrades", "level-3 width degradations"},
             {this, "offlines", "level-4 channel offlines"}}
{
    ct_assert(params_.window > 0 && params_.replayThreshold > 0);
}

void
LinkWatchdog::noteReplay()
{
    ++stats_.replaysObserved;
    Tick now = curTick();
    recent_.push_back(now);
    while (!recent_.empty()
           && recent_.front() + params_.window < now)
        recent_.pop_front();
    if (recent_.size() < params_.replayThreshold)
        return;
    ++stats_.stormsDetected;
    if (now < nextAllowed_)
        return; // previous repair still settling
    escalate();
}

void
LinkWatchdog::escalate()
{
    if (level_ >= 4)
        return; // already offline; nothing further to try
    ++level_;
    recent_.clear();
    nextAllowed_ = curTick() + params_.cooldown;

    const char *what = "";
    firmware::Severity sev = firmware::Severity::info;
    switch (level_) {
      case 1:
        ++stats_.retrains;
        what = "replay storm: link retrain requested";
        sev = firmware::Severity::info;
        if (actions_.retrain)
            actions_.retrain();
        break;
      case 2:
        ++stats_.sparesActivated;
        what = "replay storm persists: spare lane activated";
        sev = firmware::Severity::recoverable;
        if (actions_.spareLane)
            actions_.spareLane();
        break;
      case 3:
        ++stats_.degrades;
        what = "spare exhausted: degraded-width operation";
        sev = firmware::Severity::recoverable;
        if (actions_.degrade)
            actions_.degrade();
        break;
      case 4:
        ++stats_.offlines;
        what = "link unusable: channel offline";
        sev = firmware::Severity::unrecoverable;
        if (actions_.offline)
            actions_.offline();
        break;
    }
    warn("%s: escalation level %u (%s)", name().c_str(), level_, what);
    if (errorLog_)
        errorLog_->record(curTick(), name(), sev, what);
}

void
LinkWatchdog::reset()
{
    recent_.clear();
    level_ = 0;
    nextAllowed_ = 0;
}

} // namespace contutto::ras
