#include "cpu/host_port.hh"

#include <cstring>

#include "sim/span.hh"

namespace contutto::cpu
{

using namespace dmi;

HostMemPort::HostMemPort(const std::string &name, EventQueue &eq,
                         const ClockDomain &domain,
                         stats::StatGroup *parent, HostLink &link)
    : SimObject(name, eq, domain, parent), link_(link),
      stats_{{this, "reads", "read commands issued"},
             {this, "writes", "write commands issued"},
             {this, "rmws", "partial writes issued"},
             {this, "flushes", "flush commands issued"},
             {this, "inlineOps", "in-line accel commands issued"},
             {this, "tagStalls", "issues stalled on tag exhaustion"},
             {this, "poisonedResponses",
              "responses carrying the ECC poison mark"},
             {this, "readLatency", "issue-to-data latency (ns)"},
             {this, "writeLatency", "issue-to-done latency (ns)"}}
{
    link_.onFrame = [this](const UpFrame &f) { frameArrived(f); };
}

void
HostMemPort::read(Addr addr, Callback cb)
{
    ++stats_.reads;
    MemCommand cmd;
    cmd.type = CmdType::read128;
    cmd.addr = addr;
    issue(std::move(cmd), std::move(cb));
}

void
HostMemPort::write(Addr addr, const CacheLine &data, Callback cb)
{
    ++stats_.writes;
    MemCommand cmd;
    cmd.type = CmdType::write128;
    cmd.addr = addr;
    cmd.data = data;
    issue(std::move(cmd), std::move(cb));
}

void
HostMemPort::partialWrite(Addr addr, const CacheLine &data,
                          const ByteEnable &enables, Callback cb)
{
    ++stats_.rmws;
    MemCommand cmd;
    cmd.type = CmdType::partialWrite;
    cmd.addr = addr;
    cmd.data = data;
    cmd.enables = enables;
    issue(std::move(cmd), std::move(cb));
}

void
HostMemPort::flush(Callback cb)
{
    ++stats_.flushes;
    MemCommand cmd;
    cmd.type = CmdType::flush;
    cmd.addr = 0;
    issue(std::move(cmd), std::move(cb));
}

void
HostMemPort::minStore(Addr addr, const CacheLine &data, Callback cb)
{
    ++stats_.inlineOps;
    MemCommand cmd;
    cmd.type = CmdType::minStore;
    cmd.addr = addr;
    cmd.data = data;
    issue(std::move(cmd), std::move(cb));
}

void
HostMemPort::maxStore(Addr addr, const CacheLine &data, Callback cb)
{
    ++stats_.inlineOps;
    MemCommand cmd;
    cmd.type = CmdType::maxStore;
    cmd.addr = addr;
    cmd.data = data;
    issue(std::move(cmd), std::move(cb));
}

void
HostMemPort::condSwap(Addr addr, std::uint64_t expected,
                      std::uint64_t desired, Callback cb)
{
    ++stats_.inlineOps;
    MemCommand cmd;
    cmd.type = CmdType::condSwap;
    cmd.addr = addr;
    std::memcpy(cmd.data.data(), &expected, 8);
    std::memcpy(cmd.data.data() + 8, &desired, 8);
    issue(std::move(cmd), std::move(cb));
}

void
HostMemPort::issue(MemCommand cmd, Callback cb, bool queuedRetry)
{
    // The trace starts here — the single funnel every operation
    // passes through. Re-issues of tag-stalled ops keep the id they
    // were assigned on first entry (queuedRetry avoids skewing the
    // 1-in-N sampling counter for unsampled ops).
    if (!queuedRetry && span::enabled()) {
        cmd.traceId = span::acquireId();
        if (cmd.traceId != noTraceId)
            span::open(cmd.traceId, "host", curTick());
    }

    // Find a free tag; if none, the processor has cycled through all
    // 32 and must wait for a done (paper §2.3).
    int free_tag = -1;
    for (unsigned t = 0; t < numTags; ++t) {
        if (!tags_[t].busy) {
            free_tag = int(t);
            break;
        }
    }
    if (free_tag < 0) {
        ++stats_.tagStalls;
        if (cmd.traceId != noTraceId)
            span::open(cmd.traceId, "host.tagwait", curTick());
        pending_.push_back(PendingOp{std::move(cmd), std::move(cb)});
        return;
    }

    if (cmd.traceId != noTraceId)
        span::closeIfOpen(cmd.traceId, "host.tagwait", curTick());

    cmd.tag = std::uint8_t(free_tag);
    TagState &ts = tags_[free_tag];
    ts.busy = true;
    ts.type = cmd.type;
    ts.cb = std::move(cb);
    ts.result = HostOpResult{};
    ts.result.issuedAt = curTick();
    ts.result.traceId = cmd.traceId;
    ++inFlight_;

    for (auto &f : encodeCommand(cmd))
        link_.sendFrame(f);
}

void
HostMemPort::abortInFlight()
{
    assembler_.reset();
    // Collect callbacks first: they may issue new operations.
    std::vector<Callback> callbacks;
    for (TagState &ts : tags_) {
        if (!ts.busy)
            continue;
        if (ts.result.traceId != noTraceId)
            span::closeAll(ts.result.traceId, curTick());
        if (ts.cb)
            callbacks.push_back(std::move(ts.cb));
        ts = TagState{};
    }
    inFlight_ = 0;
    for (PendingOp &op : pending_) {
        if (op.cmd.traceId != noTraceId)
            span::closeAll(op.cmd.traceId, curTick());
        if (op.cb)
            callbacks.push_back(std::move(op.cb));
    }
    pending_.clear();

    HostOpResult aborted;
    aborted.failed = true;
    for (Callback &cb : callbacks)
        cb(aborted);
}

void
HostMemPort::tryIssueQueued()
{
    while (!pending_.empty() && inFlight_ < numTags) {
        PendingOp op = std::move(pending_.front());
        pending_.pop_front();
        issue(std::move(op.cmd), std::move(op.cb), true);
    }
}

void
HostMemPort::frameArrived(const UpFrame &frame)
{
    for (auto &resp : assembler_.feed(frame))
        responseArrived(resp);
}

void
HostMemPort::responseArrived(const MemResponse &resp)
{
    TagState &ts = tags_[resp.tag];
    if (!ts.busy) {
        warn("host: response for idle tag %u", resp.tag);
        return;
    }
    // Responses are matched by tag; the frame-level trace id would
    // say the same thing, so the tag's stored id is authoritative.
    TraceId tid = ts.result.traceId;
    if (tid != noTraceId)
        span::closeIfOpen(tid, "dmi.up", curTick());
    switch (resp.type) {
      case RespType::readData:
        ts.result.data = resp.data;
        ts.result.dataAt = curTick();
        if (resp.poisoned) {
            ts.result.poisoned = true;
            ++stats_.poisonedResponses;
        }
        break;
      case RespType::swapOld:
        ts.result.data = resp.data;
        ts.result.swapSucceeded = resp.swapSucceeded;
        ts.result.dataAt = curTick();
        break;
      case RespType::done: {
        ts.result.doneAt = curTick();
        if (tid != noTraceId)
            span::close(tid, "host", curTick());
        if (ts.type == CmdType::read128) {
            stats_.readLatency.sample(
                ticksToNs(ts.result.dataAt - ts.result.issuedAt));
        } else {
            stats_.writeLatency.sample(
                ticksToNs(ts.result.doneAt - ts.result.issuedAt));
        }
        Callback cb = std::move(ts.cb);
        HostOpResult result = ts.result;
        ts = TagState{};
        ct_assert(inFlight_ > 0);
        --inFlight_;
        tryIssueQueued();
        if (cb)
            cb(result);
        break;
      }
    }
}

} // namespace contutto::cpu
