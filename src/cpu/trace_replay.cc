#include "cpu/trace_replay.hh"

#include <sstream>

namespace contutto::cpu
{

MemTrace
MemTrace::parse(const std::string &text)
{
    MemTrace trace;
    std::istringstream in(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        double delay_ns;
        std::string op;
        std::string addr_s;
        if (!(ls >> delay_ns))
            continue; // blank
        if (!(ls >> op >> addr_s))
            fatal("trace line %u: expected '<delay> <r|w|R|W> "
                  "<hex_addr>'", lineno);
        if (op.size() != 1
            || (op[0] != 'r' && op[0] != 'w' && op[0] != 'R'
                && op[0] != 'W'))
            fatal("trace line %u: bad op '%s'", lineno, op.c_str());
        TraceRecord rec;
        rec.delay = Tick(delay_ns * 1000.0);
        rec.isWrite = (op[0] == 'w' || op[0] == 'W');
        rec.dependent = (op[0] == 'R' || op[0] == 'W');
        rec.addr = std::stoull(addr_s, nullptr, 16)
            & ~Addr(dmi::cacheLineSize - 1);
        trace.records.push_back(rec);
    }
    return trace;
}

std::string
MemTrace::format() const
{
    std::ostringstream os;
    for (const TraceRecord &r : records) {
        char op = r.isWrite ? (r.dependent ? 'W' : 'w')
                            : (r.dependent ? 'R' : 'r');
        os << ticksToNs(r.delay) << " " << op << " " << std::hex
           << r.addr << std::dec << "\n";
    }
    return os.str();
}

MemTrace
MemTrace::fromBinary(const trace::MappedTrace &bin)
{
    MemTrace trace;
    trace.records.reserve(bin.recordCount());
    for (std::uint64_t i = 0; i < bin.recordCount(); ++i) {
        trace::Record r = bin.record(i);
        TraceRecord rec;
        rec.delay = r.tickDelta;
        rec.addr = r.addr & ~Addr(dmi::cacheLineSize - 1);
        rec.isWrite = trace::opIsWrite(r.op);
        rec.dependent = trace::opIsDependent(r.op);
        trace.records.push_back(rec);
    }
    return trace;
}

MemTrace
MemTrace::synthesize(std::size_t n, Tick mean_delay, Addr footprint,
                     double write_fraction,
                     double dependent_fraction, std::uint64_t seed)
{
    Rng rng(seed);
    MemTrace trace;
    trace.records.reserve(n);
    std::uint64_t lines = footprint / dmi::cacheLineSize;
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord rec;
        rec.delay = Tick(double(mean_delay)
                         * (0.5 + rng.uniform()));
        rec.addr = rng.below(lines) * dmi::cacheLineSize;
        rec.isWrite = rng.chance(write_fraction);
        rec.dependent = rng.chance(dependent_fraction);
        trace.records.push_back(rec);
    }
    return trace;
}

TraceReplayer::TraceReplayer(const std::string &name, EventQueue &eq,
                             const ClockDomain &domain,
                             stats::StatGroup *parent,
                             const Params &params, HostMemPort &port)
    : SimObject(name, eq, domain, parent), params_(params),
      port_(port),
      advanceEvent_([this] { issueCurrent(); }, name + ".advance")
{
    ct_assert(params_.window > 0);
}

TraceReplayer::~TraceReplayer()
{
    if (advanceEvent_.scheduled())
        eventq().deschedule(&advanceEvent_);
}

void
TraceReplayer::start(const MemTrace &trace,
                     std::function<void(const Result &)> done)
{
    ct_assert(!running_);
    running_ = true;
    trace_ = &trace;
    next_ = 0;
    outstanding_ = 0;
    waitingDrain_ = false;
    result_ = Result{};
    startedAt_ = curTick();
    done_ = std::move(done);
    advance();
}

void
TraceReplayer::advance()
{
    if (!running_ || waitingDrain_ || advanceEvent_.scheduled())
        return;
    if (next_ >= trace_->records.size()) {
        maybeFinish();
        return;
    }
    const TraceRecord &rec = trace_->records[next_];
    result_.computeTime += rec.delay;
    eventq().schedule(&advanceEvent_, curTick() + rec.delay);
}

void
TraceReplayer::issueCurrent()
{
    const TraceRecord &rec = trace_->records[next_];
    if (rec.dependent && outstanding_ > 0) {
        // Drain before a dependent access.
        waitingDrain_ = true;
        return;
    }
    if (outstanding_ >= params_.window) {
        waitingDrain_ = true; // window full: resume on completion
        return;
    }
    ++next_;
    ++outstanding_;
    if (rec.isWrite)
        ++result_.writes;
    else
        ++result_.reads;

    if (params_.caches) {
        auto filtered = params_.caches->access(rec.addr, rec.isWrite);
        if (filtered.writeback) {
            // Dirty L3 victim: fire-and-forget to memory, but it
            // occupies a window slot until it lands.
            ++outstanding_;
            ++result_.writebacks;
            if (params_.capture)
                params_.capture->record(curTick(),
                                        *filtered.writeback,
                                        trace::Op::write);
            issueMemory(*filtered.writeback, true, 0);
        }
        if (filtered.servedBy != CacheHierarchy::Level::memory) {
            // On-chip hit: completes after the level's latency.
            ++result_.cacheHits;
            OneShotEvent::schedule(eventq(),
                                   curTick() + filtered.delay,
                                   [this] { accessDone(); });
            advance();
            return;
        }
    }

    if (params_.capture)
        params_.capture->record(
            curTick(), rec.addr,
            trace::makeOp(rec.isWrite, rec.dependent));
    issueMemory(rec.addr, rec.isWrite, params_.nestOverhead);
    advance();
}

void
TraceReplayer::issueMemory(Addr addr, bool isWrite,
                           Tick nestOverhead)
{
    // Sampled mode: one decision per channel trip, keyed on trace
    // progress so the time-per-record estimator has its work axis.
    bool detailed = true;
    bool measured = false;
    if (params_.sampler) {
        detailed = params_.sampler->beginMiss(next_, curTick());
        measured = detailed && params_.sampler->measuring();
    }

    if (!detailed) {
        if (isWrite)
            params_.sampler->warmWrite(addr, dmi::CacheLine{});
        Tick charged =
            params_.sampler->chargedLatency() + nestOverhead;
        OneShotEvent::schedule(eventq(), curTick() + charged,
                               [this] { accessDone(); });
        return;
    }

    auto completion = [this, measured,
                       nestOverhead](const HostOpResult &r) {
        if (measured && !r.failed)
            params_.sampler->observeLatency(r.doneAt - r.issuedAt);
        if (nestOverhead == 0) {
            accessDone();
            return;
        }
        OneShotEvent::schedule(eventq(), curTick() + nestOverhead,
                               [this] { accessDone(); });
    };
    if (isWrite) {
        dmi::CacheLine line{};
        port_.write(addr, line, completion);
    } else {
        port_.read(addr, completion);
    }
}

void
TraceReplayer::accessDone()
{
    ct_assert(outstanding_ > 0);
    --outstanding_;
    if (waitingDrain_) {
        const TraceRecord &rec = trace_->records[next_];
        bool can_issue = rec.dependent ? outstanding_ == 0
                                       : outstanding_
                                             < params_.window;
        if (can_issue) {
            waitingDrain_ = false;
            issueCurrent();
        }
    }
    maybeFinish();
}

void
TraceReplayer::maybeFinish()
{
    if (!running_ || next_ < trace_->records.size()
        || outstanding_ > 0)
        return;
    running_ = false;
    if (params_.sampler)
        params_.sampler->finishRun(trace_->records.size(), curTick(),
                                   next_);
    result_.runtime = curTick() - startedAt_;
    if (done_)
        done_(result_);
}

TimedTraceReplayer::TimedTraceReplayer(
    const std::string &name, EventQueue &eq,
    const ClockDomain &domain, stats::StatGroup *parent,
    const Params &params, HostMemPort &port)
    : SimObject(name, eq, domain, parent), params_(params),
      port_(port),
      issueEvent_([this] { issueDue(); }, name + ".issue")
{}

TimedTraceReplayer::~TimedTraceReplayer()
{
    if (issueEvent_.scheduled())
        eventq().deschedule(&issueEvent_);
}

void
TimedTraceReplayer::start(const trace::MappedTrace &trace,
                          std::function<void(const Result &)> done)
{
    ct_assert(!running_);
    running_ = true;
    trace_ = &trace;
    next_ = 0;
    outstanding_ = 0;
    result_ = Result{};
    startedAt_ = curTick();
    done_ = std::move(done);
    if (trace.recordCount() == 0) {
        maybeFinish();
        return;
    }
    // A trace whose origin is already behind us replays under a
    // rigid shift; deltas — and therefore a recapture — are
    // unchanged.
    nextTick_ = trace.record(0).tickDelta;
    shift_ = nextTick_ >= curTick() ? 0 : curTick() - nextTick_;
    if (params_.capture)
        params_.capture->setBase(shift_);
    scheduleNext();
}

void
TimedTraceReplayer::scheduleNext()
{
    if (next_ >= trace_->recordCount()) {
        maybeFinish();
        return;
    }
    eventq().schedule(&issueEvent_, nextTick_ + shift_);
}

void
TimedTraceReplayer::issueDue()
{
    // Issue every record whose (shifted) tick is now; records are
    // decoded straight off the mmap, one at a time.
    Tick now = curTick();
    while (next_ < trace_->recordCount()
           && nextTick_ + shift_ == now) {
        trace::Record rec = trace_->record(next_);
        bool isWrite = trace::opIsWrite(rec.op);
        if (isWrite)
            ++result_.writes;
        else
            ++result_.reads;
        ++result_.replayed;
        ++outstanding_;
        if (params_.capture)
            params_.capture->record(now, rec.addr, rec.op,
                                    rec.sizeLog2, rec.threadId);

        bool detailed = true;
        bool measured = false;
        if (params_.sampler) {
            detailed = params_.sampler->beginMiss(next_, now);
            measured = detailed && params_.sampler->measuring();
        }

        if (!detailed) {
            if (isWrite)
                params_.sampler->warmWrite(rec.addr,
                                           dmi::CacheLine{});
            Tick charged = params_.sampler->chargedLatency()
                + params_.nestOverhead;
            OneShotEvent::schedule(eventq(), now + charged,
                                   [this] { accessDone(); });
        } else {
            ++result_.detailed;
            auto completion = [this,
                               measured](const HostOpResult &r) {
                if (measured && !r.failed)
                    params_.sampler->observeLatency(r.doneAt
                                                    - r.issuedAt);
                if (params_.nestOverhead == 0) {
                    accessDone();
                    return;
                }
                OneShotEvent::schedule(
                    eventq(), curTick() + params_.nestOverhead,
                    [this] { accessDone(); });
            };
            if (isWrite) {
                dmi::CacheLine line{};
                port_.write(rec.addr, line, completion);
            } else {
                port_.read(rec.addr, completion);
            }
        }

        ++next_;
        if (next_ < trace_->recordCount())
            nextTick_ += trace_->record(next_).tickDelta;
    }
    scheduleNext();
}

void
TimedTraceReplayer::accessDone()
{
    ct_assert(outstanding_ > 0);
    --outstanding_;
    maybeFinish();
}

void
TimedTraceReplayer::maybeFinish()
{
    if (!running_ || next_ < trace_->recordCount()
        || outstanding_ > 0)
        return;
    running_ = false;
    if (params_.sampler)
        params_.sampler->finishRun(trace_->recordCount(), curTick(),
                                   next_);
    result_.runtime = curTick() - startedAt_;
    if (done_)
        done_(result_);
}

} // namespace contutto::cpu
