#include "cpu/cache_hierarchy.hh"

namespace contutto::cpu
{

CacheHierarchy::CacheHierarchy(const std::string &name,
                               stats::StatGroup *parent,
                               const Params &params)
    : stats::StatGroup(name, parent), params_(params),
      l1_(params.l1.capacity, params.lineSize, params.l1.ways),
      l2_(params.l2.capacity, params.lineSize, params.l2.ways),
      l3_(params.l3.capacity, params.lineSize, params.l3.ways),
      stats_{{this, "references", "references filtered"},
             {this, "l1Hits", "L1 hits"},
             {this, "l2Hits", "L2 hits"},
             {this, "l3Hits", "L3 hits"},
             {this, "memoryAccesses", "references reaching memory"},
             {this, "writebacks", "dirty L3 victims written back"}}
{}

CacheHierarchy::Access
CacheHierarchy::access(Addr addr, bool is_write)
{
    ++stats_.references;
    Access out;
    addr &= ~Addr(params_.lineSize - 1);

    // L1.
    bool hit = is_write ? l1_.writeHit(addr) : l1_.lookup(addr);
    if (hit) {
        ++stats_.l1Hits;
        out.servedBy = Level::l1;
        out.delay = params_.l1.hitLatency;
        return out;
    }

    // L2.
    hit = is_write ? l2_.writeHit(addr) : l2_.lookup(addr);
    if (hit) {
        ++stats_.l2Hits;
        out.servedBy = Level::l2;
        out.delay = params_.l1.hitLatency + params_.l2.hitLatency;
        // Fill upward; L1 victims fall into L2 silently (its tag is
        // usually still there under rough inclusion).
        auto v1 = l1_.fill(addr, is_write);
        if (v1 && v1->dirty)
            l2_.fill(v1->lineAddr, true);
        return out;
    }

    // L3.
    hit = is_write ? l3_.writeHit(addr) : l3_.lookup(addr);
    Tick chip_delay = params_.l1.hitLatency + params_.l2.hitLatency
        + params_.l3.hitLatency;
    if (hit) {
        ++stats_.l3Hits;
        out.servedBy = Level::l3;
        out.delay = chip_delay;
    } else {
        ++stats_.memoryAccesses;
        out.servedBy = Level::memory;
        out.delay = chip_delay; // the miss path still walks the tags
    }

    // Fill the whole way up on L3 hit or memory fetch.
    auto v1 = l1_.fill(addr, is_write);
    if (v1 && v1->dirty)
        l2_.fill(v1->lineAddr, true);
    auto v2 = l2_.fill(addr, is_write);
    if (v2 && v2->dirty)
        l3_.fill(v2->lineAddr, true);
    auto v3 = l3_.fill(addr, is_write);
    if (v3 && v3->dirty) {
        ++stats_.writebacks;
        out.writeback = v3->lineAddr;
    }
    return out;
}

void
CacheHierarchy::invalidateAll()
{
    l1_.invalidateAll();
    l2_.invalidateAll();
    l3_.invalidateAll();
}

} // namespace contutto::cpu
