#include "cpu/system.hh"

namespace contutto::cpu
{

Power8System::Power8System(const Params &params)
    : stats::StatGroup("system"), eqStats_(this, eq_)
{
    if (params.fabricPeriod != clocks_.fabric.period())
        clocks_.fabric =
            ClockDomain("fabric", params.fabricPeriod);
    channel_ = std::make_unique<MemoryChannel>("chan0", eq_, clocks_,
                                               this, params);
}

Power8System::~Power8System() = default;

sim::SamplingController &
Power8System::enableSampling(const sim::SamplingConfig &cfg,
                             std::uint64_t seed)
{
    ct_assert(!sampler_);
    sampler_ = std::make_unique<sim::SamplingController>(cfg, seed);
    sampler_->setFunctionalWrite(
        [this](Addr addr, const dmi::CacheLine &line) {
            channel_->functionalWrite(addr, line.size(),
                                      line.data());
        });
    samplingStats_ =
        std::make_unique<sim::SamplingStats>(this, *sampler_);
    return *sampler_;
}

bool
Power8System::train()
{
    bool finished = false;
    channel_->trainAsync(
        [&](const dmi::TrainingResult &) { finished = true; });
    while (!finished && eq_.step()) {
    }
    return trainingResult().success;
}

double
Power8System::measureReadLatencyNs(unsigned samples, Addr stride,
                                   Addr base)
{
    ct_assert(samples > 0);

    // Warm pass: touch every probe line once (fills the Centaur
    // cache when it is enabled, opens DRAM rows otherwise).
    unsigned done = 0;
    std::function<void()> warm = [&] {
        if (done == samples)
            return;
        Addr a = base + Addr(done) * stride;
        ++done;
        port().read(a, [&](const HostOpResult &) { warm(); });
    };
    warm();
    runUntilIdle();

    // Measure pass: dependent single commands, as in the paper.
    double total_ns = 0;
    done = 0;
    std::function<void()> probe = [&] {
        if (done == samples)
            return;
        Addr a = base + Addr(done) * stride;
        ++done;
        port().read(a, [&](const HostOpResult &r) {
            total_ns += ticksToNs(r.dataAt - r.issuedAt);
            probe();
        });
    };
    probe();
    runUntilIdle();

    return total_ns / samples
        + ticksToNs(channel_->params().nestOverhead);
}

bool
Power8System::runUntilIdle(Tick timeout)
{
    Tick deadline = eq_.curTick() + timeout;
    for (;;) {
        if (channel_->quiescent())
            return true;
        if (eq_.curTick() >= deadline)
            return false;
        if (!eq_.step())
            return channel_->quiescent();
    }
}

void
Power8System::runFor(Tick duration)
{
    eq_.run(eq_.curTick() + duration);
}

} // namespace contutto::cpu
