/**
 * @file
 * The processor-side DMI requester.
 *
 * Models the POWER8 nest's memory-channel interface: commands are
 * issued with one of 32 tags; read data and done indications come
 * back tagged; a tag frees when its done arrives, and when all tags
 * are in flight the processor cannot issue further commands (paper
 * §2.3) — queued operations wait, which is exactly why keeping the
 * buffer's round-trip latency low matters.
 */

#ifndef CONTUTTO_CPU_HOST_PORT_HH
#define CONTUTTO_CPU_HOST_PORT_HH

#include <deque>
#include <functional>

#include "dmi/codec.hh"
#include "dmi/link.hh"

namespace contutto::cpu
{

/** Completion data handed to operation callbacks. */
struct HostOpResult
{
    dmi::CacheLine data{};   ///< Read data / swap old value.
    bool swapSucceeded = false;
    /** True when the operation was aborted (channel reset). */
    bool failed = false;
    /** True when the buffer marked the data uncorrectable (ECC). */
    bool poisoned = false;
    Tick issuedAt = 0;
    Tick dataAt = 0;         ///< When read data arrived (reads).
    Tick doneAt = 0;         ///< When the done freed the tag.
    /**
     * Trace id of this operation (sim/span.hh); noTraceId when span
     * tracking is off or the op was not sampled. Callers can pass it
     * to span::breakdown() for a per-stage latency attribution.
     */
    TraceId traceId = noTraceId;
};

/** The host's memory-channel port. */
class HostMemPort : public SimObject
{
  public:
    using Callback = std::function<void(const HostOpResult &)>;

    HostMemPort(const std::string &name, EventQueue &eq,
                const ClockDomain &domain, stats::StatGroup *parent,
                dmi::HostLink &link);

    /** @{ Issue operations; callbacks fire when the tag completes. */
    void read(Addr addr, Callback cb);
    void write(Addr addr, const dmi::CacheLine &data, Callback cb);
    void partialWrite(Addr addr, const dmi::CacheLine &data,
                      const dmi::ByteEnable &enables, Callback cb);
    void flush(Callback cb);
    void minStore(Addr addr, const dmi::CacheLine &data, Callback cb);
    void maxStore(Addr addr, const dmi::CacheLine &data, Callback cb);
    void condSwap(Addr addr, std::uint64_t expected,
                  std::uint64_t desired, Callback cb);
    /** @} */

    /**
     * Fail every in-flight and queued operation (what the OS does
     * when the channel is reset after an unrecoverable link fault):
     * callbacks fire with result.failed set, all tags free.
     */
    void abortInFlight();

    /** Commands in flight (tags held). */
    unsigned inFlight() const { return inFlight_; }

    /** Operations waiting for a free tag. */
    std::size_t queued() const { return pending_.size(); }

    /** True when nothing is in flight or queued. */
    bool idle() const { return inFlight_ == 0 && pending_.empty(); }

    struct PortStats
    {
        stats::Scalar reads;
        stats::Scalar writes;
        stats::Scalar rmws;
        stats::Scalar flushes;
        stats::Scalar inlineOps;
        stats::Scalar tagStalls; ///< Ops that had to wait for a tag.
        stats::Scalar poisonedResponses; ///< Poisoned data received.
        stats::Distribution readLatency;  ///< ns, issue to data.
        stats::Distribution writeLatency; ///< ns, issue to done.
    };

    const PortStats &portStats() const { return stats_; }

  private:
    struct PendingOp
    {
        dmi::MemCommand cmd;
        Callback cb;
    };

    struct TagState
    {
        bool busy = false;
        dmi::CmdType type = dmi::CmdType::read128;
        Callback cb;
        HostOpResult result;
    };

    void issue(dmi::MemCommand cmd, Callback cb,
               bool queuedRetry = false);
    void tryIssueQueued();
    void frameArrived(const dmi::UpFrame &frame);
    void responseArrived(const dmi::MemResponse &resp);

    dmi::HostLink &link_;
    dmi::ResponseAssembler assembler_;
    std::array<TagState, dmi::numTags> tags_{};
    unsigned inFlight_ = 0;
    std::deque<PendingOp> pending_;
    PortStats stats_;
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_HOST_PORT_HH
