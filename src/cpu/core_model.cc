#include "cpu/core_model.hh"

namespace contutto::cpu
{

CoreModel::CoreModel(const std::string &name, EventQueue &eq,
                     const ClockDomain &domain,
                     stats::StatGroup *parent,
                     const WorkloadProfile &profile,
                     const Params &params, HostMemPort &port)
    : SimObject(name, eq, domain, parent), profile_(profile),
      params_(params), port_(port),
      rng_(params.seed ^ std::hash<std::string>{}(profile.name)),
      advanceEvent_([this] { missPoint(); }, name + ".advance")
{
    ct_assert(profile_.workingSet >= dmi::cacheLineSize);
    streamCursor_ = params_.memoryBase;
}

CoreModel::~CoreModel()
{
    if (advanceEvent_.scheduled())
        eventq().deschedule(&advanceEvent_);
}

void
CoreModel::start(std::function<void(const Result &)> done)
{
    ct_assert(!running_);
    running_ = true;
    done_ = std::move(done);
    instructionsDone_ = 0;
    missesIssued_ = missesDone_ = 0;
    startedAt_ = curTick();
    advance();
}

void
CoreModel::advance()
{
    if (!running_ || stalled_ || advanceEvent_.scheduled())
        return;
    if (instructionsDone_ >= params_.instructions) {
        maybeFinish();
        return;
    }

    std::uint64_t remaining =
        params_.instructions - instructionsDone_;
    std::uint64_t seg;
    if (profile_.missesPerKiloInstr <= 0.0) {
        seg = remaining;
    } else {
        double mean = 1000.0 / profile_.missesPerKiloInstr;
        // +/-50% jitter keeps miss spacing from beating against the
        // memory system deterministically.
        double jitter = 0.5 + rng_.uniform();
        seg = std::uint64_t(mean * jitter);
        if (seg < 1)
            seg = 1;
        if (seg > remaining)
            seg = remaining;
    }

    // Compute time for the segment at the base (perfect-memory) CPI.
    Tick compute =
        Tick(double(seg) * profile_.baseCpi * double(clockPeriod()));
    instructionsDone_ += seg;
    eventq().schedule(&advanceEvent_, curTick() + compute);
}

void
CoreModel::missPoint()
{
    if (!running_)
        return;
    if (instructionsDone_ >= params_.instructions
        && profile_.missesPerKiloInstr <= 0.0) {
        maybeFinish();
        return;
    }
    if (profile_.missesPerKiloInstr <= 0.0) {
        maybeFinish();
        return;
    }

    double p = rng_.uniform();
    MissKind kind;
    if (p < profile_.chaseFraction)
        kind = MissKind::chase;
    else if (p < profile_.chaseFraction + profile_.streamFraction)
        kind = MissKind::stream;
    else
        kind = MissKind::random;
    issueMiss(kind);

    if (!stalled_)
        advance();
    if (instructionsDone_ >= params_.instructions)
        maybeFinish();
}

void
CoreModel::issueMiss(MissKind kind)
{
    // Capacity checks: the core stalls when the kind's MLP window is
    // full (and always behind a dependent chase).
    bool blocked = false;
    switch (kind) {
      case MissKind::chase:
        blocked = chaseOutstanding_;
        break;
      case MissKind::stream:
        blocked = outstandingStream_ >= profile_.streamMlp;
        break;
      case MissKind::random:
        blocked = outstandingRandom_ >= profile_.mlp;
        break;
    }
    if (blocked) {
        pendingMiss_ = true;
        pendingKind_ = kind;
        stalled_ = true;
        return;
    }

    std::uint64_t lines = profile_.workingSet / dmi::cacheLineSize;
    Addr addr;
    if (kind == MissKind::stream) {
        streamCursor_ += dmi::cacheLineSize;
        if (streamCursor_ >=
            params_.memoryBase + profile_.workingSet)
            streamCursor_ = params_.memoryBase;
        addr = streamCursor_;
    } else {
        addr = params_.memoryBase
            + rng_.below(lines) * dmi::cacheLineSize;
    }

    switch (kind) {
      case MissKind::chase:
        chaseOutstanding_ = true;
        stalled_ = true; // dependent load: the window drains
        break;
      case MissKind::stream:
        ++outstandingStream_;
        break;
      case MissKind::random:
        ++outstandingRandom_;
        break;
    }
    ++missesIssued_;

    // Sampled mode: the controller decides whether this miss runs
    // in detail. The RNG draws above happen unconditionally, so the
    // address/kind/write streams are identical in both regimes.
    bool detailed = true;
    bool measured = false;
    if (params_.sampler) {
        detailed = params_.sampler->beginMiss(instructionsDone_,
                                              curTick());
        measured = detailed && params_.sampler->measuring();
    }
    bool isWrite = rng_.chance(profile_.writeFraction);
    if (params_.capture)
        params_.capture->record(
            curTick(), addr,
            trace::makeOp(isWrite, kind == MissKind::chase));

    if (!detailed) {
        // Fast-forward: charge the calibrated estimate; stores still
        // land in the memory image through the functional hook.
        if (isWrite)
            params_.sampler->warmWrite(addr, dmi::CacheLine{});
        Tick charged = params_.sampler->chargedLatency()
            + params_.nestOverhead;
        OneShotEvent::schedule(eventq(), curTick() + charged,
                               [this, kind] { missCompleted(kind); });
        return;
    }

    auto completion = [this, kind,
                       measured](const HostOpResult &r) {
        if (measured && !r.failed)
            params_.sampler->observeLatency(r.doneAt - r.issuedAt);
        // Processor-side miss handling outside the channel.
        OneShotEvent::schedule(eventq(),
                               curTick() + params_.nestOverhead,
                               [this, kind] { missCompleted(kind); });
    };
    if (isWrite) {
        dmi::CacheLine line{};
        port_.write(addr, line, completion);
    } else {
        port_.read(addr, completion);
    }
}

void
CoreModel::missCompleted(MissKind kind)
{
    ++missesDone_;
    switch (kind) {
      case MissKind::chase:
        chaseOutstanding_ = false;
        break;
      case MissKind::stream:
        ct_assert(outstandingStream_ > 0);
        --outstandingStream_;
        break;
      case MissKind::random:
        ct_assert(outstandingRandom_ > 0);
        --outstandingRandom_;
        break;
    }

    if (pendingMiss_) {
        MissKind k = pendingKind_;
        pendingMiss_ = false;
        issueMiss(k);
        if (pendingMiss_)
            return; // still blocked
    }
    if (stalled_ && !chaseOutstanding_ && !pendingMiss_) {
        stalled_ = false;
        advance();
    }
    maybeFinish();
}

void
CoreModel::maybeFinish()
{
    if (!running_)
        return;
    if (instructionsDone_ < params_.instructions)
        return;
    if (missesDone_ < missesIssued_ || pendingMiss_)
        return;
    if (advanceEvent_.scheduled())
        return;

    running_ = false;
    if (params_.sampler)
        params_.sampler->finishRun(instructionsDone_, curTick(),
                                   instructionsDone_);
    result_.runtime = curTick() - startedAt_;
    result_.instructions = instructionsDone_;
    result_.misses = missesDone_;
    double cycles =
        double(result_.runtime) / double(clockPeriod());
    result_.cpi = cycles / double(result_.instructions);
    result_.ips = double(result_.instructions)
        / ticksToSeconds(result_.runtime);
    if (done_)
        done_(result_);
}

} // namespace contutto::cpu
