/**
 * @file
 * One DMI memory channel: the nest-side port, the channel pair, and
 * the buffer (Centaur or ConTutto) with its DIMMs.
 *
 * A POWER8 socket has eight of these (paper Figure 1); Power8System
 * wraps a single channel for the common single-channel experiments,
 * and MultiSlotSystem composes up to eight with the plug rules of
 * §3.1.
 */

#ifndef CONTUTTO_CPU_CHANNEL_HH
#define CONTUTTO_CPU_CHANNEL_HH

#include <memory>
#include <vector>

#include "centaur/centaur.hh"
#include "contutto/contutto_card.hh"
#include "cpu/host_port.hh"
#include "dmi/training.hh"
#include "firmware/error_log.hh"
#include "mem/device.hh"
#include "ras/scrubber.hh"
#include "ras/watchdog.hh"

namespace contutto::cpu
{

/** Which memory buffer sits in the DMI slot. */
enum class BufferKind
{
    centaur,
    contutto,
};

/** Description of one DIMM plugged behind the buffer. */
struct DimmSpec
{
    mem::MemTech tech = mem::MemTech::dram;
    std::uint64_t capacity = 4 * GiB;
    mem::MramDevice::Junction junction =
        mem::MramDevice::Junction::pMTJ;
    mem::NvdimmDevice::Params nvdimm{};
};

/** Clock domains shared by the channels of a socket. */
struct SocketClocks
{
    ClockDomain nest{"nest", 500};          // 2 GHz
    ClockDomain fabric{"fabric", 4000};     // 250 MHz
    ClockDomain centaurClk{"centaurClk", 500};
    ClockDomain ddr{"ddr", 1500};           // DDR3-1333
};

/** Parameters of one channel. */
struct ChannelParams
{
    BufferKind buffer = BufferKind::contutto;
    centaur::CentaurModel::Config centaurConfig =
        centaur::CentaurModel::optimized();
    fpga::ContuttoCard::Params cardParams{};
    std::vector<DimmSpec> dimms{DimmSpec{}, DimmSpec{}};
    /** Lane unit interval; 0 = pick by buffer kind (125 ps for
     *  ConTutto, 104 ps ~ 9.6 Gb/s for Centaur). */
    Tick lanePeriod = 0;
    double channelErrorRate = 0.0;
    dmi::LinkTrainer::Params training{};
    /** Fixed processor-side latency per memory command. */
    Tick nestOverhead = nanoseconds(44);
    /**
     * FPGA fabric clock period, picking the link-to-fabric gearbox
     * ratio: 4000 ps = 250 MHz = 32:1 at 8 Gb/s (the shipped
     * design); 2000 ps = 500 MHz = 16:1; 8000 ps = 125 MHz = 64:1.
     * Honoured by Power8System (single-channel studies); the
     * multi-slot socket shares one fabric domain across channels.
     */
    Tick fabricPeriod = 4000;
    std::uint64_t seed = 12345;

    /** Optional RAS machinery layered on the channel. */
    struct RasParams
    {
        /** Patrol-scrub every DIMM image. */
        bool scrubEnabled = false;
        ras::PatrolScrubber::Params scrub{};
        /** Watch both link directions for replay storms. */
        bool watchdogEnabled = false;
        ras::LinkWatchdog::Params watchdog{};
    };
    RasParams ras{};
};

/** The assembled channel. */
class MemoryChannel : public stats::StatGroup
{
  public:
    MemoryChannel(const std::string &name, EventQueue &eq,
                  const SocketClocks &clocks,
                  stats::StatGroup *parent,
                  const ChannelParams &params);
    ~MemoryChannel() override;

    /** Event-driven training; does not step the queue. */
    void trainAsync(
        std::function<void(const dmi::TrainingResult &)> cb);

    HostMemPort &port() { return *port_; }
    dmi::HostLink &hostLink() { return *hostLink_; }
    const dmi::TrainingResult &trainingResult() const
    {
        return trainResult_;
    }

    fpga::ContuttoCard *card() { return card_.get(); }
    centaur::CentaurModel *centaurBuffer() { return centaur_.get(); }

    mem::MemoryDevice &dimm(unsigned i) { return *devices_.at(i); }
    unsigned numDimms() const { return unsigned(devices_.size()); }
    std::uint64_t memoryCapacity() const;

    dmi::DmiChannel &downChannel() { return *down_; }
    dmi::DmiChannel &upChannel() { return *up_; }

    /** The service processor's log for this channel's hardware. */
    firmware::ErrorLog &errorLog() { return errorLog_; }

    /** Patrol scrubber for DIMM @p i (null unless RAS enabled). */
    ras::PatrolScrubber *scrubber(unsigned i)
    {
        return i < scrubbers_.size() ? scrubbers_[i].get() : nullptr;
    }

    /** Replay-storm watchdog (null unless RAS enabled). */
    ras::LinkWatchdog *watchdog() { return watchdog_.get(); }

    /** The link trainer (for checkpointing its RNG stream). */
    dmi::LinkTrainer &trainer() { return *trainer_; }

    /** @{ Functional access honouring the buffer's interleave. */
    void functionalWrite(Addr addr, std::size_t len,
                         const std::uint8_t *data);
    void functionalRead(Addr addr, std::size_t len,
                        std::uint8_t *data);
    /** @} */

    /** True when no command or frame is in flight. */
    bool quiescent() const;

    const ChannelParams &params() const { return params_; }

  private:
    ChannelParams params_;
    EventQueue &eq_;
    std::unique_ptr<dmi::DmiChannel> down_;
    std::unique_ptr<dmi::DmiChannel> up_;
    std::unique_ptr<dmi::HostLink> hostLink_;
    std::unique_ptr<dmi::BufferLink> bufferLink_;
    std::vector<std::unique_ptr<mem::MemoryDevice>> devices_;
    std::vector<std::unique_ptr<mem::Ddr3Controller>>
        centaurControllers_;
    std::unique_ptr<fpga::ContuttoCard> card_;
    std::unique_ptr<centaur::CentaurModel> centaur_;
    std::unique_ptr<HostMemPort> port_;
    std::unique_ptr<dmi::LinkTrainer> trainer_;
    dmi::TrainingResult trainResult_;
    firmware::ErrorLog errorLog_;
    std::vector<std::unique_ptr<ras::PatrolScrubber>> scrubbers_;
    std::unique_ptr<ras::LinkWatchdog> watchdog_;
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_CHANNEL_HH
