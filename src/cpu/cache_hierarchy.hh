/**
 * @file
 * The processor-side cache hierarchy (POWER8-ish L1D/L2/L3).
 *
 * A tag-only three-level filter in front of the memory channel:
 * hits cost their level's latency, misses fill all levels, and
 * dirty L3 victims generate writebacks that really travel the
 * channel. Used by the trace replayer so raw reference traces (not
 * pre-filtered miss traces) can run against the simulated memory
 * system — working-set effects then emerge from the hierarchy.
 */

#ifndef CONTUTTO_CPU_CACHE_HIERARCHY_HH
#define CONTUTTO_CPU_CACHE_HIERARCHY_HH

#include <optional>

#include "mem/cache_model.hh"
#include "sim/sim_object.hh"

namespace contutto::cpu
{

/** One level's geometry and hit cost. */
struct CacheLevelParams
{
    std::uint64_t capacity = 64 * KiB;
    unsigned ways = 8;
    Tick hitLatency = nanoseconds(1);
};

/** The three-level filter. */
class CacheHierarchy : public stats::StatGroup
{
  public:
    struct Params
    {
        /** POWER8-class per-core geometry. */
        CacheLevelParams l1{64 * KiB, 8, picoseconds(750)};
        CacheLevelParams l2{512 * KiB, 8, nanoseconds(3)};
        CacheLevelParams l3{8 * MiB, 8, nanoseconds(9)};
        unsigned lineSize = 128;
    };

    CacheHierarchy(const std::string &name, stats::StatGroup *parent,
                   const Params &params);

    /** Where an access was served. */
    enum class Level
    {
        l1,
        l2,
        l3,
        memory,
    };

    /** Outcome of one reference. */
    struct Access
    {
        Level servedBy = Level::memory;
        /** On-chip latency (excludes the memory trip on a miss). */
        Tick delay = 0;
        /** A dirty L3 victim that must be written to memory. */
        std::optional<Addr> writeback;
    };

    /** Filter one reference; updates all levels. */
    Access access(Addr addr, bool is_write);

    /** Drop all cached state. */
    void invalidateAll();

    double l1HitRate() const { return l1_.hitRate(); }
    double l2HitRate() const { return l2_.hitRate(); }
    double l3HitRate() const { return l3_.hitRate(); }

    /** Fraction of references that went to memory. */
    double
    memoryRate() const
    {
        double total = stats_.references.value();
        return total > 0 ? stats_.memoryAccesses.value() / total
                         : 0.0;
    }

    struct HierarchyStats
    {
        stats::Scalar references;
        stats::Scalar l1Hits;
        stats::Scalar l2Hits;
        stats::Scalar l3Hits;
        stats::Scalar memoryAccesses;
        stats::Scalar writebacks;
    };

    const HierarchyStats &hierarchyStats() const { return stats_; }

  private:
    Params params_;
    mem::CacheModel l1_;
    mem::CacheModel l2_;
    mem::CacheModel l3_;
    HierarchyStats stats_;
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_CACHE_HIERARCHY_HH
