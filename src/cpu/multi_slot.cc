#include "cpu/multi_slot.hh"

#include <algorithm>

#include "dmi/channel.hh"
#include "dmi/frame.hh"

namespace contutto::cpu
{

MultiSlotSystem::Validation
MultiSlotSystem::validate(const Params &params)
{
    Validation v;
    unsigned populated = 0;
    for (unsigned s = 0; s < numSlots; ++s) {
        const SlotSpec &spec = params.slots[s];
        if (spec.kind == SlotKind::empty)
            continue;
        ++populated;
        if (spec.kind == SlotKind::contutto) {
            if (s % 2 != 0) {
                v.ok = false;
                v.error = "ConTutto cards only plug into specific "
                          "(even) DMI slots; slot "
                    + std::to_string(s) + " is not one";
                return v;
            }
            if (s + 1 < numSlots
                && params.slots[s + 1].kind != SlotKind::empty) {
                v.ok = false;
                v.error = "ConTutto in slot " + std::to_string(s)
                    + " physically blocks slot "
                    + std::to_string(s + 1)
                    + ", which must be empty";
                return v;
            }
        }
    }
    if (populated == 0) {
        v.ok = false;
        v.error = "no populated DMI slots";
    }
    return v;
}

Tick
MultiSlotSystem::deriveWindow(const Params &params)
{
    // The fastest cross-slot signal is one downstream frame: its
    // serialization on the channel's lanes plus board flight time.
    // Any cross-shard effect a slot can cause takes at least that
    // long to be observable elsewhere, so it is a safe lookahead;
    // x1024 keeps barriers rare without changing the deferred
    // delivery semantics (post() always lands at a window edge).
    const dmi::DmiChannel::Params link{};
    Tick minFrame = maxTick;
    for (unsigned s = 0; s < numSlots; ++s) {
        const SlotSpec &spec = params.slots[s];
        if (spec.kind == SlotKind::empty)
            continue;
        // Same default the channel itself applies (channel.cc).
        Tick ui = spec.channel.lanePeriod
            ? spec.channel.lanePeriod
            : (spec.kind == SlotKind::contutto ? Tick(125)
                                               : Tick(104));
        const std::size_t bits = dmi::downFrameBytes * 8;
        const Tick ser =
            Tick((bits + link.lanes - 1) / link.lanes) * ui;
        minFrame = std::min(minFrame, ser + link.flightTime);
    }
    ct_assert(minFrame != maxTick);
    return minFrame * 1024;
}

MultiSlotSystem::MultiSlotSystem(const Params &params)
    : stats::StatGroup("socket"), params_(params),
      eqStats_(this, eq_)
{
    Validation v = validate(params);
    if (!v.ok)
        fatal("plug rules: %s", v.error.c_str());

    if (params.shards >= 1) {
        sim::ShardedExecutor::Params ep;
        ep.shards = params.shards;
        ep.window = params.shardWindow ? params.shardWindow
                                       : deriveWindow(params);
        ep.mode = params.parallelExec
            ? sim::ShardedExecutor::Mode::parallel
            : sim::ShardedExecutor::Mode::serial;
        exec_ = std::make_unique<sim::ShardedExecutor>(ep);
        parStats_.emplace(this, *exec_);
        for (unsigned s = 0; s < params.shards; ++s) {
            shardGroups_.push_back(
                std::make_unique<stats::StatGroup>(
                    "shard" + std::to_string(s), this));
            shardEqStats_.push_back(
                std::make_unique<EventCoreStats>(
                    shardGroups_.back().get(), exec_->queue(s)));
        }
    }

    slotToChannel_.fill(nullptr);
    for (unsigned s = 0; s < numSlots; ++s) {
        const SlotSpec &spec = params.slots[s];
        if (spec.kind == SlotKind::empty)
            continue;
        ChannelParams cp = spec.channel;
        cp.buffer = spec.kind == SlotKind::contutto
            ? BufferKind::contutto
            : BufferKind::centaur;
        cp.seed = spec.channel.seed + s * 101;
        const unsigned idx = unsigned(channels_.size());
        channels_.push_back(std::make_unique<MemoryChannel>(
            "slot" + std::to_string(s), channelQueue(idx), clocks_,
            this, cp));
        slotToChannel_[s] = channels_.back().get();
    }
}

MultiSlotSystem::~MultiSlotSystem() = default;

bool
MultiSlotSystem::trainAll()
{
    // The FSP trains channels in parallel on real machines; do the
    // same here.
    if (sharded()) {
        // Per-channel result slots, written shard-locally; the idle
        // predicate reads them at barriers, where the hand-off
        // mutex orders the accesses.
        std::vector<char> done(channels_.size(), 0);
        std::vector<char> ok(channels_.size(), 0);
        for (unsigned i = 0; i < channels_.size(); ++i)
            channels_[i]->trainAsync(
                [&done, &ok, i](const dmi::TrainingResult &r) {
                    done[i] = 1;
                    ok[i] = r.success ? 1 : 0;
                });
        bool finished = exec_->runUntilIdle(
            [&done] {
                for (char d : done)
                    if (!d)
                        return false;
                return true;
            },
            milliseconds(200));
        if (!finished)
            return false;
        for (char o : ok)
            if (!o)
                return false;
        return true;
    }

    unsigned finished = 0;
    bool all_ok = true;
    for (auto &ch : channels_) {
        ch->trainAsync([&](const dmi::TrainingResult &r) {
            ++finished;
            all_ok = all_ok && r.success;
        });
    }
    while (finished < channels_.size() && eq_.step()) {
    }
    return all_ok && finished == channels_.size();
}

std::uint64_t
MultiSlotSystem::totalCapacity() const
{
    std::uint64_t total = 0;
    for (const auto &ch : channels_)
        total += ch->memoryCapacity();
    return total;
}

unsigned
MultiSlotSystem::channelOf(Addr addr) const
{
    return unsigned((addr / dmi::cacheLineSize) % channels_.size());
}

Addr
MultiSlotSystem::localAddr(Addr addr) const
{
    Addr line = addr / dmi::cacheLineSize;
    return (line / channels_.size()) * dmi::cacheLineSize
        + addr % dmi::cacheLineSize;
}

void
MultiSlotSystem::runOnChannel(unsigned ch, std::function<void()> fn)
{
    const unsigned owner = shardOfChannel(ch);
    const unsigned here = exec_->currentShard();
    if (here == owner) {
        fn();
        return;
    }
    // A foreign (or setup-time) caller: hop to the owner shard at
    // the caller's current time. Inside run() this defers to the
    // next window edge; outside it lands immediately — both paths
    // identical across serial and parallel modes.
    const Tick now = here == sim::ShardedExecutor::invalidShard
        ? exec_->queue(owner).curTick()
        : exec_->queue(here).curTick();
    exec_->post(owner, now, std::move(fn));
}

HostMemPort::Callback
MultiSlotSystem::routeCompletion(HostMemPort::Callback cb)
{
    // Count the op until its callback has actually run, so
    // runUntilIdle's predicate sees ops that are mid-hop between
    // shards (invisible to any channel's quiescent()).
    pendingOps_.fetch_add(1, std::memory_order_relaxed);
    HostMemPort::Callback counted =
        [this, cb = std::move(cb)](const HostOpResult &r) {
            if (cb)
                cb(r);
            pendingOps_.fetch_sub(1, std::memory_order_relaxed);
        };
    const unsigned caller = exec_->currentShard();
    if (caller == sim::ShardedExecutor::invalidShard)
        return counted;
    return [this, caller,
            cb = std::move(counted)](const HostOpResult &r) {
        const unsigned here = exec_->currentShard();
        if (here == caller) {
            cb(r);
            return;
        }
        const Tick now = here == sim::ShardedExecutor::invalidShard
            ? exec_->queue(caller).curTick()
            : exec_->queue(here).curTick();
        exec_->post(caller, now, [cb, r] { cb(r); });
    };
}

void
MultiSlotSystem::read(Addr addr, HostMemPort::Callback cb)
{
    const unsigned ch = channelOf(addr);
    const Addr local = localAddr(addr);
    if (!sharded()) {
        channels_[ch]->port().read(local, std::move(cb));
        return;
    }
    auto routed = routeCompletion(std::move(cb));
    runOnChannel(ch,
                 [this, ch, local,
                  routed = std::move(routed)]() mutable {
                     channels_[ch]->port().read(local,
                                                std::move(routed));
                 });
}

void
MultiSlotSystem::write(Addr addr, const dmi::CacheLine &data,
                       HostMemPort::Callback cb)
{
    const unsigned ch = channelOf(addr);
    const Addr local = localAddr(addr);
    if (!sharded()) {
        channels_[ch]->port().write(local, data, std::move(cb));
        return;
    }
    auto routed = routeCompletion(std::move(cb));
    runOnChannel(ch,
                 [this, ch, local, data,
                  routed = std::move(routed)]() mutable {
                     channels_[ch]->port().write(local, data,
                                                 std::move(routed));
                 });
}

double
MultiSlotSystem::measureAggregateReadBandwidth(Tick window)
{
    // Independent sequential streams per channel, kept at full tag
    // occupancy; payload bytes delivered inside the window count.
    const Tick start = curTick();
    const Tick end = start + window;
    struct Stream
    {
        Addr next = 0;
        std::uint64_t bytes = 0;
    };
    std::vector<Stream> streams(channels_.size());

    // Each stream's issue loop and byte counter stay on the owning
    // channel's shard: the port callback fires there, and it only
    // touches streams[ch]. Nothing is shared across shards, so the
    // measurement needs no routing and no locks.
    std::function<void(unsigned)> issue = [&](unsigned ch) {
        if (channelQueue(ch).curTick() >= end)
            return;
        Addr a = streams[ch].next;
        streams[ch].next += dmi::cacheLineSize;
        channels_[ch]->port().read(
            a, [&, ch](const HostOpResult &r) {
                if (r.dataAt <= end)
                    streams[ch].bytes += dmi::cacheLineSize;
                issue(ch);
            });
    };
    for (unsigned ch = 0; ch < channels_.size(); ++ch)
        for (int k = 0; k < 40; ++k) // beyond the 32 tags
            issue(ch);
    if (sharded())
        exec_->run(end);
    else
        eq_.run(end);
    runUntilIdle();
    std::uint64_t bytes = 0;
    for (const Stream &s : streams)
        bytes += s.bytes;
    return double(bytes) / ticksToSeconds(window) / 1e9;
}

bool
MultiSlotSystem::runUntilIdle(Tick timeout)
{
    if (sharded()) {
        return exec_->runUntilIdle(
            [this] {
                if (pendingOps_.load(std::memory_order_relaxed))
                    return false;
                for (const auto &ch : channels_)
                    if (!ch->quiescent())
                        return false;
                return true;
            },
            timeout);
    }
    Tick deadline = eq_.curTick() + timeout;
    for (;;) {
        bool idle = true;
        for (const auto &ch : channels_)
            if (!ch->quiescent())
                idle = false;
        if (idle)
            return true;
        if (eq_.curTick() >= deadline)
            return false;
        if (!eq_.step())
            return true;
    }
}

sim::SamplingController &
MultiSlotSystem::enableSampling(const sim::SamplingConfig &cfg,
                                std::uint64_t seed)
{
    ct_assert(!sampler_);
    sampler_ = std::make_unique<sim::SamplingController>(cfg, seed);
    sampler_->setFunctionalWrite(
        [this](Addr addr, const dmi::CacheLine &line) {
            channel(channelOf(addr))
                .functionalWrite(localAddr(addr), line.size(),
                                 line.data());
        });
    samplingStats_ =
        std::make_unique<sim::SamplingStats>(this, *sampler_);
    return *sampler_;
}

Tick
MultiSlotSystem::curTick() const
{
    if (!sharded())
        return eq_.curTick();
    Tick t = 0;
    for (unsigned s = 0; s < exec_->numShards(); ++s)
        t = std::max(t, exec_->queue(s).curTick());
    return t;
}

} // namespace contutto::cpu
