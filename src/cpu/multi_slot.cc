#include "cpu/multi_slot.hh"

namespace contutto::cpu
{

MultiSlotSystem::Validation
MultiSlotSystem::validate(const Params &params)
{
    Validation v;
    unsigned populated = 0;
    for (unsigned s = 0; s < numSlots; ++s) {
        const SlotSpec &spec = params.slots[s];
        if (spec.kind == SlotKind::empty)
            continue;
        ++populated;
        if (spec.kind == SlotKind::contutto) {
            if (s % 2 != 0) {
                v.ok = false;
                v.error = "ConTutto cards only plug into specific "
                          "(even) DMI slots; slot "
                    + std::to_string(s) + " is not one";
                return v;
            }
            if (s + 1 < numSlots
                && params.slots[s + 1].kind != SlotKind::empty) {
                v.ok = false;
                v.error = "ConTutto in slot " + std::to_string(s)
                    + " physically blocks slot "
                    + std::to_string(s + 1)
                    + ", which must be empty";
                return v;
            }
        }
    }
    if (populated == 0) {
        v.ok = false;
        v.error = "no populated DMI slots";
    }
    return v;
}

MultiSlotSystem::MultiSlotSystem(const Params &params)
    : stats::StatGroup("socket"), params_(params),
      eqStats_(this, eq_)
{
    Validation v = validate(params);
    if (!v.ok)
        fatal("plug rules: %s", v.error.c_str());

    slotToChannel_.fill(nullptr);
    for (unsigned s = 0; s < numSlots; ++s) {
        const SlotSpec &spec = params.slots[s];
        if (spec.kind == SlotKind::empty)
            continue;
        ChannelParams cp = spec.channel;
        cp.buffer = spec.kind == SlotKind::contutto
            ? BufferKind::contutto
            : BufferKind::centaur;
        cp.seed = spec.channel.seed + s * 101;
        channels_.push_back(std::make_unique<MemoryChannel>(
            "slot" + std::to_string(s), eq_, clocks_, this, cp));
        slotToChannel_[s] = channels_.back().get();
    }
}

MultiSlotSystem::~MultiSlotSystem() = default;

bool
MultiSlotSystem::trainAll()
{
    // The FSP trains channels in parallel on real machines; do the
    // same here.
    unsigned finished = 0;
    bool all_ok = true;
    for (auto &ch : channels_) {
        ch->trainAsync([&](const dmi::TrainingResult &r) {
            ++finished;
            all_ok = all_ok && r.success;
        });
    }
    while (finished < channels_.size() && eq_.step()) {
    }
    return all_ok && finished == channels_.size();
}

std::uint64_t
MultiSlotSystem::totalCapacity() const
{
    std::uint64_t total = 0;
    for (const auto &ch : channels_)
        total += ch->memoryCapacity();
    return total;
}

unsigned
MultiSlotSystem::channelOf(Addr addr) const
{
    return unsigned((addr / dmi::cacheLineSize) % channels_.size());
}

Addr
MultiSlotSystem::localAddr(Addr addr) const
{
    Addr line = addr / dmi::cacheLineSize;
    return (line / channels_.size()) * dmi::cacheLineSize
        + addr % dmi::cacheLineSize;
}

void
MultiSlotSystem::read(Addr addr, HostMemPort::Callback cb)
{
    channels_[channelOf(addr)]->port().read(localAddr(addr),
                                            std::move(cb));
}

void
MultiSlotSystem::write(Addr addr, const dmi::CacheLine &data,
                       HostMemPort::Callback cb)
{
    channels_[channelOf(addr)]->port().write(localAddr(addr), data,
                                             std::move(cb));
}

double
MultiSlotSystem::measureAggregateReadBandwidth(Tick window)
{
    // Independent sequential streams per channel, kept at full tag
    // occupancy; payload bytes delivered inside the window count.
    Tick start = eq_.curTick();
    Tick end = start + window;
    std::uint64_t bytes = 0;
    struct Stream
    {
        Addr next = 0;
    };
    std::vector<Stream> streams(channels_.size());

    std::function<void(unsigned)> issue = [&](unsigned ch) {
        if (eq_.curTick() >= end)
            return;
        Addr a = streams[ch].next;
        streams[ch].next += dmi::cacheLineSize;
        channels_[ch]->port().read(
            a, [&, ch](const HostOpResult &r) {
                if (r.dataAt <= end)
                    bytes += dmi::cacheLineSize;
                issue(ch);
            });
    };
    for (unsigned ch = 0; ch < channels_.size(); ++ch)
        for (int k = 0; k < 40; ++k) // beyond the 32 tags
            issue(ch);
    eq_.run(end);
    runUntilIdle();
    return double(bytes) / ticksToSeconds(window) / 1e9;
}

bool
MultiSlotSystem::runUntilIdle(Tick timeout)
{
    Tick deadline = eq_.curTick() + timeout;
    for (;;) {
        bool idle = true;
        for (const auto &ch : channels_)
            if (!ch->quiescent())
                idle = false;
        if (idle)
            return true;
        if (eq_.curTick() >= deadline)
            return false;
        if (!eq_.step())
            return true;
    }
}

} // namespace contutto::cpu
