/**
 * @file
 * A complete simulated POWER8 memory-channel system.
 *
 * Wraps one MemoryChannel (DMI channel pair + buffer + DIMMs) with
 * an owned event queue and the socket clock domains, runs link
 * training, and exposes the host port. Every single-channel
 * experiment in the paper runs on a system shaped like this; the
 * multi-channel organization of §2.1 is MultiSlotSystem.
 */

#ifndef CONTUTTO_CPU_SYSTEM_HH
#define CONTUTTO_CPU_SYSTEM_HH

#include "cpu/channel.hh"
#include "sim/event_stats.hh"
#include "sim/sampling.hh"

namespace contutto::cpu
{

/** The assembled single-channel system. */
class Power8System : public stats::StatGroup
{
  public:
    using Params = ChannelParams;

    explicit Power8System(const Params &params);
    ~Power8System() override;

    /** Run link training to completion; true on success. */
    bool train();

    /** Event-driven training for firmware flows; does not step the
     *  queue itself. */
    void
    trainAsync(std::function<void(const dmi::TrainingResult &)> cb)
    {
        channel_->trainAsync(std::move(cb));
    }

    EventQueue &eventq() { return eq_; }
    HostMemPort &port() { return channel_->port(); }
    dmi::HostLink &hostLink() { return channel_->hostLink(); }
    const dmi::TrainingResult &trainingResult() const
    {
        return channel_->trainingResult();
    }

    /** Non-null when the buffer is a ConTutto card. */
    fpga::ContuttoCard *card() { return channel_->card(); }
    /** Non-null when the buffer is the Centaur baseline. */
    centaur::CentaurModel *centaurBuffer()
    {
        return channel_->centaurBuffer();
    }

    mem::MemoryDevice &dimm(unsigned i) { return channel_->dimm(i); }
    unsigned numDimms() const { return channel_->numDimms(); }
    std::uint64_t memoryCapacity() const
    {
        return channel_->memoryCapacity();
    }

    dmi::DmiChannel &downChannel() { return channel_->downChannel(); }
    dmi::DmiChannel &upChannel() { return channel_->upChannel(); }

    /** @{ Functional (no-timing) access to memory contents. */
    void
    functionalWrite(Addr addr, std::size_t len,
                    const std::uint8_t *data)
    {
        channel_->functionalWrite(addr, len, data);
    }
    void
    functionalRead(Addr addr, std::size_t len, std::uint8_t *data)
    {
        channel_->functionalRead(addr, len, data);
    }
    /** @} */

    /**
     * Measure the averaged single-command read latency the way the
     * paper does for Tables 2/3: repeated dependent reads, mean of
     * issue-to-data plus the processor-side overhead.
     */
    double measureReadLatencyNs(unsigned samples = 64,
                                Addr stride = 4096, Addr base = 0);

    /**
     * Step the simulation until the host port is idle and the
     * buffer quiescent, or until @p timeout elapses.
     * @return true when idle was reached.
     */
    bool runUntilIdle(Tick timeout = milliseconds(100));

    /** Run for a fixed duration. */
    void runFor(Tick duration);

    const Params &params() const { return channel_->params(); }

    /** The channel itself (for multi-client wiring). */
    MemoryChannel &channel() { return *channel_; }

    /**
     * Switch workload runs on this system to sampled execution
     * (sim/sampling.hh): creates the per-run controller, wires its
     * functional-write hook into this system's memory image, and
     * publishes a "sampling" stats group. Hand the returned
     * controller to the workload driver's Params.sampler.
     */
    sim::SamplingController &
    enableSampling(const sim::SamplingConfig &cfg, std::uint64_t seed);

    /** The sampling controller; null when never enabled. */
    sim::SamplingController *sampler() { return sampler_.get(); }

    /** Clock domain getters for attaching extra components. */
    const ClockDomain &nestDomain() const { return clocks_.nest; }
    const ClockDomain &fabricDomain() const { return clocks_.fabric; }
    const ClockDomain &ddrDomain() const { return clocks_.ddr; }

  private:
    EventQueue eq_;
    EventCoreStats eqStats_;
    SocketClocks clocks_;
    std::unique_ptr<MemoryChannel> channel_;
    std::unique_ptr<sim::SamplingController> sampler_;
    std::unique_ptr<sim::SamplingStats> samplingStats_;
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_SYSTEM_HH
