/**
 * @file
 * Trace-driven replay through the simulated memory channel.
 *
 * The paper's core pitch is evaluating *real* software against new
 * memory subsystems; when the software itself cannot run here, a
 * memory-access trace of it can. A trace is a sequence of timed
 * records (delay since the previous record, address, read/write,
 * dependency flag); the replayer issues them through the host port,
 * honouring inter-record compute delays, a memory-level-parallelism
 * window, and dependent-access serialization — so a trace captured
 * once can be replayed against Centaur, ConTutto at any knob
 * setting, or any memory technology, and the runtime responds to
 * the modelled latency.
 *
 * The text format is one record per line:
 *
 *     <delay_ns> <r|w|R|W> <hex_addr>
 *
 * where uppercase marks a dependent access (must wait for all
 * earlier accesses to finish). '#' starts a comment.
 */

#ifndef CONTUTTO_CPU_TRACE_REPLAY_HH
#define CONTUTTO_CPU_TRACE_REPLAY_HH

#include <string>
#include <vector>

#include "cpu/cache_hierarchy.hh"
#include "cpu/host_port.hh"
#include "sim/random.hh"
#include "sim/sampling.hh"

namespace contutto::cpu
{

/** One trace record. */
struct TraceRecord
{
    /** Compute time since the previous record. */
    Tick delay = 0;
    Addr addr = 0;
    bool isWrite = false;
    /** Dependent: drains all earlier accesses before issuing. */
    bool dependent = false;
};

/** A parsed trace. */
struct MemTrace
{
    std::vector<TraceRecord> records;

    /** Parse the text format; @throw FatalError on syntax errors. */
    static MemTrace parse(const std::string &text);

    /** Render back to the text format. */
    std::string format() const;

    /**
     * Synthesize a trace from workload-style parameters (handy for
     * tests and demos without captured traces).
     */
    static MemTrace synthesize(std::size_t records, Tick mean_delay,
                               Addr footprint, double write_fraction,
                               double dependent_fraction,
                               std::uint64_t seed);
};

/** Replays a trace through a host port. */
class TraceReplayer : public SimObject
{
  public:
    struct Params
    {
        /** Outstanding-access window for independent records. */
        unsigned window = 8;
        /** Per-access processor-side overhead (memory trips only). */
        Tick nestOverhead = nanoseconds(44);
        /**
         * Optional cache hierarchy: when set, the trace carries raw
         * references; hits are served on-chip and only misses (and
         * dirty writebacks) travel the channel.
         */
        CacheHierarchy *caches = nullptr;
        /**
         * Sampled execution (sim/sampling.hh): the controller is
         * consulted once per channel trip (miss or writeback);
         * fast-forwarded trips complete from the calibrated
         * estimate. Cache probes still run functionally in both
         * regimes, so the hierarchy's contents — and every
         * hit/miss/writeback decision — are exact, not sampled.
         */
        sim::SamplingController *sampler = nullptr;
    };

    struct Result
    {
        Tick runtime = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        /** Sum of trace compute delays (the memory-independent
         *  floor of the runtime). */
        Tick computeTime = 0;
        /** References served by the caches (when configured). */
        std::uint64_t cacheHits = 0;
        /** Dirty-victim writebacks sent to memory. */
        std::uint64_t writebacks = 0;
    };

    TraceReplayer(const std::string &name, EventQueue &eq,
                  const ClockDomain &domain, stats::StatGroup *parent,
                  const Params &params, HostMemPort &port);

    ~TraceReplayer() override;

    /** Start replaying @p trace; @p done fires at completion. */
    void start(const MemTrace &trace,
               std::function<void(const Result &)> done);

    bool running() const { return running_; }

  private:
    void advance();
    void issueCurrent();
    void issueMemory(Addr addr, bool isWrite, Tick nestOverhead);
    void accessDone();
    void maybeFinish();

    Params params_;
    HostMemPort &port_;
    const MemTrace *trace_ = nullptr;
    std::size_t next_ = 0;
    unsigned outstanding_ = 0;
    bool waitingDrain_ = false;
    bool running_ = false;
    Tick startedAt_ = 0;
    Result result_;
    std::function<void(const Result &)> done_;
    EventFunctionWrapper advanceEvent_;
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_TRACE_REPLAY_HH
