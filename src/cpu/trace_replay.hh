/**
 * @file
 * Trace-driven replay through the simulated memory channel.
 *
 * The paper's core pitch is evaluating *real* software against new
 * memory subsystems; when the software itself cannot run here, a
 * memory-access trace of it can. A trace is a sequence of timed
 * records (delay since the previous record, address, read/write,
 * dependency flag); the replayer issues them through the host port,
 * honouring inter-record compute delays, a memory-level-parallelism
 * window, and dependent-access serialization — so a trace captured
 * once can be replayed against Centaur, ConTutto at any knob
 * setting, or any memory technology, and the runtime responds to
 * the modelled latency.
 *
 * The text format is one record per line:
 *
 *     <delay_ns> <r|w|R|W> <hex_addr>
 *
 * where uppercase marks a dependent access (must wait for all
 * earlier accesses to finish). '#' starts a comment.
 */

#ifndef CONTUTTO_CPU_TRACE_REPLAY_HH
#define CONTUTTO_CPU_TRACE_REPLAY_HH

#include <string>
#include <vector>

#include "cpu/cache_hierarchy.hh"
#include "cpu/host_port.hh"
#include "sim/random.hh"
#include "sim/sampling.hh"
#include "trace/capture.hh"
#include "trace/reader.hh"

namespace contutto::cpu
{

/** One trace record. */
struct TraceRecord
{
    /** Compute time since the previous record. */
    Tick delay = 0;
    Addr addr = 0;
    bool isWrite = false;
    /** Dependent: drains all earlier accesses before issuing. */
    bool dependent = false;
};

/** A parsed trace. */
struct MemTrace
{
    std::vector<TraceRecord> records;

    /** Parse the text format; @throw FatalError on syntax errors. */
    static MemTrace parse(const std::string &text);

    /** Render back to the text format. */
    std::string format() const;

    /**
     * Synthesize a trace from workload-style parameters (handy for
     * tests and demos without captured traces).
     */
    static MemTrace synthesize(std::size_t records, Tick mean_delay,
                               Addr footprint, double write_fraction,
                               double dependent_fraction,
                               std::uint64_t seed);

    /**
     * Convert a validated binary trace (trace/reader.hh) to the
     * in-memory form, so window-mode replay runs captured traces
     * too: tickDelta maps to compute delay, dependent ops to the
     * drain flag. Lossless, unlike the text round trip.
     */
    static MemTrace fromBinary(const trace::MappedTrace &bin);
};

/** Replays a trace through a host port. */
class TraceReplayer : public SimObject
{
  public:
    struct Params
    {
        /** Outstanding-access window for independent records. */
        unsigned window = 8;
        /** Per-access processor-side overhead (memory trips only). */
        Tick nestOverhead = nanoseconds(44);
        /**
         * Optional cache hierarchy: when set, the trace carries raw
         * references; hits are served on-chip and only misses (and
         * dirty writebacks) travel the channel.
         */
        CacheHierarchy *caches = nullptr;
        /**
         * Sampled execution (sim/sampling.hh): the controller is
         * consulted once per channel trip (miss or writeback);
         * fast-forwarded trips complete from the calibrated
         * estimate. Cache probes still run functionally in both
         * regimes, so the hierarchy's contents — and every
         * hit/miss/writeback decision — are exact, not sampled.
         */
        sim::SamplingController *sampler = nullptr;
        /**
         * Optional capture hook (trace/capture.hh): every channel
         * trip — post-cache miss or writeback — is appended to the
         * sink as it issues, so replaying one trace can record
         * another (e.g. a post-cache-filter trace).
         */
        trace::CaptureSink *capture = nullptr;
    };

    struct Result
    {
        Tick runtime = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        /** Sum of trace compute delays (the memory-independent
         *  floor of the runtime). */
        Tick computeTime = 0;
        /** References served by the caches (when configured). */
        std::uint64_t cacheHits = 0;
        /** Dirty-victim writebacks sent to memory. */
        std::uint64_t writebacks = 0;
    };

    TraceReplayer(const std::string &name, EventQueue &eq,
                  const ClockDomain &domain, stats::StatGroup *parent,
                  const Params &params, HostMemPort &port);

    ~TraceReplayer() override;

    /** Start replaying @p trace; @p done fires at completion. */
    void start(const MemTrace &trace,
               std::function<void(const Result &)> done);

    bool running() const { return running_; }

    /** Records issued so far (live, for progress boards). */
    std::uint64_t issuedSoFar() const { return next_; }

  private:
    void advance();
    void issueCurrent();
    void issueMemory(Addr addr, bool isWrite, Tick nestOverhead);
    void accessDone();
    void maybeFinish();

    Params params_;
    HostMemPort &port_;
    const MemTrace *trace_ = nullptr;
    std::size_t next_ = 0;
    unsigned outstanding_ = 0;
    bool waitingDrain_ = false;
    bool running_ = false;
    Tick startedAt_ = 0;
    Result result_;
    std::function<void(const Result &)> done_;
    EventFunctionWrapper advanceEvent_;
};

/**
 * Replays a binary trace at its recorded issue times, streaming
 * records straight off the mmap.
 *
 * Where TraceReplayer re-times a trace through a window model (so
 * the runtime responds to the modelled latency), TimedTraceReplayer
 * reproduces the captured stimulus exactly: every record issues at
 * its recorded tick regardless of completions — which is what makes
 * a capture→replay round trip drive the channel byte-identically to
 * the run it was captured from. A trace whose origin is already in
 * the past replays under a rigid time shift (deltas preserved), and
 * an attached recapture sink is told the shift so re-captured files
 * stay byte-identical to the input.
 *
 * Sampled mode composes the same way as everywhere else: the
 * controller is consulted per record, and fast-forwarded records
 * complete from the calibrated estimate without touching the
 * channel — the path that streams millions of records per second.
 */
class TimedTraceReplayer : public SimObject
{
  public:
    struct Params
    {
        /** Per-access processor-side overhead (completion side
         *  only; never delays an issue). */
        Tick nestOverhead = nanoseconds(44);
        /** Sampled execution; see TraceReplayer::Params. */
        sim::SamplingController *sampler = nullptr;
        /** Optional recapture sink: every replayed record is
         *  re-recorded at its (shifted) issue tick. */
        trace::CaptureSink *capture = nullptr;
    };

    struct Result
    {
        /** Last completion minus first issue. */
        Tick runtime = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        /** Records replayed (== the trace's recordCount). */
        std::uint64_t replayed = 0;
        /** Records that travelled the channel in detail. */
        std::uint64_t detailed = 0;
    };

    TimedTraceReplayer(const std::string &name, EventQueue &eq,
                       const ClockDomain &domain,
                       stats::StatGroup *parent,
                       const Params &params, HostMemPort &port);

    ~TimedTraceReplayer() override;

    /** Start replaying @p trace; @p done fires at completion. */
    void start(const trace::MappedTrace &trace,
               std::function<void(const Result &)> done);

    bool running() const { return running_; }
    /** The rigid shift applied to recorded ticks this run. */
    Tick shift() const { return shift_; }
    /** Records issued so far (live, for progress boards). */
    std::uint64_t replayedSoFar() const { return result_.replayed; }

  private:
    void issueDue();
    void scheduleNext();
    void accessDone();
    void maybeFinish();

    Params params_;
    HostMemPort &port_;
    const trace::MappedTrace *trace_ = nullptr;
    std::uint64_t next_ = 0;
    /** Absolute (unshifted) tick of record next_. */
    Tick nextTick_ = 0;
    Tick shift_ = 0;
    std::uint64_t outstanding_ = 0;
    bool running_ = false;
    Tick startedAt_ = 0;
    Result result_;
    std::function<void(const Result &)> done_;
    EventFunctionWrapper issueEvent_;
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_TRACE_REPLAY_HH
