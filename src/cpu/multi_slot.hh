/**
 * @file
 * The full POWER8 socket memory organization (paper §2.1, §3.1).
 *
 * Eight DMI channels, each ending in a memory buffer: normally a
 * CDIMM (Centaur), optionally a ConTutto card. The paper's plug
 * rules apply: a ConTutto card is physically larger than a CDIMM,
 * so it blocks the adjacent slot, and it may only be plugged into
 * specific slots (modelled as the even-numbered ones). The paper
 * validated one-ConTutto + six-CDIMM and two-ConTutto + four-CDIMM
 * configurations; both are expressible here.
 *
 * Consecutive cache lines interleave across the populated channels,
 * giving the socket-level bandwidth of Figure 1's organization.
 */

#ifndef CONTUTTO_CPU_MULTI_SLOT_HH
#define CONTUTTO_CPU_MULTI_SLOT_HH

#include <array>
#include <optional>

#include "cpu/channel.hh"
#include "sim/event_stats.hh"

namespace contutto::cpu
{

/** What occupies a DMI slot. */
enum class SlotKind
{
    empty,
    cdimm,    ///< A standard Centaur buffered DIMM.
    contutto, ///< A ConTutto card (blocks the next slot).
};

/** One slot's configuration. */
struct SlotSpec
{
    SlotKind kind = SlotKind::cdimm;
    /** Channel parameters; buffer kind is forced from @c kind. */
    ChannelParams channel{};
};

/** The socket. */
class MultiSlotSystem : public stats::StatGroup
{
  public:
    static constexpr unsigned numSlots = 8;

    struct Params
    {
        std::array<SlotSpec, numSlots> slots{};
    };

    /** Outcome of plug-rule checking. */
    struct Validation
    {
        bool ok = true;
        std::string error;
    };

    /**
     * Check the paper's plug rules: ConTutto only in even slots,
     * and the slot next to a ConTutto must be empty.
     */
    static Validation validate(const Params &params);

    /** @throw FatalError when the plug rules are violated. */
    explicit MultiSlotSystem(const Params &params);
    ~MultiSlotSystem() override;

    /** Train every populated channel; true when all succeed. */
    bool trainAll();

    EventQueue &eventq() { return eq_; }

    unsigned populatedChannels() const
    {
        return unsigned(channels_.size());
    }

    /** The channel plugged in @p slot; null when empty/blocked. */
    MemoryChannel *channelInSlot(unsigned slot)
    {
        return slotToChannel_.at(slot);
    }

    /** Populated channels in slot order. */
    MemoryChannel &channel(unsigned idx)
    {
        return *channels_.at(idx);
    }

    /** Total memory behind all populated channels. */
    std::uint64_t totalCapacity() const;

    /** @{ Socket-global operations: lines interleave across the
     *  populated channels. */
    void read(Addr addr, HostMemPort::Callback cb);
    void write(Addr addr, const dmi::CacheLine &data,
               HostMemPort::Callback cb);
    /** @} */

    /** Which channel index serves a global address. */
    unsigned channelOf(Addr addr) const;
    /** The channel-local address for a global address. */
    Addr localAddr(Addr addr) const;

    /**
     * Saturate every channel with independent read streams for
     * @p window simulated time; returns aggregate payload GB/s.
     */
    double measureAggregateReadBandwidth(Tick window =
                                             microseconds(40));

    bool runUntilIdle(Tick timeout = milliseconds(200));

  private:
    Params params_;
    EventQueue eq_;
    EventCoreStats eqStats_;
    SocketClocks clocks_;
    std::vector<std::unique_ptr<MemoryChannel>> channels_;
    std::array<MemoryChannel *, numSlots> slotToChannel_{};
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_MULTI_SLOT_HH
