/**
 * @file
 * The full POWER8 socket memory organization (paper §2.1, §3.1).
 *
 * Eight DMI channels, each ending in a memory buffer: normally a
 * CDIMM (Centaur), optionally a ConTutto card. The paper's plug
 * rules apply: a ConTutto card is physically larger than a CDIMM,
 * so it blocks the adjacent slot, and it may only be plugged into
 * specific slots (modelled as the even-numbered ones). The paper
 * validated one-ConTutto + six-CDIMM and two-ConTutto + four-CDIMM
 * configurations; both are expressible here.
 *
 * Consecutive cache lines interleave across the populated channels,
 * giving the socket-level bandwidth of Figure 1's organization.
 *
 * Execution comes in two flavours:
 *  - Legacy (Params::shards == 0): one EventQueue serializes the
 *    whole socket, exactly as before.
 *  - Sharded (Params::shards >= 1): each populated channel — its
 *    HostPort, DMI pair, buffer and DIMM stack — is owned by shard
 *    (channel index mod shards), each shard with a private
 *    EventQueue, run under sim::ShardedExecutor's conservative
 *    window/barrier protocol. The lookahead window derives from the
 *    DMI link's minimum frame latency. Channels share no mutable
 *    state (clock domains are immutable; stats are per-channel), so
 *    the only cross-shard traffic is socket-level arbitration:
 *    read()/write() issued from a foreign shard, and their
 *    completions, cross via the executor's mailboxes and land at
 *    window boundaries. The serial fallback
 *    (Params::parallelExec == false) is bit-identical to the
 *    N-thread run — tests/integration/test_parallel_differential.cc
 *    holds both to that, stats-JSON byte for byte.
 */

#ifndef CONTUTTO_CPU_MULTI_SLOT_HH
#define CONTUTTO_CPU_MULTI_SLOT_HH

#include <array>
#include <atomic>
#include <optional>

#include "cpu/channel.hh"
#include "sim/event_stats.hh"
#include "sim/parallel.hh"
#include "sim/sampling.hh"

namespace contutto::cpu
{

/** What occupies a DMI slot. */
enum class SlotKind
{
    empty,
    cdimm,    ///< A standard Centaur buffered DIMM.
    contutto, ///< A ConTutto card (blocks the next slot).
};

/** One slot's configuration. */
struct SlotSpec
{
    SlotKind kind = SlotKind::cdimm;
    /** Channel parameters; buffer kind is forced from @c kind. */
    ChannelParams channel{};
};

/** The socket. */
class MultiSlotSystem : public stats::StatGroup
{
  public:
    static constexpr unsigned numSlots = 8;

    struct Params
    {
        std::array<SlotSpec, numSlots> slots{};
        /**
         * 0: legacy single-queue execution. N >= 1: sharded
         * execution with N shards (channel i on shard i mod N);
         * N == 1 exercises the windowed engine with no
         * partitioning, useful as its own determinism anchor.
         */
        unsigned shards = 0;
        /** Worker threads, or the bit-identical serial fallback. */
        bool parallelExec = true;
        /** Lookahead window in ticks; 0 derives it from the DMI
         *  link's minimum frame latency (see deriveWindow()). */
        Tick shardWindow = 0;
    };

    /** Outcome of plug-rule checking. */
    struct Validation
    {
        bool ok = true;
        std::string error;
    };

    /**
     * Check the paper's plug rules: ConTutto only in even slots,
     * and the slot next to a ConTutto must be empty.
     */
    static Validation validate(const Params &params);

    /**
     * The conservative lookahead for a socket with these channels:
     * 1024x the minimum DMI frame latency (serialization of a
     * 28-byte downstream frame over 14 lanes plus board flight
     * time). No cross-slot interaction completes faster than one
     * frame flight, and the x1024 batching amortizes a barrier over
     * thousands of shard-local events.
     */
    static Tick deriveWindow(const Params &params);

    /** @throw FatalError when the plug rules are violated. */
    explicit MultiSlotSystem(const Params &params);
    ~MultiSlotSystem() override;

    /** Train every populated channel; true when all succeed. */
    bool trainAll();

    /** Legacy single-queue access; invalid in sharded mode. */
    EventQueue &eventq()
    {
        ct_assert(!sharded());
        return eq_;
    }

    /** @{ Sharded-execution access. */
    bool sharded() const { return exec_ != nullptr; }
    sim::ShardedExecutor *executor() { return exec_.get(); }
    unsigned shardOfChannel(unsigned idx) const
    {
        ct_assert(sharded());
        return idx % exec_->numShards();
    }
    /** The queue channel @p idx lives on (legacy: the one queue). */
    EventQueue &channelQueue(unsigned idx)
    {
        return sharded() ? exec_->queue(shardOfChannel(idx)) : eq_;
    }
    /** @} */

    unsigned populatedChannels() const
    {
        return unsigned(channels_.size());
    }

    /** The channel plugged in @p slot; null when empty/blocked. */
    MemoryChannel *channelInSlot(unsigned slot)
    {
        return slotToChannel_.at(slot);
    }

    /** Populated channels in slot order. */
    MemoryChannel &channel(unsigned idx)
    {
        return *channels_.at(idx);
    }

    /** Total memory behind all populated channels. */
    std::uint64_t totalCapacity() const;

    /** The socket's shared clock domains. */
    const SocketClocks &clocks() const { return clocks_; }

    /**
     * @{ Socket-global operations: lines interleave across the
     * populated channels. In sharded mode these are safe from any
     * shard (and from outside run()): issue and completion cross
     * shards via executor mailboxes when caller and owner differ,
     * which defers them to the next window boundary — identically
     * in serial and parallel modes.
     */
    void read(Addr addr, HostMemPort::Callback cb);
    void write(Addr addr, const dmi::CacheLine &data,
               HostMemPort::Callback cb);
    /** @} */

    /** Which channel index serves a global address. */
    unsigned channelOf(Addr addr) const;
    /** The channel-local address for a global address. */
    Addr localAddr(Addr addr) const;

    /**
     * Saturate every channel with independent read streams for
     * @p window simulated time; returns aggregate payload GB/s.
     */
    double measureAggregateReadBandwidth(Tick window =
                                             microseconds(40));

    bool runUntilIdle(Tick timeout = milliseconds(200));

    /** Max simulated time over all queues (sharded-aware). */
    Tick curTick() const;

    /**
     * Sampled execution for workload drivers on this socket: the
     * functional-write hook routes each store to the owning
     * channel's memory image through the socket interleave, so
     * fast-forwarded stores land exactly where detailed ones would.
     */
    sim::SamplingController &
    enableSampling(const sim::SamplingConfig &cfg, std::uint64_t seed);

    /** The sampling controller; null when never enabled. */
    sim::SamplingController *sampler() { return sampler_.get(); }

  private:
    /** Run @p fn on channel @p ch's shard (or inline when local). */
    void runOnChannel(unsigned ch, std::function<void()> fn);
    /** Route a completion back to the shard that issued the op. */
    HostMemPort::Callback routeCompletion(HostMemPort::Callback cb);

    Params params_;
    EventQueue eq_;
    EventCoreStats eqStats_;
    /** Sharded execution (null in legacy mode). Declared before the
     *  channels: they deschedule events from its queues on
     *  destruction, so it must outlive them. */
    std::unique_ptr<sim::ShardedExecutor> exec_;
    std::optional<sim::ParallelStats> parStats_;
    /** Per-shard "shardN" groups holding each queue's eventq. */
    std::vector<std::unique_ptr<stats::StatGroup>> shardGroups_;
    std::vector<std::unique_ptr<EventCoreStats>> shardEqStats_;
    SocketClocks clocks_;
    std::vector<std::unique_ptr<MemoryChannel>> channels_;
    std::array<MemoryChannel *, numSlots> slotToChannel_{};
    /** Sharded-mode socket ops whose completion callback has not
     *  run yet — including ones mid-hop between shards, which no
     *  channel's quiescent() can see. Atomic because issue and
     *  completion may happen on different shards; only its settled
     *  value at barriers is ever observed. */
    std::atomic<std::uint64_t> pendingOps_{0};
    std::unique_ptr<sim::SamplingController> sampler_;
    std::unique_ptr<sim::SamplingStats> samplingStats_;
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_MULTI_SLOT_HH
