#include "cpu/channel.hh"

namespace contutto::cpu
{

using namespace dmi;
using namespace mem;

MemoryChannel::MemoryChannel(const std::string &name, EventQueue &eq,
                             const SocketClocks &clocks,
                             stats::StatGroup *parent,
                             const ChannelParams &params)
    : stats::StatGroup(name, parent), params_(params), eq_(eq)
{
    ct_assert(!params_.dimms.empty());

    Tick lane = params_.lanePeriod;
    if (lane == 0)
        lane = params_.buffer == BufferKind::contutto ? 125 : 104;

    down_ = std::make_unique<DmiChannel>(
        name + ".down", eq, clocks.fabric, this,
        DmiChannel::Params{14, lane, nanoseconds(1),
                           params_.channelErrorRate, params_.seed});
    up_ = std::make_unique<DmiChannel>(
        name + ".up", eq, clocks.fabric, this,
        DmiChannel::Params{21, lane, nanoseconds(1),
                           params_.channelErrorRate,
                           params_.seed + 1});

    HostLink::Params host_params;
    host_params.txProcCycles = 1; // 0.5 ns at the 2 GHz nest
    host_params.rxProcCycles = 2;
    hostLink_ = std::make_unique<HostLink>(name + ".hostLink", eq,
                                           clocks.nest, this,
                                           host_params, *down_, *up_);

    if (params_.buffer == BufferKind::contutto) {
        std::vector<MemoryDevice *> raw;
        for (unsigned i = 0; i < params_.dimms.size(); ++i) {
            const DimmSpec &spec = params_.dimms[i];
            std::string dname = name + ".dimm" + std::to_string(i);
            switch (spec.tech) {
              case MemTech::dram:
                devices_.push_back(std::make_unique<DramDevice>(
                    dname, eq, clocks.ddr, this, spec.capacity));
                break;
              case MemTech::sttMram:
                devices_.push_back(std::make_unique<MramDevice>(
                    dname, eq, clocks.ddr, this, spec.capacity,
                    spec.junction));
                break;
              case MemTech::nvdimmN:
                devices_.push_back(std::make_unique<NvdimmDevice>(
                    dname, eq, clocks.ddr, this, spec.capacity,
                    spec.nvdimm));
                break;
            }
            raw.push_back(devices_.back().get());
        }
        card_ = std::make_unique<fpga::ContuttoCard>(
            name + ".contutto", eq, clocks.fabric, clocks.ddr, this,
            params_.cardParams, *up_, *down_, raw);
    } else {
        // Centaur: four DDR ports, DRAM only (the whole point of
        // ConTutto is that Centaur cannot host other technologies).
        std::uint64_t total = 0;
        for (const DimmSpec &spec : params_.dimms)
            total += spec.capacity;
        constexpr unsigned centaurPorts = 4;
        std::vector<Ddr3Controller *> raw_ports;
        Ddr3Controller::Params mc;
        mc.frontendLatency = nanoseconds(3); // hard ASIC controller
        for (unsigned i = 0; i < centaurPorts; ++i) {
            devices_.push_back(std::make_unique<DramDevice>(
                name + ".port" + std::to_string(i), eq, clocks.ddr,
                this, total / centaurPorts));
            centaurControllers_.push_back(
                std::make_unique<Ddr3Controller>(
                    name + ".centaurMc" + std::to_string(i), eq,
                    clocks.ddr, this, mc, *devices_.back()));
            raw_ports.push_back(centaurControllers_.back().get());
        }
        BufferLink::Params link_params;
        link_params.txProcCycles = 2; // ASIC pipeline at 2 GHz
        link_params.rxProcCycles = 4;
        link_params.freezeRepeats = 0;
        bufferLink_ = std::make_unique<BufferLink>(
            name + ".centaurLink", eq, clocks.centaurClk, this,
            link_params, *up_, *down_);
        centaur_ = std::make_unique<centaur::CentaurModel>(
            name + ".centaur", eq, clocks.centaurClk, this,
            params_.centaurConfig, *bufferLink_, raw_ports);
    }

    port_ = std::make_unique<HostMemPort>(name + ".hostPort", eq,
                                          clocks.nest, this,
                                          *hostLink_);

    BufferLink &buffer_link = card_ ? card_->mbi() : *bufferLink_;
    trainer_ = std::make_unique<LinkTrainer>(
        name + ".trainer", eq, clocks.nest, this, params_.training,
        *hostLink_, buffer_link, *down_, *up_);

    // RAS: the FSP error log is always wired into the command
    // engines; patrol scrub and the link watchdog are opt-in.
    if (card_)
        card_->mbs().attachErrorLog(&errorLog_);
    if (centaur_)
        centaur_->attachErrorLog(&errorLog_);

    if (params_.ras.scrubEnabled) {
        for (unsigned i = 0; i < devices_.size(); ++i) {
            scrubbers_.push_back(std::make_unique<ras::PatrolScrubber>(
                name + ".scrub" + std::to_string(i), eq, clocks.ddr,
                this, params_.ras.scrub, devices_[i]->image()));
            scrubbers_.back()->attachErrorLog(&errorLog_);
            scrubbers_.back()->start();
        }
    }

    if (params_.ras.watchdogEnabled) {
        watchdog_ = std::make_unique<ras::LinkWatchdog>(
            name + ".watchdog", eq, clocks.nest, this,
            params_.ras.watchdog);
        watchdog_->attachErrorLog(&errorLog_);
        ras::LinkWatchdog::Actions actions;
        actions.retrain = [this] {
            down_->reseedScramblers();
            up_->reseedScramblers();
        };
        actions.spareLane = [this] {
            // Replacing the marginal lane clears the injected noise.
            down_->setFrameErrorRate(0);
            up_->setFrameErrorRate(0);
            down_->failLane(0);
            up_->failLane(0);
        };
        actions.degrade = [] {
            // Degraded-width operation; modelled as log-only since
            // the channel's timing already reflects worst case.
        };
        actions.offline = [this] { port_->abortInFlight(); };
        watchdog_->setActions(std::move(actions));
        hostLink_->onReplay = [this] { watchdog_->noteReplay(); };
        buffer_link.onReplay = [this] { watchdog_->noteReplay(); };
    }
}

MemoryChannel::~MemoryChannel() = default;

void
MemoryChannel::trainAsync(
    std::function<void(const dmi::TrainingResult &)> cb)
{
    trainer_->start([this, cb](const TrainingResult &r) {
        trainResult_ = r;
        if (cb)
            cb(r);
    });
}

std::uint64_t
MemoryChannel::memoryCapacity() const
{
    if (card_)
        return card_->capacity();
    std::uint64_t total = 0;
    for (const auto &d : devices_)
        total += d->capacity();
    return total;
}

void
MemoryChannel::functionalWrite(Addr addr, std::size_t len,
                               const std::uint8_t *data)
{
    LineInterleave li{unsigned(devices_.size()), cacheLineSize};
    while (len > 0) {
        std::size_t in_line =
            cacheLineSize - std::size_t(addr % cacheLineSize);
        std::size_t chunk = std::min(len, in_line);
        devices_[li.portOf(addr)]->image().write(li.localAddr(addr),
                                                 chunk, data);
        addr += chunk;
        data += chunk;
        len -= chunk;
    }
}

void
MemoryChannel::functionalRead(Addr addr, std::size_t len,
                              std::uint8_t *data)
{
    LineInterleave li{unsigned(devices_.size()), cacheLineSize};
    while (len > 0) {
        std::size_t in_line =
            cacheLineSize - std::size_t(addr % cacheLineSize);
        std::size_t chunk = std::min(len, in_line);
        devices_[li.portOf(addr)]->image().read(li.localAddr(addr),
                                                chunk, data);
        addr += chunk;
        data += chunk;
        len -= chunk;
    }
}

bool
MemoryChannel::quiescent() const
{
    if (!port_->idle() || !hostLink_->quiescent())
        return false;
    if (card_)
        return card_->quiescent();
    if (!centaur_->quiescent() || !bufferLink_->quiescent())
        return false;
    for (const auto &c : centaurControllers_)
        if (c->pending() != 0)
            return false;
    return true;
}

} // namespace contutto::cpu
