/**
 * @file
 * A simple out-of-order core model for latency-sensitivity studies.
 *
 * The paper's Figures 6 and 7 measure how application performance
 * responds to memory latency. We model each application as a
 * synthetic instruction stream characterized by its off-chip memory
 * behaviour: LLC misses per kilo-instruction, the fraction of misses
 * that are dependent pointer chases (serialized), the fraction that
 * are prefetch-friendly streams (deeply overlapped), and the
 * memory-level parallelism available for the rest. Misses are issued
 * through the *simulated* DMI channel and memory buffer, so the
 * measured runtime responds to the real modelled latency, including
 * tag exhaustion effects.
 */

#ifndef CONTUTTO_CPU_CORE_MODEL_HH
#define CONTUTTO_CPU_CORE_MODEL_HH

#include <functional>
#include <string>

#include "cpu/host_port.hh"
#include "sim/random.hh"
#include "sim/sampling.hh"
#include "trace/capture.hh"

namespace contutto::cpu
{

/** Memory-behaviour fingerprint of one application. */
struct WorkloadProfile
{
    std::string name;
    /** Core cycles per instruction with a perfect memory system. */
    double baseCpi = 0.7;
    /** LLC (off-chip) misses per kilo-instruction. */
    double missesPerKiloInstr = 1.0;
    /** Fraction of misses that are stores (write commands). */
    double writeFraction = 0.3;
    /** Fraction of misses that are dependent pointer chases. */
    double chaseFraction = 0.1;
    /** Fraction of misses that belong to prefetchable streams. */
    double streamFraction = 0.3;
    /** Outstanding-miss limit for ordinary (random) misses. */
    unsigned mlp = 4;
    /** Outstanding-miss limit for stream misses (prefetcher depth). */
    unsigned streamMlp = 24;
    /** Bytes the application touches (address range of misses). */
    std::uint64_t workingSet = 64 * MiB;
};

/** Runs one profile to completion and reports the runtime. */
class CoreModel : public SimObject
{
  public:
    struct Params
    {
        std::uint64_t instructions = 2000000;
        /** Per-miss processor-side overhead outside the channel. */
        Tick nestOverhead = nanoseconds(44);
        std::uint64_t seed = 42;
        /** Base of the memory region this core may touch. */
        Addr memoryBase = 0;
        /**
         * Sampled execution (sim/sampling.hh): when set, the
         * controller decides per miss whether it travels the real
         * channel or completes from the calibrated estimate. Null
         * runs every miss in full detail, exactly as before.
         */
        sim::SamplingController *sampler = nullptr;
        /**
         * Optional capture hook (trace/capture.hh): every off-chip
         * miss is appended to the sink as it issues — in both the
         * detailed and fast-forwarded regimes, so a trace captured
         * under sampling still holds the full logical access
         * stream.
         */
        trace::CaptureSink *capture = nullptr;
    };

    struct Result
    {
        Tick runtime = 0;
        std::uint64_t instructions = 0;
        std::uint64_t misses = 0;
        double cpi = 0.0;
        /** Instructions per second at the modelled clock. */
        double ips = 0.0;
    };

    CoreModel(const std::string &name, EventQueue &eq,
              const ClockDomain &domain, stats::StatGroup *parent,
              const WorkloadProfile &profile, const Params &params,
              HostMemPort &port);

    ~CoreModel() override;

    /** Begin execution; @p done fires at completion. */
    void start(std::function<void(const Result &)> done);

    bool running() const { return running_; }
    const Result &result() const { return result_; }

    /** Instructions retired so far (live, for progress boards). */
    std::uint64_t instructionsDone() const
    {
        return instructionsDone_;
    }

  private:
    enum class MissKind
    {
        chase,
        stream,
        random,
    };

    void advance();
    void missPoint();
    void issueMiss(MissKind kind);
    void missCompleted(MissKind kind);
    void maybeFinish();

    WorkloadProfile profile_;
    Params params_;
    HostMemPort &port_;
    Rng rng_;

    bool running_ = false;
    std::uint64_t instructionsDone_ = 0;
    std::uint64_t missesIssued_ = 0;
    std::uint64_t missesDone_ = 0;
    unsigned outstandingRandom_ = 0;
    unsigned outstandingStream_ = 0;
    bool chaseOutstanding_ = false;
    bool stalled_ = false;
    MissKind pendingKind_ = MissKind::random;
    bool pendingMiss_ = false;
    Addr streamCursor_ = 0;
    Tick startedAt_ = 0;
    std::function<void(const Result &)> done_;
    Result result_;
    EventFunctionWrapper advanceEvent_;
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_CORE_MODEL_HH
