#include "cpu/energy.hh"

#include <sstream>

#include "accel/access_processor.hh"

namespace contutto::cpu
{

std::string
EnergyReport::toString() const
{
    std::ostringstream os;
    os.precision(2);
    os << std::fixed;
    os << "link " << linkPj / 1e6 << " uJ, dram " << dramPj / 1e6
       << " uJ, host " << hostPj / 1e6 << " uJ, buffer "
       << bufferPj / 1e6 << " uJ, accessProc " << apPj / 1e6
       << " uJ, total " << totalUj() << " uJ";
    return os.str();
}

EnergyMeter::EnergyMeter(Power8System &sys, EnergyCoefficients coeffs)
    : sys_(sys), coeffs_(coeffs)
{
    base_ = take();
}

void
EnergyMeter::attach(accel::AccessProcessor &ap)
{
    ap_ = &ap;
    base_ = take();
}

void
EnergyMeter::reset()
{
    base_ = take();
}

EnergyMeter::Snapshot
EnergyMeter::take() const
{
    Snapshot s;
    s.linkBytes =
        sys_.downChannel().channelStats().bytesCarried.value()
        + sys_.upChannel().channelStats().bytesCarried.value();

    // DRAM traffic counts at the devices, so Centaur and ConTutto
    // systems meter identically.
    for (unsigned i = 0; i < sys_.numDimms(); ++i) {
        const auto &dev = sys_.dimm(i);
        s.dramReads += dev.bytesRead() / double(dmi::cacheLineSize);
        s.dramWrites +=
            dev.bytesWritten() / double(dmi::cacheLineSize);
    }

    if (auto *card = sys_.card()) {
        const auto &ms = card->mbs().mbsStats();
        s.bufferCommands = ms.reads.value() + ms.writes.value()
            + ms.rmws.value() + ms.flushes.value()
            + ms.inlineOps.value();
    } else if (auto *centaur = sys_.centaurBuffer()) {
        const auto &cs = centaur->centaurStats();
        s.bufferCommands = cs.reads.value() + cs.writes.value()
            + cs.rmws.value();
    }

    // Host lines: every read/write command the port issued moved a
    // line through the core's load/store machinery.
    const auto &ps = sys_.port().portStats();
    s.hostLines = ps.reads.value() + ps.writes.value()
        + ps.rmws.value();

    if (ap_)
        s.apInstructions = ap_->apStats().instructions.value();
    return s;
}

EnergyReport
EnergyMeter::report() const
{
    Snapshot now = take();
    EnergyReport r;
    r.linkPj =
        (now.linkBytes - base_.linkBytes) * coeffs_.pjPerLinkByte;
    double dram_bytes = ((now.dramReads - base_.dramReads)
                         + (now.dramWrites - base_.dramWrites))
        * double(dmi::cacheLineSize);
    r.dramPj = dram_bytes * coeffs_.pjPerDramByte;
    r.hostPj = (now.hostLines - base_.hostLines)
        * coeffs_.pjPerHostLine;
    r.apPj = (now.apInstructions - base_.apInstructions)
        * coeffs_.pjPerApInstruction;
    r.bufferPj = (now.bufferCommands - base_.bufferCommands)
        * coeffs_.pjPerBufferCommand;
    return r;
}

} // namespace contutto::cpu
