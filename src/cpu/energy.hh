/**
 * @file
 * First-order energy accounting for the memory subsystem.
 *
 * The paper claims the Access processor's scheduling improves "the
 * performance and, to a certain extent, the energy efficiency of
 * the accelerator operation" (§4.3): near-memory execution avoids
 * shipping operands across the DMI serdes and through the
 * processor. This meter turns the statistics the models already
 * keep into energy estimates with published-class coefficients:
 * high-speed serdes ~2 pJ/bit per direction, DDR3 access+I/O
 * ~25 pJ/bit, core pipeline ~200 pJ per handled cache line, FPGA
 * fabric ~15 pJ per retired Access-processor instruction. Absolute
 * joules are rough by construction; *differences* between two ways
 * of doing the same work (the data-movement energy) are the point.
 */

#ifndef CONTUTTO_CPU_ENERGY_HH
#define CONTUTTO_CPU_ENERGY_HH

#include <string>

#include "cpu/system.hh"

namespace contutto::accel
{
class AccessProcessor;
} // namespace contutto::accel

namespace contutto::cpu
{

/** Energy coefficients (picojoules). */
struct EnergyCoefficients
{
    /** Per byte serialized onto a DMI lane bundle (serdes + wire). */
    double pjPerLinkByte = 16.0; // 2 pJ/bit
    /** Per byte moved at the DRAM devices (array + I/O). */
    double pjPerDramByte = 200.0; // 25 pJ/bit
    /** Per cache line the host core touches (LSU + cache fill). */
    double pjPerHostLine = 200.0;
    /** Per Access-processor instruction retired. */
    double pjPerApInstruction = 15.0;
    /** Per command the buffer's MBS executes. */
    double pjPerBufferCommand = 120.0;
};

/** A snapshot-diff energy estimate. */
struct EnergyReport
{
    double linkPj = 0;
    double dramPj = 0;
    double hostPj = 0;
    double apPj = 0;
    double bufferPj = 0;

    double
    totalPj() const
    {
        return linkPj + dramPj + hostPj + apPj + bufferPj;
    }

    double totalUj() const { return totalPj() / 1e6; }

    std::string toString() const;
};

/**
 * Meters one system between construction (or reset()) and report().
 */
class EnergyMeter
{
  public:
    explicit EnergyMeter(Power8System &sys,
                         EnergyCoefficients coeffs = {});

    /** Attach an Access processor so its work is accounted too. */
    void attach(accel::AccessProcessor &ap);

    /** Re-baseline the snapshot. */
    void reset();

    /** Energy spent since the last reset. */
    EnergyReport report() const;

  private:
    struct Snapshot
    {
        double linkBytes = 0;
        double dramReads = 0;
        double dramWrites = 0;
        double hostLines = 0;
        double apInstructions = 0;
        double bufferCommands = 0;
    };

    Snapshot take() const;

    Power8System &sys_;
    accel::AccessProcessor *ap_ = nullptr;
    EnergyCoefficients coeffs_;
    Snapshot base_;
};

} // namespace contutto::cpu

#endif // CONTUTTO_CPU_ENERGY_HH
