file(REMOVE_RECURSE
  "../bench/bench_table3_latency_knob"
  "../bench/bench_table3_latency_knob.pdb"
  "CMakeFiles/bench_table3_latency_knob.dir/bench_table3_latency_knob.cc.o"
  "CMakeFiles/bench_table3_latency_knob.dir/bench_table3_latency_knob.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_latency_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
