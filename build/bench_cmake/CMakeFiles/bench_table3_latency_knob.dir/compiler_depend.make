# Empty compiler generated dependencies file for bench_table3_latency_knob.
# This may be replaced when dependencies are built.
