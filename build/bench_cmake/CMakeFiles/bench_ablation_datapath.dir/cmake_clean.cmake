file(REMOVE_RECURSE
  "../bench/bench_ablation_datapath"
  "../bench/bench_ablation_datapath.pdb"
  "CMakeFiles/bench_ablation_datapath.dir/bench_ablation_datapath.cc.o"
  "CMakeFiles/bench_ablation_datapath.dir/bench_ablation_datapath.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
