# Empty dependencies file for bench_ablation_datapath.
# This may be replaced when dependencies are built.
