file(REMOVE_RECURSE
  "../bench/bench_figure1_socket"
  "../bench/bench_figure1_socket.pdb"
  "CMakeFiles/bench_figure1_socket.dir/bench_figure1_socket.cc.o"
  "CMakeFiles/bench_figure1_socket.dir/bench_figure1_socket.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
