# Empty dependencies file for bench_figure1_socket.
# This may be replaced when dependencies are built.
