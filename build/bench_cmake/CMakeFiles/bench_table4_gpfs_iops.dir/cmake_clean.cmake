file(REMOVE_RECURSE
  "../bench/bench_table4_gpfs_iops"
  "../bench/bench_table4_gpfs_iops.pdb"
  "CMakeFiles/bench_table4_gpfs_iops.dir/bench_table4_gpfs_iops.cc.o"
  "CMakeFiles/bench_table4_gpfs_iops.dir/bench_table4_gpfs_iops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_gpfs_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
