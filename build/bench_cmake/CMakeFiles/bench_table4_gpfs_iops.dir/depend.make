# Empty dependencies file for bench_table4_gpfs_iops.
# This may be replaced when dependencies are built.
