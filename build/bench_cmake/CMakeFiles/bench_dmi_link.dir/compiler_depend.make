# Empty compiler generated dependencies file for bench_dmi_link.
# This may be replaced when dependencies are built.
