file(REMOVE_RECURSE
  "../bench/bench_dmi_link"
  "../bench/bench_dmi_link.pdb"
  "CMakeFiles/bench_dmi_link.dir/bench_dmi_link.cc.o"
  "CMakeFiles/bench_dmi_link.dir/bench_dmi_link.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dmi_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
