# Empty dependencies file for bench_table5_accel.
# This may be replaced when dependencies are built.
