file(REMOVE_RECURSE
  "../bench/bench_table5_accel"
  "../bench/bench_table5_accel.pdb"
  "CMakeFiles/bench_table5_accel.dir/bench_table5_accel.cc.o"
  "CMakeFiles/bench_table5_accel.dir/bench_table5_accel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
