# Empty dependencies file for bench_figure7_spec_contutto.
# This may be replaced when dependencies are built.
