file(REMOVE_RECURSE
  "../bench/bench_figure7_spec_contutto"
  "../bench/bench_figure7_spec_contutto.pdb"
  "CMakeFiles/bench_figure7_spec_contutto.dir/bench_figure7_spec_contutto.cc.o"
  "CMakeFiles/bench_figure7_spec_contutto.dir/bench_figure7_spec_contutto.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7_spec_contutto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
