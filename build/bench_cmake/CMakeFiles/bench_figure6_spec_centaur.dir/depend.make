# Empty dependencies file for bench_figure6_spec_centaur.
# This may be replaced when dependencies are built.
