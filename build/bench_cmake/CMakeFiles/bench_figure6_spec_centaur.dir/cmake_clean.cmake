file(REMOVE_RECURSE
  "../bench/bench_figure6_spec_centaur"
  "../bench/bench_figure6_spec_centaur.pdb"
  "CMakeFiles/bench_figure6_spec_centaur.dir/bench_figure6_spec_centaur.cc.o"
  "CMakeFiles/bench_figure6_spec_centaur.dir/bench_figure6_spec_centaur.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_spec_centaur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
