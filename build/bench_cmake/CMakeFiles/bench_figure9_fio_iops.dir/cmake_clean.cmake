file(REMOVE_RECURSE
  "../bench/bench_figure9_fio_iops"
  "../bench/bench_figure9_fio_iops.pdb"
  "CMakeFiles/bench_figure9_fio_iops.dir/bench_figure9_fio_iops.cc.o"
  "CMakeFiles/bench_figure9_fio_iops.dir/bench_figure9_fio_iops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure9_fio_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
