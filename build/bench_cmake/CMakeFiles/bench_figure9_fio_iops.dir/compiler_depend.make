# Empty compiler generated dependencies file for bench_figure9_fio_iops.
# This may be replaced when dependencies are built.
