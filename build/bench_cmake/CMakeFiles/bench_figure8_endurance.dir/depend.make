# Empty dependencies file for bench_figure8_endurance.
# This may be replaced when dependencies are built.
