file(REMOVE_RECURSE
  "../bench/bench_figure8_endurance"
  "../bench/bench_figure8_endurance.pdb"
  "CMakeFiles/bench_figure8_endurance.dir/bench_figure8_endurance.cc.o"
  "CMakeFiles/bench_figure8_endurance.dir/bench_figure8_endurance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
