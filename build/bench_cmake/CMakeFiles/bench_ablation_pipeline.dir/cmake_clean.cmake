file(REMOVE_RECURSE
  "../bench/bench_ablation_pipeline"
  "../bench/bench_ablation_pipeline.pdb"
  "CMakeFiles/bench_ablation_pipeline.dir/bench_ablation_pipeline.cc.o"
  "CMakeFiles/bench_ablation_pipeline.dir/bench_ablation_pipeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
