file(REMOVE_RECURSE
  "../bench/bench_pcie_peer"
  "../bench/bench_pcie_peer.pdb"
  "CMakeFiles/bench_pcie_peer.dir/bench_pcie_peer.cc.o"
  "CMakeFiles/bench_pcie_peer.dir/bench_pcie_peer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcie_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
