# Empty dependencies file for bench_pcie_peer.
# This may be replaced when dependencies are built.
