file(REMOVE_RECURSE
  "../bench/bench_table1_resources"
  "../bench/bench_table1_resources.pdb"
  "CMakeFiles/bench_table1_resources.dir/bench_table1_resources.cc.o"
  "CMakeFiles/bench_table1_resources.dir/bench_table1_resources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
