# Empty dependencies file for bench_table2_db2_centaur.
# This may be replaced when dependencies are built.
