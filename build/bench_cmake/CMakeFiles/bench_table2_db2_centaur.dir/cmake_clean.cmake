file(REMOVE_RECURSE
  "../bench/bench_table2_db2_centaur"
  "../bench/bench_table2_db2_centaur.pdb"
  "CMakeFiles/bench_table2_db2_centaur.dir/bench_table2_db2_centaur.cc.o"
  "CMakeFiles/bench_table2_db2_centaur.dir/bench_table2_db2_centaur.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_db2_centaur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
