# Empty dependencies file for bench_figure10_fio_latency.
# This may be replaced when dependencies are built.
