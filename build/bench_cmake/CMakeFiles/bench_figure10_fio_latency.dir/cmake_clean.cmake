file(REMOVE_RECURSE
  "../bench/bench_figure10_fio_latency"
  "../bench/bench_figure10_fio_latency.pdb"
  "CMakeFiles/bench_figure10_fio_latency.dir/bench_figure10_fio_latency.cc.o"
  "CMakeFiles/bench_figure10_fio_latency.dir/bench_figure10_fio_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure10_fio_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
