file(REMOVE_RECURSE
  "../bench/bench_inline_ops"
  "../bench/bench_inline_ops.pdb"
  "CMakeFiles/bench_inline_ops.dir/bench_inline_ops.cc.o"
  "CMakeFiles/bench_inline_ops.dir/bench_inline_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inline_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
