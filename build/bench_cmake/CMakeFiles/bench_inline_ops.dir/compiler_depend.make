# Empty compiler generated dependencies file for bench_inline_ops.
# This may be replaced when dependencies are built.
