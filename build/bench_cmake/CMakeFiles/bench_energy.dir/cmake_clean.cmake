file(REMOVE_RECURSE
  "../bench/bench_energy"
  "../bench/bench_energy.pdb"
  "CMakeFiles/bench_energy.dir/bench_energy.cc.o"
  "CMakeFiles/bench_energy.dir/bench_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
