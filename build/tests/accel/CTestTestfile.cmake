# CMake generated Testfile for 
# Source directory: /root/repo/tests/accel
# Build directory: /root/repo/build/tests/accel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_accel "/root/repo/build/tests/accel/test_accel")
set_tests_properties(test_accel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/accel/CMakeLists.txt;1;ct_add_test;/root/repo/tests/accel/CMakeLists.txt;0;")
