file(REMOVE_RECURSE
  "CMakeFiles/test_accel.dir/test_accel.cc.o"
  "CMakeFiles/test_accel.dir/test_accel.cc.o.d"
  "CMakeFiles/test_accel.dir/test_access_processor.cc.o"
  "CMakeFiles/test_accel.dir/test_access_processor.cc.o.d"
  "CMakeFiles/test_accel.dir/test_isa.cc.o"
  "CMakeFiles/test_accel.dir/test_isa.cc.o.d"
  "CMakeFiles/test_accel.dir/test_pcie_peer.cc.o"
  "CMakeFiles/test_accel.dir/test_pcie_peer.cc.o.d"
  "CMakeFiles/test_accel.dir/test_tcam.cc.o"
  "CMakeFiles/test_accel.dir/test_tcam.cc.o.d"
  "test_accel"
  "test_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
