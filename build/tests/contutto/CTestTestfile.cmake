# CMake generated Testfile for 
# Source directory: /root/repo/tests/contutto
# Build directory: /root/repo/build/tests/contutto
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_contutto "/root/repo/build/tests/contutto/test_contutto")
set_tests_properties(test_contutto PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/contutto/CMakeLists.txt;1;ct_add_test;/root/repo/tests/contutto/CMakeLists.txt;0;")
