# Empty compiler generated dependencies file for test_contutto.
# This may be replaced when dependencies are built.
