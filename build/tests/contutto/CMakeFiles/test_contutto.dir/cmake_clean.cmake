file(REMOVE_RECURSE
  "CMakeFiles/test_contutto.dir/test_card.cc.o"
  "CMakeFiles/test_contutto.dir/test_card.cc.o.d"
  "CMakeFiles/test_contutto.dir/test_mbs_protocol.cc.o"
  "CMakeFiles/test_contutto.dir/test_mbs_protocol.cc.o.d"
  "test_contutto"
  "test_contutto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contutto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
