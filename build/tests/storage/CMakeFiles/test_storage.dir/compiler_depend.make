# Empty compiler generated dependencies file for test_storage.
# This may be replaced when dependencies are built.
