# CMake generated Testfile for 
# Source directory: /root/repo/tests/storage
# Build directory: /root/repo/build/tests/storage
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_storage "/root/repo/build/tests/storage/test_storage")
set_tests_properties(test_storage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/storage/CMakeLists.txt;1;ct_add_test;/root/repo/tests/storage/CMakeLists.txt;0;")
