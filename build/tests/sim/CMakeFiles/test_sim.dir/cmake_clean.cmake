file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_clock.cc.o"
  "CMakeFiles/test_sim.dir/test_clock.cc.o.d"
  "CMakeFiles/test_sim.dir/test_event.cc.o"
  "CMakeFiles/test_sim.dir/test_event.cc.o.d"
  "CMakeFiles/test_sim.dir/test_random.cc.o"
  "CMakeFiles/test_sim.dir/test_random.cc.o.d"
  "CMakeFiles/test_sim.dir/test_stats.cc.o"
  "CMakeFiles/test_sim.dir/test_stats.cc.o.d"
  "CMakeFiles/test_sim.dir/test_trace.cc.o"
  "CMakeFiles/test_sim.dir/test_trace.cc.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
