# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sim "/root/repo/build/tests/sim/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/sim/CMakeLists.txt;1;ct_add_test;/root/repo/tests/sim/CMakeLists.txt;0;")
