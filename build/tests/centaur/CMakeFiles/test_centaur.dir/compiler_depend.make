# Empty compiler generated dependencies file for test_centaur.
# This may be replaced when dependencies are built.
