file(REMOVE_RECURSE
  "CMakeFiles/test_centaur.dir/test_centaur.cc.o"
  "CMakeFiles/test_centaur.dir/test_centaur.cc.o.d"
  "test_centaur"
  "test_centaur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_centaur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
