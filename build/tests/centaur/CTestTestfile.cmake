# CMake generated Testfile for 
# Source directory: /root/repo/tests/centaur
# Build directory: /root/repo/build/tests/centaur
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_centaur "/root/repo/build/tests/centaur/test_centaur")
set_tests_properties(test_centaur PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/centaur/CMakeLists.txt;1;ct_add_test;/root/repo/tests/centaur/CMakeLists.txt;0;")
