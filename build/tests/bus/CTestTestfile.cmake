# CMake generated Testfile for 
# Source directory: /root/repo/tests/bus
# Build directory: /root/repo/build/tests/bus
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_bus "/root/repo/build/tests/bus/test_bus")
set_tests_properties(test_bus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/bus/CMakeLists.txt;1;ct_add_test;/root/repo/tests/bus/CMakeLists.txt;0;")
