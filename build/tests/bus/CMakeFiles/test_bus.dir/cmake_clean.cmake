file(REMOVE_RECURSE
  "CMakeFiles/test_bus.dir/test_avalon.cc.o"
  "CMakeFiles/test_bus.dir/test_avalon.cc.o.d"
  "test_bus"
  "test_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
