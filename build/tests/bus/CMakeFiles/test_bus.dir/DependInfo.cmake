
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bus/test_avalon.cc" "tests/bus/CMakeFiles/test_bus.dir/test_avalon.cc.o" "gcc" "tests/bus/CMakeFiles/test_bus.dir/test_avalon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/firmware/CMakeFiles/ct_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ct_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ct_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/ct_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ct_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/centaur/CMakeFiles/ct_centaur.dir/DependInfo.cmake"
  "/root/repo/build/src/contutto/CMakeFiles/ct_contutto.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dmi/CMakeFiles/ct_dmi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
