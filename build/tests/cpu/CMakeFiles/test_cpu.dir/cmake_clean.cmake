file(REMOVE_RECURSE
  "CMakeFiles/test_cpu.dir/test_cache_hierarchy.cc.o"
  "CMakeFiles/test_cpu.dir/test_cache_hierarchy.cc.o.d"
  "CMakeFiles/test_cpu.dir/test_core_model.cc.o"
  "CMakeFiles/test_cpu.dir/test_core_model.cc.o.d"
  "CMakeFiles/test_cpu.dir/test_multi_slot.cc.o"
  "CMakeFiles/test_cpu.dir/test_multi_slot.cc.o.d"
  "CMakeFiles/test_cpu.dir/test_system.cc.o"
  "CMakeFiles/test_cpu.dir/test_system.cc.o.d"
  "CMakeFiles/test_cpu.dir/test_trace_replay.cc.o"
  "CMakeFiles/test_cpu.dir/test_trace_replay.cc.o.d"
  "test_cpu"
  "test_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
