# CMake generated Testfile for 
# Source directory: /root/repo/tests/cpu
# Build directory: /root/repo/build/tests/cpu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_cpu "/root/repo/build/tests/cpu/test_cpu")
set_tests_properties(test_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/cpu/CMakeLists.txt;1;ct_add_test;/root/repo/tests/cpu/CMakeLists.txt;0;")
