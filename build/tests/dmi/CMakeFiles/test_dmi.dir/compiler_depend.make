# Empty compiler generated dependencies file for test_dmi.
# This may be replaced when dependencies are built.
