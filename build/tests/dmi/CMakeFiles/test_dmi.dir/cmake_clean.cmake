file(REMOVE_RECURSE
  "CMakeFiles/test_dmi.dir/test_crc_scrambler.cc.o"
  "CMakeFiles/test_dmi.dir/test_crc_scrambler.cc.o.d"
  "CMakeFiles/test_dmi.dir/test_frame_codec.cc.o"
  "CMakeFiles/test_dmi.dir/test_frame_codec.cc.o.d"
  "CMakeFiles/test_dmi.dir/test_lane_sparing.cc.o"
  "CMakeFiles/test_dmi.dir/test_lane_sparing.cc.o.d"
  "CMakeFiles/test_dmi.dir/test_link.cc.o"
  "CMakeFiles/test_dmi.dir/test_link.cc.o.d"
  "CMakeFiles/test_dmi.dir/test_training.cc.o"
  "CMakeFiles/test_dmi.dir/test_training.cc.o.d"
  "test_dmi"
  "test_dmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
