# CMake generated Testfile for 
# Source directory: /root/repo/tests/dmi
# Build directory: /root/repo/build/tests/dmi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_dmi "/root/repo/build/tests/dmi/test_dmi")
set_tests_properties(test_dmi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/dmi/CMakeLists.txt;1;ct_add_test;/root/repo/tests/dmi/CMakeLists.txt;0;")
