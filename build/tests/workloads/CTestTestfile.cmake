# CMake generated Testfile for 
# Source directory: /root/repo/tests/workloads
# Build directory: /root/repo/build/tests/workloads
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_workloads "/root/repo/build/tests/workloads/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/workloads/CMakeLists.txt;1;ct_add_test;/root/repo/tests/workloads/CMakeLists.txt;0;")
