# Empty compiler generated dependencies file for test_firmware.
# This may be replaced when dependencies are built.
