# CMake generated Testfile for 
# Source directory: /root/repo/tests/firmware
# Build directory: /root/repo/build/tests/firmware
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_firmware "/root/repo/build/tests/firmware/test_firmware")
set_tests_properties(test_firmware PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/firmware/CMakeLists.txt;1;ct_add_test;/root/repo/tests/firmware/CMakeLists.txt;0;")
