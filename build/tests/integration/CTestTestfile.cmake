# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_integration "/root/repo/build/tests/integration/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;1;ct_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
