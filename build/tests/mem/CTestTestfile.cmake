# CMake generated Testfile for 
# Source directory: /root/repo/tests/mem
# Build directory: /root/repo/build/tests/mem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_mem "/root/repo/build/tests/mem/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/mem/CMakeLists.txt;1;ct_add_test;/root/repo/tests/mem/CMakeLists.txt;0;")
