file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/test_cache_model.cc.o"
  "CMakeFiles/test_mem.dir/test_cache_model.cc.o.d"
  "CMakeFiles/test_mem.dir/test_controller.cc.o"
  "CMakeFiles/test_mem.dir/test_controller.cc.o.d"
  "CMakeFiles/test_mem.dir/test_mem_image.cc.o"
  "CMakeFiles/test_mem.dir/test_mem_image.cc.o.d"
  "CMakeFiles/test_mem.dir/test_nvdimm_spd.cc.o"
  "CMakeFiles/test_mem.dir/test_nvdimm_spd.cc.o.d"
  "test_mem"
  "test_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
