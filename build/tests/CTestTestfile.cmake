# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("dmi")
subdirs("bus")
subdirs("mem")
subdirs("centaur")
subdirs("contutto")
subdirs("cpu")
subdirs("firmware")
subdirs("storage")
subdirs("workloads")
subdirs("accel")
subdirs("integration")
