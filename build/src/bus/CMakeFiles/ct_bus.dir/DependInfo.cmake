
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/avalon.cc" "src/bus/CMakeFiles/ct_bus.dir/avalon.cc.o" "gcc" "src/bus/CMakeFiles/ct_bus.dir/avalon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dmi/CMakeFiles/ct_dmi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
