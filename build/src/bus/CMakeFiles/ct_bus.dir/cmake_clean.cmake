file(REMOVE_RECURSE
  "CMakeFiles/ct_bus.dir/avalon.cc.o"
  "CMakeFiles/ct_bus.dir/avalon.cc.o.d"
  "libct_bus.a"
  "libct_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
