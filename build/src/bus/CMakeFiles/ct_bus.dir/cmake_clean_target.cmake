file(REMOVE_RECURSE
  "libct_bus.a"
)
