# Empty dependencies file for ct_bus.
# This may be replaced when dependencies are built.
