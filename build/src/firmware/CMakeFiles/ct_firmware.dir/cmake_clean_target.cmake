file(REMOVE_RECURSE
  "libct_firmware.a"
)
