file(REMOVE_RECURSE
  "CMakeFiles/ct_firmware.dir/boot.cc.o"
  "CMakeFiles/ct_firmware.dir/boot.cc.o.d"
  "CMakeFiles/ct_firmware.dir/card_control.cc.o"
  "CMakeFiles/ct_firmware.dir/card_control.cc.o.d"
  "CMakeFiles/ct_firmware.dir/memory_map.cc.o"
  "CMakeFiles/ct_firmware.dir/memory_map.cc.o.d"
  "CMakeFiles/ct_firmware.dir/power_seq.cc.o"
  "CMakeFiles/ct_firmware.dir/power_seq.cc.o.d"
  "libct_firmware.a"
  "libct_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
