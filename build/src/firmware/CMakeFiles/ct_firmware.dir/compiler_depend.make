# Empty compiler generated dependencies file for ct_firmware.
# This may be replaced when dependencies are built.
