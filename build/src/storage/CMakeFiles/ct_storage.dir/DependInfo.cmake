
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/fio.cc" "src/storage/CMakeFiles/ct_storage.dir/fio.cc.o" "gcc" "src/storage/CMakeFiles/ct_storage.dir/fio.cc.o.d"
  "/root/repo/src/storage/gpfs.cc" "src/storage/CMakeFiles/ct_storage.dir/gpfs.cc.o" "gcc" "src/storage/CMakeFiles/ct_storage.dir/gpfs.cc.o.d"
  "/root/repo/src/storage/pcie_devices.cc" "src/storage/CMakeFiles/ct_storage.dir/pcie_devices.cc.o" "gcc" "src/storage/CMakeFiles/ct_storage.dir/pcie_devices.cc.o.d"
  "/root/repo/src/storage/pmem.cc" "src/storage/CMakeFiles/ct_storage.dir/pmem.cc.o" "gcc" "src/storage/CMakeFiles/ct_storage.dir/pmem.cc.o.d"
  "/root/repo/src/storage/sas_devices.cc" "src/storage/CMakeFiles/ct_storage.dir/sas_devices.cc.o" "gcc" "src/storage/CMakeFiles/ct_storage.dir/sas_devices.cc.o.d"
  "/root/repo/src/storage/slram.cc" "src/storage/CMakeFiles/ct_storage.dir/slram.cc.o" "gcc" "src/storage/CMakeFiles/ct_storage.dir/slram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ct_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/centaur/CMakeFiles/ct_centaur.dir/DependInfo.cmake"
  "/root/repo/build/src/contutto/CMakeFiles/ct_contutto.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dmi/CMakeFiles/ct_dmi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
