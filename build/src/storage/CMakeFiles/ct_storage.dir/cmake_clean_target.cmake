file(REMOVE_RECURSE
  "libct_storage.a"
)
