file(REMOVE_RECURSE
  "CMakeFiles/ct_storage.dir/fio.cc.o"
  "CMakeFiles/ct_storage.dir/fio.cc.o.d"
  "CMakeFiles/ct_storage.dir/gpfs.cc.o"
  "CMakeFiles/ct_storage.dir/gpfs.cc.o.d"
  "CMakeFiles/ct_storage.dir/pcie_devices.cc.o"
  "CMakeFiles/ct_storage.dir/pcie_devices.cc.o.d"
  "CMakeFiles/ct_storage.dir/pmem.cc.o"
  "CMakeFiles/ct_storage.dir/pmem.cc.o.d"
  "CMakeFiles/ct_storage.dir/sas_devices.cc.o"
  "CMakeFiles/ct_storage.dir/sas_devices.cc.o.d"
  "CMakeFiles/ct_storage.dir/slram.cc.o"
  "CMakeFiles/ct_storage.dir/slram.cc.o.d"
  "libct_storage.a"
  "libct_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
