# Empty compiler generated dependencies file for ct_storage.
# This may be replaced when dependencies are built.
