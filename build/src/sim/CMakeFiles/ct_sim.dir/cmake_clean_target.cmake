file(REMOVE_RECURSE
  "libct_sim.a"
)
