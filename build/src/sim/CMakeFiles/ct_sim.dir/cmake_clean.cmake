file(REMOVE_RECURSE
  "CMakeFiles/ct_sim.dir/event.cc.o"
  "CMakeFiles/ct_sim.dir/event.cc.o.d"
  "CMakeFiles/ct_sim.dir/logging.cc.o"
  "CMakeFiles/ct_sim.dir/logging.cc.o.d"
  "CMakeFiles/ct_sim.dir/stats.cc.o"
  "CMakeFiles/ct_sim.dir/stats.cc.o.d"
  "CMakeFiles/ct_sim.dir/trace.cc.o"
  "CMakeFiles/ct_sim.dir/trace.cc.o.d"
  "libct_sim.a"
  "libct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
