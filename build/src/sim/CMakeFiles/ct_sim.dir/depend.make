# Empty dependencies file for ct_sim.
# This may be replaced when dependencies are built.
