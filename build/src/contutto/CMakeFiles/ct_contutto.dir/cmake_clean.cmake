file(REMOVE_RECURSE
  "CMakeFiles/ct_contutto.dir/contutto_card.cc.o"
  "CMakeFiles/ct_contutto.dir/contutto_card.cc.o.d"
  "CMakeFiles/ct_contutto.dir/mbs.cc.o"
  "CMakeFiles/ct_contutto.dir/mbs.cc.o.d"
  "CMakeFiles/ct_contutto.dir/resources.cc.o"
  "CMakeFiles/ct_contutto.dir/resources.cc.o.d"
  "libct_contutto.a"
  "libct_contutto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_contutto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
