# Empty compiler generated dependencies file for ct_contutto.
# This may be replaced when dependencies are built.
