file(REMOVE_RECURSE
  "libct_contutto.a"
)
