
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contutto/contutto_card.cc" "src/contutto/CMakeFiles/ct_contutto.dir/contutto_card.cc.o" "gcc" "src/contutto/CMakeFiles/ct_contutto.dir/contutto_card.cc.o.d"
  "/root/repo/src/contutto/mbs.cc" "src/contutto/CMakeFiles/ct_contutto.dir/mbs.cc.o" "gcc" "src/contutto/CMakeFiles/ct_contutto.dir/mbs.cc.o.d"
  "/root/repo/src/contutto/resources.cc" "src/contutto/CMakeFiles/ct_contutto.dir/resources.cc.o" "gcc" "src/contutto/CMakeFiles/ct_contutto.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dmi/CMakeFiles/ct_dmi.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ct_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
