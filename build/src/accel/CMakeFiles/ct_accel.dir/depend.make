# Empty dependencies file for ct_accel.
# This may be replaced when dependencies are built.
