
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerators.cc" "src/accel/CMakeFiles/ct_accel.dir/accelerators.cc.o" "gcc" "src/accel/CMakeFiles/ct_accel.dir/accelerators.cc.o.d"
  "/root/repo/src/accel/access_processor.cc" "src/accel/CMakeFiles/ct_accel.dir/access_processor.cc.o" "gcc" "src/accel/CMakeFiles/ct_accel.dir/access_processor.cc.o.d"
  "/root/repo/src/accel/complex.cc" "src/accel/CMakeFiles/ct_accel.dir/complex.cc.o" "gcc" "src/accel/CMakeFiles/ct_accel.dir/complex.cc.o.d"
  "/root/repo/src/accel/control_block.cc" "src/accel/CMakeFiles/ct_accel.dir/control_block.cc.o" "gcc" "src/accel/CMakeFiles/ct_accel.dir/control_block.cc.o.d"
  "/root/repo/src/accel/driver.cc" "src/accel/CMakeFiles/ct_accel.dir/driver.cc.o" "gcc" "src/accel/CMakeFiles/ct_accel.dir/driver.cc.o.d"
  "/root/repo/src/accel/isa.cc" "src/accel/CMakeFiles/ct_accel.dir/isa.cc.o" "gcc" "src/accel/CMakeFiles/ct_accel.dir/isa.cc.o.d"
  "/root/repo/src/accel/pcie_peer.cc" "src/accel/CMakeFiles/ct_accel.dir/pcie_peer.cc.o" "gcc" "src/accel/CMakeFiles/ct_accel.dir/pcie_peer.cc.o.d"
  "/root/repo/src/accel/tcam.cc" "src/accel/CMakeFiles/ct_accel.dir/tcam.cc.o" "gcc" "src/accel/CMakeFiles/ct_accel.dir/tcam.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/contutto/CMakeFiles/ct_contutto.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ct_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/centaur/CMakeFiles/ct_centaur.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dmi/CMakeFiles/ct_dmi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
