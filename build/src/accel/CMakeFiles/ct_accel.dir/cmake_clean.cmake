file(REMOVE_RECURSE
  "CMakeFiles/ct_accel.dir/accelerators.cc.o"
  "CMakeFiles/ct_accel.dir/accelerators.cc.o.d"
  "CMakeFiles/ct_accel.dir/access_processor.cc.o"
  "CMakeFiles/ct_accel.dir/access_processor.cc.o.d"
  "CMakeFiles/ct_accel.dir/complex.cc.o"
  "CMakeFiles/ct_accel.dir/complex.cc.o.d"
  "CMakeFiles/ct_accel.dir/control_block.cc.o"
  "CMakeFiles/ct_accel.dir/control_block.cc.o.d"
  "CMakeFiles/ct_accel.dir/driver.cc.o"
  "CMakeFiles/ct_accel.dir/driver.cc.o.d"
  "CMakeFiles/ct_accel.dir/isa.cc.o"
  "CMakeFiles/ct_accel.dir/isa.cc.o.d"
  "CMakeFiles/ct_accel.dir/pcie_peer.cc.o"
  "CMakeFiles/ct_accel.dir/pcie_peer.cc.o.d"
  "CMakeFiles/ct_accel.dir/tcam.cc.o"
  "CMakeFiles/ct_accel.dir/tcam.cc.o.d"
  "libct_accel.a"
  "libct_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
