file(REMOVE_RECURSE
  "libct_accel.a"
)
