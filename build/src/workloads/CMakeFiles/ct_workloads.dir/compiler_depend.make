# Empty compiler generated dependencies file for ct_workloads.
# This may be replaced when dependencies are built.
