file(REMOVE_RECURSE
  "libct_workloads.a"
)
