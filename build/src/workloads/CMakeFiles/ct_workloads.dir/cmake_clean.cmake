file(REMOVE_RECURSE
  "CMakeFiles/ct_workloads.dir/db2.cc.o"
  "CMakeFiles/ct_workloads.dir/db2.cc.o.d"
  "CMakeFiles/ct_workloads.dir/spec.cc.o"
  "CMakeFiles/ct_workloads.dir/spec.cc.o.d"
  "CMakeFiles/ct_workloads.dir/sw_kernels.cc.o"
  "CMakeFiles/ct_workloads.dir/sw_kernels.cc.o.d"
  "libct_workloads.a"
  "libct_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
