file(REMOVE_RECURSE
  "libct_cpu.a"
)
