file(REMOVE_RECURSE
  "CMakeFiles/ct_cpu.dir/cache_hierarchy.cc.o"
  "CMakeFiles/ct_cpu.dir/cache_hierarchy.cc.o.d"
  "CMakeFiles/ct_cpu.dir/channel.cc.o"
  "CMakeFiles/ct_cpu.dir/channel.cc.o.d"
  "CMakeFiles/ct_cpu.dir/core_model.cc.o"
  "CMakeFiles/ct_cpu.dir/core_model.cc.o.d"
  "CMakeFiles/ct_cpu.dir/energy.cc.o"
  "CMakeFiles/ct_cpu.dir/energy.cc.o.d"
  "CMakeFiles/ct_cpu.dir/host_port.cc.o"
  "CMakeFiles/ct_cpu.dir/host_port.cc.o.d"
  "CMakeFiles/ct_cpu.dir/multi_slot.cc.o"
  "CMakeFiles/ct_cpu.dir/multi_slot.cc.o.d"
  "CMakeFiles/ct_cpu.dir/system.cc.o"
  "CMakeFiles/ct_cpu.dir/system.cc.o.d"
  "CMakeFiles/ct_cpu.dir/trace_replay.cc.o"
  "CMakeFiles/ct_cpu.dir/trace_replay.cc.o.d"
  "libct_cpu.a"
  "libct_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
