
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cache_hierarchy.cc" "src/cpu/CMakeFiles/ct_cpu.dir/cache_hierarchy.cc.o" "gcc" "src/cpu/CMakeFiles/ct_cpu.dir/cache_hierarchy.cc.o.d"
  "/root/repo/src/cpu/channel.cc" "src/cpu/CMakeFiles/ct_cpu.dir/channel.cc.o" "gcc" "src/cpu/CMakeFiles/ct_cpu.dir/channel.cc.o.d"
  "/root/repo/src/cpu/core_model.cc" "src/cpu/CMakeFiles/ct_cpu.dir/core_model.cc.o" "gcc" "src/cpu/CMakeFiles/ct_cpu.dir/core_model.cc.o.d"
  "/root/repo/src/cpu/energy.cc" "src/cpu/CMakeFiles/ct_cpu.dir/energy.cc.o" "gcc" "src/cpu/CMakeFiles/ct_cpu.dir/energy.cc.o.d"
  "/root/repo/src/cpu/host_port.cc" "src/cpu/CMakeFiles/ct_cpu.dir/host_port.cc.o" "gcc" "src/cpu/CMakeFiles/ct_cpu.dir/host_port.cc.o.d"
  "/root/repo/src/cpu/multi_slot.cc" "src/cpu/CMakeFiles/ct_cpu.dir/multi_slot.cc.o" "gcc" "src/cpu/CMakeFiles/ct_cpu.dir/multi_slot.cc.o.d"
  "/root/repo/src/cpu/system.cc" "src/cpu/CMakeFiles/ct_cpu.dir/system.cc.o" "gcc" "src/cpu/CMakeFiles/ct_cpu.dir/system.cc.o.d"
  "/root/repo/src/cpu/trace_replay.cc" "src/cpu/CMakeFiles/ct_cpu.dir/trace_replay.cc.o" "gcc" "src/cpu/CMakeFiles/ct_cpu.dir/trace_replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dmi/CMakeFiles/ct_dmi.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ct_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ct_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/centaur/CMakeFiles/ct_centaur.dir/DependInfo.cmake"
  "/root/repo/build/src/contutto/CMakeFiles/ct_contutto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
