# Empty dependencies file for ct_cpu.
# This may be replaced when dependencies are built.
