
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dmi/channel.cc" "src/dmi/CMakeFiles/ct_dmi.dir/channel.cc.o" "gcc" "src/dmi/CMakeFiles/ct_dmi.dir/channel.cc.o.d"
  "/root/repo/src/dmi/codec.cc" "src/dmi/CMakeFiles/ct_dmi.dir/codec.cc.o" "gcc" "src/dmi/CMakeFiles/ct_dmi.dir/codec.cc.o.d"
  "/root/repo/src/dmi/crc.cc" "src/dmi/CMakeFiles/ct_dmi.dir/crc.cc.o" "gcc" "src/dmi/CMakeFiles/ct_dmi.dir/crc.cc.o.d"
  "/root/repo/src/dmi/frame.cc" "src/dmi/CMakeFiles/ct_dmi.dir/frame.cc.o" "gcc" "src/dmi/CMakeFiles/ct_dmi.dir/frame.cc.o.d"
  "/root/repo/src/dmi/link.cc" "src/dmi/CMakeFiles/ct_dmi.dir/link.cc.o" "gcc" "src/dmi/CMakeFiles/ct_dmi.dir/link.cc.o.d"
  "/root/repo/src/dmi/training.cc" "src/dmi/CMakeFiles/ct_dmi.dir/training.cc.o" "gcc" "src/dmi/CMakeFiles/ct_dmi.dir/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
