file(REMOVE_RECURSE
  "libct_dmi.a"
)
