file(REMOVE_RECURSE
  "CMakeFiles/ct_dmi.dir/channel.cc.o"
  "CMakeFiles/ct_dmi.dir/channel.cc.o.d"
  "CMakeFiles/ct_dmi.dir/codec.cc.o"
  "CMakeFiles/ct_dmi.dir/codec.cc.o.d"
  "CMakeFiles/ct_dmi.dir/crc.cc.o"
  "CMakeFiles/ct_dmi.dir/crc.cc.o.d"
  "CMakeFiles/ct_dmi.dir/frame.cc.o"
  "CMakeFiles/ct_dmi.dir/frame.cc.o.d"
  "CMakeFiles/ct_dmi.dir/link.cc.o"
  "CMakeFiles/ct_dmi.dir/link.cc.o.d"
  "CMakeFiles/ct_dmi.dir/training.cc.o"
  "CMakeFiles/ct_dmi.dir/training.cc.o.d"
  "libct_dmi.a"
  "libct_dmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_dmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
