# Empty compiler generated dependencies file for ct_dmi.
# This may be replaced when dependencies are built.
