# Empty dependencies file for ct_mem.
# This may be replaced when dependencies are built.
