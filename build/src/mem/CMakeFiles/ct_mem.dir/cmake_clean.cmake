file(REMOVE_RECURSE
  "CMakeFiles/ct_mem.dir/ddr3_controller.cc.o"
  "CMakeFiles/ct_mem.dir/ddr3_controller.cc.o.d"
  "CMakeFiles/ct_mem.dir/device.cc.o"
  "CMakeFiles/ct_mem.dir/device.cc.o.d"
  "CMakeFiles/ct_mem.dir/mem_image.cc.o"
  "CMakeFiles/ct_mem.dir/mem_image.cc.o.d"
  "CMakeFiles/ct_mem.dir/spd.cc.o"
  "CMakeFiles/ct_mem.dir/spd.cc.o.d"
  "libct_mem.a"
  "libct_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
