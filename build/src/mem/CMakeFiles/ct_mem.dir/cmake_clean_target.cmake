file(REMOVE_RECURSE
  "libct_mem.a"
)
