# CMake generated Testfile for 
# Source directory: /root/repo/src/centaur
# Build directory: /root/repo/build/src/centaur
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
