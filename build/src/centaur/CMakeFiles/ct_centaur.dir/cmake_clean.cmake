file(REMOVE_RECURSE
  "CMakeFiles/ct_centaur.dir/centaur.cc.o"
  "CMakeFiles/ct_centaur.dir/centaur.cc.o.d"
  "libct_centaur.a"
  "libct_centaur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_centaur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
