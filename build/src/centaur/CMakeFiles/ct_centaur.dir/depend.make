# Empty dependencies file for ct_centaur.
# This may be replaced when dependencies are built.
