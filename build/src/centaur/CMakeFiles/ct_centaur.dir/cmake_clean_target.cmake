file(REMOVE_RECURSE
  "libct_centaur.a"
)
