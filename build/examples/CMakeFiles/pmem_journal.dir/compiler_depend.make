# Empty compiler generated dependencies file for pmem_journal.
# This may be replaced when dependencies are built.
