file(REMOVE_RECURSE
  "CMakeFiles/pmem_journal.dir/pmem_journal.cpp.o"
  "CMakeFiles/pmem_journal.dir/pmem_journal.cpp.o.d"
  "pmem_journal"
  "pmem_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmem_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
