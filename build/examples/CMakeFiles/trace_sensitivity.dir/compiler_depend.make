# Empty compiler generated dependencies file for trace_sensitivity.
# This may be replaced when dependencies are built.
