file(REMOVE_RECURSE
  "CMakeFiles/trace_sensitivity.dir/trace_sensitivity.cpp.o"
  "CMakeFiles/trace_sensitivity.dir/trace_sensitivity.cpp.o.d"
  "trace_sensitivity"
  "trace_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
