# Empty dependencies file for latency_sweep.
# This may be replaced when dependencies are built.
