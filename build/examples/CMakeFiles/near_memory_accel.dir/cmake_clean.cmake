file(REMOVE_RECURSE
  "CMakeFiles/near_memory_accel.dir/near_memory_accel.cpp.o"
  "CMakeFiles/near_memory_accel.dir/near_memory_accel.cpp.o.d"
  "near_memory_accel"
  "near_memory_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_memory_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
