# Empty compiler generated dependencies file for near_memory_accel.
# This may be replaced when dependencies are built.
