file(REMOVE_RECURSE
  "CMakeFiles/firmware_boot.dir/firmware_boot.cpp.o"
  "CMakeFiles/firmware_boot.dir/firmware_boot.cpp.o.d"
  "firmware_boot"
  "firmware_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
