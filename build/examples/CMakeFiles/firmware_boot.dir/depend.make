# Empty dependencies file for firmware_boot.
# This may be replaced when dependencies are built.
