file(REMOVE_RECURSE
  "CMakeFiles/error_injection.dir/error_injection.cpp.o"
  "CMakeFiles/error_injection.dir/error_injection.cpp.o.d"
  "error_injection"
  "error_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
