# Empty dependencies file for error_injection.
# This may be replaced when dependencies are built.
