# Empty dependencies file for route_lookup.
# This may be replaced when dependencies are built.
