file(REMOVE_RECURSE
  "CMakeFiles/route_lookup.dir/route_lookup.cpp.o"
  "CMakeFiles/route_lookup.dir/route_lookup.cpp.o.d"
  "route_lookup"
  "route_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
