/** @file Centaur baseline model tests. */

#include <gtest/gtest.h>

#include "cpu/system.hh"

using namespace contutto;
using namespace contutto::cpu;
using namespace contutto::dmi;

namespace
{

Power8System::Params
centaurSystem(centaur::CentaurModel::Config cfg)
{
    Power8System::Params p;
    p.buffer = BufferKind::centaur;
    p.centaurConfig = cfg;
    p.dimms = {DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}}};
    return p;
}

TEST(Centaur, ServesReadsAndWrites)
{
    Power8System sys(
        centaurSystem(centaur::CentaurModel::optimized()));
    ASSERT_TRUE(sys.train());

    CacheLine line;
    line.fill(0x42);
    sys.port().write(0x8000, line, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());
    bool ok = false;
    sys.port().read(0x8000, [&](const HostOpResult &r) {
        ok = true;
        EXPECT_EQ(r.data[10], 0x42);
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_TRUE(ok);
}

TEST(Centaur, CacheMakesRepeatedReadsFaster)
{
    Power8System sys(
        centaurSystem(centaur::CentaurModel::optimized()));
    ASSERT_TRUE(sys.train());
    auto *buf = sys.centaurBuffer();
    ASSERT_NE(buf, nullptr);

    Tick first = 0, second = 0;
    sys.port().read(0x100000, [&](const HostOpResult &r) {
        first = r.dataAt - r.issuedAt;
    });
    ASSERT_TRUE(sys.runUntilIdle());
    sys.port().read(0x100000, [&](const HostOpResult &r) {
        second = r.dataAt - r.issuedAt;
    });
    ASSERT_TRUE(sys.runUntilIdle());

    EXPECT_LT(second, first);
    EXPECT_GE(buf->centaurStats().cacheHits.value(), 1.0);
}

TEST(Centaur, PrefetchFillsNextLine)
{
    Power8System sys(
        centaurSystem(centaur::CentaurModel::optimized()));
    ASSERT_TRUE(sys.train());
    auto *buf = sys.centaurBuffer();

    sys.port().read(0x200000, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_GE(buf->centaurStats().prefetches.value(), 1.0);

    // The next line should now hit.
    Tick lat = 0;
    sys.port().read(0x200000 + 128, [&](const HostOpResult &r) {
        lat = r.dataAt - r.issuedAt;
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_GE(buf->centaurStats().cacheHits.value(), 1.0);
}

TEST(Centaur, ConfigsOrderLatencies)
{
    // The Table 2 knob presets must produce strictly increasing
    // memory latency.
    double lat[4];
    centaur::CentaurModel::Config cfgs[4] = {
        centaur::CentaurModel::optimized(),
        centaur::CentaurModel::balanced(),
        centaur::CentaurModel::conservative(),
        centaur::CentaurModel::slowest(),
    };
    for (int i = 0; i < 4; ++i) {
        Power8System sys(centaurSystem(cfgs[i]));
        ASSERT_TRUE(sys.train());
        lat[i] = sys.measureReadLatencyNs();
    }
    EXPECT_LT(lat[0], lat[1]);
    EXPECT_LT(lat[1], lat[2]);
    EXPECT_LT(lat[2], lat[3]);
}

TEST(Centaur, UnsupportedCommandsCompleteAsNoops)
{
    Power8System sys(
        centaurSystem(centaur::CentaurModel::optimized()));
    ASSERT_TRUE(sys.train());
    LogControl::warnings() = false;
    bool done = false;
    // The in-line accelerated ops are ConTutto-only FPGA logic; the
    // ASIC must still free the tag.
    CacheLine line{};
    sys.port().minStore(0x9000, line,
                        [&](const HostOpResult &) { done = true; });
    ASSERT_TRUE(sys.runUntilIdle());
    LogControl::warnings() = true;
    EXPECT_TRUE(done);
    EXPECT_EQ(
        sys.centaurBuffer()->centaurStats().unsupportedCommands
            .value(),
        1.0);
}

TEST(Centaur, FlushDrainsOlderWrites)
{
    Power8System sys(
        centaurSystem(centaur::CentaurModel::optimized()));
    ASSERT_TRUE(sys.train());

    // Fire a burst of writes and a flush right behind them: the
    // fence must not complete before every older write has reached
    // DDR, or the pmem durability story is a lie on the baseline.
    unsigned writes_done = 0;
    CacheLine line;
    line.fill(0x5c);
    for (unsigned i = 0; i < 8; ++i)
        sys.port().write(0x10000 + i * 128, line,
                         [&](const HostOpResult &) {
                             ++writes_done;
                         });
    bool flush_done = false;
    unsigned writes_at_flush = 0;
    sys.port().flush([&](const HostOpResult &) {
        flush_done = true;
        writes_at_flush = writes_done;
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_TRUE(flush_done);
    EXPECT_EQ(writes_at_flush, 8u);
    EXPECT_EQ(sys.centaurBuffer()->centaurStats().flushes.value(),
              1.0);
    EXPECT_EQ(sys.centaurBuffer()
                  ->centaurStats().unsupportedCommands.value(),
              0.0);
}

TEST(Centaur, ReadAfterWriteSeesNewData)
{
    Power8System sys(
        centaurSystem(centaur::CentaurModel::optimized()));
    ASSERT_TRUE(sys.train());

    // Warm the cache so the read would hit and try to pass the
    // write.
    sys.port().read(0x40000, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());

    CacheLine line;
    line.fill(0xD7);
    bool read_done = false;
    sys.port().write(0x40000, line, nullptr);
    // Issue the read immediately, without waiting for the write.
    sys.port().read(0x40000, [&](const HostOpResult &r) {
        read_done = true;
        EXPECT_EQ(r.data[3], 0xD7);
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_TRUE(read_done);
}

} // namespace
