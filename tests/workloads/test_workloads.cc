/** @file Workload model tests: SPEC profiles, DB2, sw kernels. */

#include <gtest/gtest.h>

#include "workloads/db2.hh"
#include "workloads/spec.hh"
#include "workloads/sw_kernels.hh"

using namespace contutto;
using namespace contutto::cpu;
using namespace contutto::workloads;

namespace
{

Power8System::Params
cardSystem()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

Power8System::Params
centaurSystem(centaur::CentaurModel::Config cfg =
                  centaur::CentaurModel::optimized())
{
    Power8System::Params p;
    p.buffer = BufferKind::centaur;
    p.centaurConfig = cfg;
    p.dimms = {DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}}};
    return p;
}

TEST(Spec, TwelveBenchmarksWithDistinctCharacter)
{
    auto profiles = specCint2006();
    ASSERT_EQ(profiles.size(), 12u);
    // mcf is the pointer-chasing, miss-heavy outlier.
    const auto *mcf = &profiles[3];
    EXPECT_EQ(mcf->name, "429.mcf");
    for (const auto &p : profiles) {
        EXPECT_GT(p.baseCpi, 0.0);
        if (p.name != "429.mcf")
            EXPECT_LE(p.missesPerKiloInstr,
                      mcf->missesPerKiloInstr);
    }
}

TEST(Spec, McfDegradesMoreThanPerlbenchOnConTutto)
{
    auto profiles = specCint2006();
    auto run_pair = [&](unsigned knob, const cpu::WorkloadProfile &p) {
        Power8System sys(cardSystem());
        EXPECT_TRUE(sys.train());
        sys.card()->mbs().setKnobPosition(knob);
        return runSpecProfile(sys, p, 120000).runtimeSeconds;
    };
    double perl_base = run_pair(0, profiles[0]);
    double perl_slow = run_pair(7, profiles[0]);
    double mcf_base = run_pair(0, profiles[3]);
    double mcf_slow = run_pair(7, profiles[3]);

    double perl_deg = perl_slow / perl_base;
    double mcf_deg = mcf_slow / mcf_base;
    EXPECT_LT(perl_deg, 1.10);
    EXPECT_GT(mcf_deg, perl_deg + 0.05);
}

TEST(Db2, LatencyInsensitivityMatchesTable2Shape)
{
    // Paper Table 2: 79 ns -> 249 ns (3.2x) costs < 8% runtime.
    Power8System fast(
        centaurSystem(centaur::CentaurModel::optimized()));
    ASSERT_TRUE(fast.train());
    auto r_fast = runDb2Blu(fast, 0, 300000);

    Power8System slow(
        centaurSystem(centaur::CentaurModel::slowest()));
    ASSERT_TRUE(slow.train());
    auto r_slow = runDb2Blu(slow, r_fast.syntheticSeconds, 300000);

    double degradation =
        r_slow.syntheticSeconds / r_fast.syntheticSeconds - 1.0;
    EXPECT_GT(degradation, 0.005);
    EXPECT_LT(degradation, 0.12);
    // Scaled presentation anchors at the paper's baseline runtime.
    EXPECT_NEAR(runDb2Blu(fast, r_fast.syntheticSeconds, 300000)
                    .scaledSeconds,
                db2BaselineSeconds, db2BaselineSeconds * 0.05);
}

TEST(SwKernels, MemcpyLandsInPaperClass)
{
    Power8System sys(centaurSystem());
    ASSERT_TRUE(sys.train());
    auto r = swMemcpy(sys, 2 * MiB);
    // Table 5 software memcpy: 3.2 GB/s.
    EXPECT_GT(r.bytesPerSecond, 2.5e9);
    EXPECT_LT(r.bytesPerSecond, 4.2e9);
}

TEST(SwKernels, MinMaxIsLatencyBound)
{
    Power8System sys(centaurSystem());
    ASSERT_TRUE(sys.train());
    auto r = swMinMax(sys, 2 * MiB);
    // Table 5 software min/max: 0.5 GB/s.
    EXPECT_GT(r.bytesPerSecond, 0.35e9);
    EXPECT_LT(r.bytesPerSecond, 0.75e9);
}

TEST(SwKernels, FftIsComputeBound)
{
    Power8System sys(centaurSystem());
    ASSERT_TRUE(sys.train());
    auto r = swFft(sys, 1024, 200);
    // Table 5 software FFT (from DATE'15): 0.68 Gsamples/s.
    EXPECT_GT(r.samplesPerSecond, 0.55e9);
    EXPECT_LT(r.samplesPerSecond, 0.85e9);
}

TEST(SwKernels, MemcpyMovesRealData)
{
    Power8System sys(centaurSystem());
    ASSERT_TRUE(sys.train());
    std::vector<std::uint8_t> blob(4096);
    for (std::size_t i = 0; i < blob.size(); ++i)
        blob[i] = std::uint8_t(i * 13);
    sys.functionalWrite(0, blob.size(), blob.data());

    swMemcpy(sys, 4096, 0, 1 * GiB / 4);

    std::vector<std::uint8_t> out(4096);
    sys.functionalRead(1 * GiB / 4, out.size(), out.data());
    EXPECT_EQ(out, blob);
}

} // namespace
