/** @file Avalon bus tests: decode, CDC timing, port pacing. */

#include <gtest/gtest.h>

#include <vector>

#include "bus/avalon.hh"
#include "mem/ddr3_controller.hh"

using namespace contutto;
using namespace contutto::bus;
using namespace contutto::mem;

namespace
{

/** Immediate-completion scratch slave recording accesses. */
class ScratchSlave : public AvalonSlave
{
  public:
    void
    access(const MemRequestPtr &req) override
    {
        accesses.push_back(req->addr);
        if (req->isWrite)
            last_write = req->data[0];
        else
            req->data.fill(0xAB);
        if (req->onDone)
            req->onDone(*req);
    }

    std::string slaveName() const override { return "scratch"; }

    std::vector<Addr> accesses;
    std::uint8_t last_write = 0;
};

struct BusRig
{
    EventQueue eq;
    ClockDomain fabric{"fabric", 4000};
    ClockDomain ddr{"ddr", 1500};
    stats::StatGroup root{"root"};
    AvalonBus bus;
    ScratchSlave scratch;

    explicit BusRig(AvalonBus::Params p = {})
        : bus("avalon", eq, fabric, &root, p)
    {
        bus.attach(scratch, AddressRange{0x10000, 0x10000});
    }
};

TEST(AvalonBus, DecodesToSlaveRelativeAddress)
{
    BusRig rig;
    auto &port = rig.bus.createPort("rd0");
    auto req = std::make_shared<MemRequest>();
    req->addr = 0x10080;
    bool done = false;
    req->onDone = [&](MemRequest &r) {
        done = true;
        EXPECT_EQ(r.data[0], 0xAB);
    };
    port.submit(req);
    rig.eq.run(microseconds(1));
    ASSERT_TRUE(done);
    ASSERT_EQ(rig.scratch.accesses.size(), 1u);
    EXPECT_EQ(rig.scratch.accesses[0], 0x80u);
}

TEST(AvalonBus, CdcLatencyAppliedBothWays)
{
    AvalonBus::Params p;
    p.cdcCycles = 4;
    BusRig rig(p);
    auto &port = rig.bus.createPort("rd0");
    auto req = std::make_shared<MemRequest>();
    req->addr = 0x10000;
    Tick done_at = 0;
    req->onDone = [&](MemRequest &) { done_at = rig.eq.curTick(); };
    port.submit(req);
    rig.eq.run(microseconds(1));
    // 2 x 4 cycles of CDC at 4 ns = at least 32 ns.
    EXPECT_GE(done_at, nanoseconds(32));
}

TEST(AvalonBus, UnmappedAccessCompletesWithZeros)
{
    BusRig rig;
    LogControl::warnings() = false;
    auto &port = rig.bus.createPort("rd0");
    auto req = std::make_shared<MemRequest>();
    req->addr = 0xDEAD0000;
    bool done = false;
    req->onDone = [&](MemRequest &r) {
        done = true;
        EXPECT_EQ(r.data[0], 0);
    };
    port.submit(req);
    rig.eq.run(microseconds(1));
    LogControl::warnings() = true;
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.bus.busStats().unmappedAccesses.value(), 1.0);
}

TEST(AvalonBus, PortPacesOneIssuePerCycle)
{
    BusRig rig;
    auto &port = rig.bus.createPort("wr0");
    std::vector<Tick> completions;
    for (int i = 0; i < 8; ++i) {
        auto req = std::make_shared<MemRequest>();
        req->addr = 0x10000 + Addr(i) * 128;
        req->onDone = [&](MemRequest &) {
            completions.push_back(rig.eq.curTick());
        };
        port.submit(req);
    }
    rig.eq.run(microseconds(1));
    ASSERT_EQ(completions.size(), 8u);
    // Completions spaced at least one fabric cycle apart.
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_GE(completions[i] - completions[i - 1], 4000u);
}

TEST(AvalonBus, TwoPortsIssueInParallel)
{
    BusRig rig;
    auto &p0 = rig.bus.createPort("rd0");
    auto &p1 = rig.bus.createPort("rd1");
    int done = 0;
    for (int i = 0; i < 2; ++i) {
        auto req = std::make_shared<MemRequest>();
        req->addr = 0x10000 + Addr(i) * 128;
        req->onDone = [&](MemRequest &) { ++done; };
        (i == 0 ? p0 : p1).submit(req);
    }
    rig.eq.run(microseconds(1));
    EXPECT_EQ(done, 2);
    // Both hit the slave in the same cycle: parallel datapaths.
    ASSERT_EQ(rig.scratch.accesses.size(), 2u);
}

TEST(AvalonBus, OverlappingMappingIsFatal)
{
    BusRig rig;
    ScratchSlave other;
    EXPECT_THROW(
        rig.bus.attach(other, AddressRange{0x18000, 0x10000}),
        FatalError);
}

TEST(AvalonBus, MemControllerSlaveEndToEnd)
{
    BusRig rig;
    DramDevice dev("dimm", rig.eq, rig.ddr, &rig.root, 64 * MiB);
    Ddr3Controller ctrl("mc", rig.eq, rig.ddr, &rig.root, {}, dev);
    MemControllerSlave slave(ctrl);
    rig.bus.attach(slave, AddressRange{0x40000000, 64 * MiB});

    auto &wr = rig.bus.createPort("wr");
    auto &rd = rig.bus.createPort("rd");

    auto wreq = std::make_shared<MemRequest>();
    wreq->addr = 0x40000000 + 0x1000;
    wreq->isWrite = true;
    wreq->data.fill(0x66);
    bool wrote = false;
    wreq->onDone = [&](MemRequest &) { wrote = true; };
    wr.submit(wreq);
    rig.eq.run(rig.eq.curTick() + microseconds(1));
    ASSERT_TRUE(wrote);

    auto rreq = std::make_shared<MemRequest>();
    rreq->addr = 0x40000000 + 0x1000;
    bool read_ok = false;
    rreq->onDone = [&](MemRequest &r) {
        read_ok = true;
        for (auto b : r.data)
            EXPECT_EQ(b, 0x66);
    };
    rd.submit(rreq);
    rig.eq.run(rig.eq.curTick() + microseconds(1));
    EXPECT_TRUE(read_ok);
}

} // namespace
