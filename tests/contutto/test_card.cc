/** @file ConTutto card tests: knob, resources, MBS behaviour. */

#include <gtest/gtest.h>

#include "contutto/resources.hh"
#include "cpu/system.hh"

using namespace contutto;
using namespace contutto::cpu;
using namespace contutto::fpga;

namespace
{

Power8System::Params
cardSystem()
{
    Power8System::Params p;
    p.buffer = BufferKind::contutto;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

TEST(Resources, BaseDesignReproducesTable1)
{
    ResourceModel m;
    m.addBaseDesign();
    // Paper Table 1: 136,856 ALMs (43%), 191,403 registers (30%),
    // 244 M20K (9%).
    EXPECT_EQ(m.totalAlms(), 136856u);
    EXPECT_EQ(m.totalRegisters(), 191403u);
    EXPECT_EQ(m.totalM20k(), 244u);
    EXPECT_NEAR(m.almUtilization(), 0.43, 0.005);
    EXPECT_NEAR(m.registerUtilization(), 0.30, 0.005);
    EXPECT_NEAR(m.m20kUtilization(), 0.09, 0.005);
    EXPECT_TRUE(m.fits());
}

TEST(Resources, OptionalBlocksLeaveRoom)
{
    // The paper's headroom claim: even with knob, inline ops, the
    // Access processor with accelerators, PCIe and TCAM, the design
    // still fits comfortably.
    ResourceModel m;
    m.addBaseDesign();
    m.addLatencyKnob();
    m.addInlineAccelEngines();
    m.addAccessProcessor(4);
    m.addPcie();
    m.addTcam();
    EXPECT_TRUE(m.fits());
    EXPECT_LT(m.almUtilization(), 0.85);
}

TEST(Resources, ReportMentionsEveryResource)
{
    ResourceModel m;
    m.addBaseDesign();
    std::string r = m.report();
    EXPECT_NE(r.find("ALMs"), std::string::npos);
    EXPECT_NE(r.find("136856"), std::string::npos);
    EXPECT_NE(r.find("43%"), std::string::npos);
}

TEST(Card, KnobAddsTwentyFourNanosecondsPerStep)
{
    Power8System sys(cardSystem());
    ASSERT_TRUE(sys.train());
    auto &mbs = sys.card()->mbs();

    // knobDelay is the designed one-way delta: 6 cycles * 4 ns.
    mbs.setKnobPosition(1);
    EXPECT_EQ(mbs.knobDelay(), nanoseconds(24));
    mbs.setKnobPosition(7);
    EXPECT_EQ(mbs.knobDelay(), nanoseconds(168));

    // And it shows up in end-to-end measured latency.
    mbs.setKnobPosition(0);
    double base = sys.measureReadLatencyNs();
    mbs.setKnobPosition(2);
    double knob2 = sys.measureReadLatencyNs();
    mbs.setKnobPosition(6);
    double knob6 = sys.measureReadLatencyNs();

    EXPECT_NEAR(knob2 - base, 48.0, 6.0);
    EXPECT_NEAR(knob6 - base, 144.0, 8.0);
}

TEST(Card, QuiescentAfterTraffic)
{
    Power8System sys(cardSystem());
    ASSERT_TRUE(sys.train());
    EXPECT_TRUE(sys.card()->quiescent());
    dmi::CacheLine line;
    line.fill(1);
    for (int i = 0; i < 20; ++i)
        sys.port().write(Addr(i) * 128, line, nullptr);
    EXPECT_FALSE(sys.port().idle());
    // Step until the card has actually accepted work.
    while (sys.card()->quiescent() && sys.eventq().step()) {
    }
    EXPECT_FALSE(sys.card()->quiescent());
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_TRUE(sys.card()->quiescent());
}

TEST(Card, EngineOccupancyTracksParallelism)
{
    Power8System sys(cardSystem());
    ASSERT_TRUE(sys.train());
    for (int i = 0; i < 64; ++i)
        sys.port().read(Addr(i) * 4096, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());
    const auto &occ = sys.card()->mbs().mbsStats().engineOccupancy;
    EXPECT_GT(occ.maximum(), 4.0); // real overlap happened
    EXPECT_LE(occ.maximum(), 32.0);
}

TEST(Card, SameLineOrderingPreserved)
{
    Power8System sys(cardSystem());
    ASSERT_TRUE(sys.train());

    // Write then read the same line back-to-back, repeatedly with
    // different values: the read must always see its predecessor.
    for (int round = 0; round < 10; ++round) {
        dmi::CacheLine line;
        line.fill(std::uint8_t(round + 1));
        sys.port().write(0x7000, line, nullptr);
        std::uint8_t expect = std::uint8_t(round + 1);
        sys.port().read(0x7000, [expect](const HostOpResult &r) {
            ASSERT_EQ(r.data[64], expect);
        });
    }
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_GT(sys.card()->mbs().mbsStats().addrOrderStalls.value(),
              0.0);
}

TEST(Card, MbsStatsCountCommandTypes)
{
    Power8System sys(cardSystem());
    ASSERT_TRUE(sys.train());
    dmi::CacheLine line{};
    sys.port().read(0, nullptr);
    sys.port().write(128, line, nullptr);
    dmi::ByteEnable en;
    en.set(0);
    sys.port().partialWrite(256, line, en, nullptr);
    sys.port().flush(nullptr);
    sys.port().minStore(384, line, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());
    const auto &s = sys.card()->mbs().mbsStats();
    EXPECT_EQ(s.reads.value(), 1.0);
    EXPECT_EQ(s.writes.value(), 1.0);
    EXPECT_EQ(s.rmws.value(), 1.0);
    EXPECT_EQ(s.flushes.value(), 1.0);
    EXPECT_EQ(s.inlineOps.value(), 1.0);
}

} // namespace
