/** @file MBS protocol properties: contiguity, flush, RMW fuzz. */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "cpu/system.hh"

using namespace contutto;
using namespace contutto::cpu;
using namespace contutto::dmi;

namespace
{

Power8System::Params
cardSystem()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

TEST(MbsProtocol, ReadDataFramesAreContiguousPerTag)
{
    // Paper 3.3(iii): "upstream data must be sent in contiguous
    // frames and hence both frames are assigned to a single command
    // engine". Observe the upstream frame stream at the host link
    // and verify each tag's four data chunks arrive back to back.
    Power8System sys(cardSystem());
    ASSERT_TRUE(sys.train());

    std::vector<UpFrame> stream;
    auto original = sys.hostLink().onFrame;
    sys.hostLink().onFrame = [&](const UpFrame &f) {
        stream.push_back(f);
        original(f);
    };

    int done = 0;
    for (int i = 0; i < 24; ++i)
        sys.port().read(Addr(i) * 4096,
                        [&](const HostOpResult &) { ++done; });
    ASSERT_TRUE(sys.runUntilIdle());
    ASSERT_EQ(done, 24);
    sys.hostLink().onFrame = original;

    // Scan: once a tag's readData run starts, its four chunks must
    // be adjacent (no other frame type, no other tag, in between).
    for (std::size_t i = 0; i < stream.size(); ++i) {
        if (stream[i].type != FrameType::readData
            || stream[i].subIndex != 0)
            continue;
        for (unsigned k = 1; k < upFramesPerLine; ++k) {
            ASSERT_LT(i + k, stream.size());
            const UpFrame &f = stream[i + k];
            ASSERT_EQ(f.type, FrameType::readData)
                << "non-data frame inside a data burst at " << i + k;
            ASSERT_EQ(f.tag, stream[i].tag)
                << "foreign tag inside a data burst at " << i + k;
            ASSERT_EQ(f.subIndex, k);
        }
        i += upFramesPerLine - 1;
    }
}

TEST(MbsProtocol, FlushMakesPriorWritesVisibleInMedia)
{
    Power8System sys(cardSystem());
    ASSERT_TRUE(sys.train());

    CacheLine line;
    line.fill(0xAD);
    for (int i = 0; i < 12; ++i)
        sys.port().write(Addr(i) * 128, line, nullptr);

    bool checked = false;
    sys.port().flush([&](const HostOpResult &) {
        // At flush completion every covered write is in the media
        // image, observable through the functional window.
        for (int i = 0; i < 12; ++i) {
            std::uint8_t b = 0;
            sys.functionalRead(Addr(i) * 128, 1, &b);
            EXPECT_EQ(b, 0xAD) << "line " << i;
        }
        checked = true;
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_TRUE(checked);
}

class MbsFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MbsFuzz, MixedRmwStreamMatchesReference)
{
    // Random mix of all command types against a reference image,
    // with plenty of same-line conflicts to stress the deferral
    // machinery; verify the full region at the end.
    Power8System sys(cardSystem());
    ASSERT_TRUE(sys.train());
    Rng rng(GetParam());

    constexpr unsigned lines = 24; // small: frequent conflicts
    std::vector<std::array<std::uint8_t, 128>> ref(lines);
    for (auto &l : ref)
        l.fill(0);

    auto laneOf = [](std::array<std::uint8_t, 128> &l,
                     unsigned lane) -> std::int64_t {
        std::int64_t v;
        std::memcpy(&v, l.data() + lane * 8, 8);
        return v;
    };
    auto setLane = [](std::array<std::uint8_t, 128> &l,
                      unsigned lane, std::int64_t v) {
        std::memcpy(l.data() + lane * 8, &v, 8);
    };

    for (int op = 0; op < 150; ++op) {
        unsigned li = unsigned(rng.below(lines));
        Addr addr = Addr(li) * 128;
        CacheLine data;
        for (auto &b : data)
            b = std::uint8_t(rng.next());

        switch (rng.below(4)) {
          case 0: { // write128
            std::memcpy(ref[li].data(), data.data(), 128);
            sys.port().write(addr, data, nullptr);
            break;
          }
          case 1: { // partialWrite
            ByteEnable en;
            for (int b = 0; b < 128; ++b)
                if (rng.chance(0.4))
                    en.set(b);
            for (int b = 0; b < 128; ++b)
                if (en[b])
                    ref[li][b] = data[b];
            sys.port().partialWrite(addr, data, en, nullptr);
            break;
          }
          case 2: { // minStore
            for (unsigned lane = 0; lane < 16; ++lane) {
                std::int64_t n;
                std::memcpy(&n, data.data() + lane * 8, 8);
                setLane(ref[li], lane,
                        std::min(laneOf(ref[li], lane), n));
            }
            sys.port().minStore(addr, data, nullptr);
            break;
          }
          default: { // condSwap on lane 0
            std::int64_t current = laneOf(ref[li], 0);
            std::int64_t expected =
                rng.chance(0.5) ? current
                                : current + 1; // sometimes fail
            std::int64_t desired = std::int64_t(rng.next());
            if (expected == current)
                setLane(ref[li], 0, desired);
            sys.port().condSwap(addr,
                                std::uint64_t(expected),
                                std::uint64_t(desired), nullptr);
            break;
          }
        }
        // Occasionally let everything drain; otherwise keep the
        // engines loaded with conflicting work.
        if (rng.chance(0.1))
            ASSERT_TRUE(sys.runUntilIdle());
    }
    ASSERT_TRUE(sys.runUntilIdle());

    for (unsigned li = 0; li < lines; ++li) {
        std::uint8_t out[128];
        sys.functionalRead(Addr(li) * 128, 128, out);
        ASSERT_EQ(0, std::memcmp(out, ref[li].data(), 128))
            << "line " << li;
    }
    // The conflict machinery actually fired.
    EXPECT_GT(sys.card()->mbs().mbsStats().addrOrderStalls.value(),
              0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbsFuzz,
                         ::testing::Values(101, 202, 303, 404, 505,
                                           606));

} // namespace
