/** @file SEC-DED codec and MemImage ECC sidecar tests. */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/system.hh"
#include "mem/mem_image.hh"
#include "ras/ecc.hh"
#include "sim/random.hh"

using namespace contutto;
using namespace contutto::ras;

namespace
{

TEST(EccCodec, ZeroWordHasZeroCheck)
{
    EXPECT_EQ(eccEncode(0), 0u);
    EccDecode d = eccDecode(0, 0);
    EXPECT_EQ(d.status, EccStatus::clean);
}

TEST(EccCodec, CleanRoundTrip)
{
    Rng rng(42);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t w = rng.next();
        EccDecode d = eccDecode(w, eccEncode(w));
        EXPECT_EQ(d.status, EccStatus::clean);
        EXPECT_EQ(d.data, w);
    }
}

TEST(EccCodec, EverySingleDataBitFlipIsCorrected)
{
    Rng rng(7);
    std::uint64_t w = rng.next();
    std::uint8_t check = eccEncode(w);
    for (unsigned bit = 0; bit < 64; ++bit) {
        EccDecode d = eccDecode(w ^ (std::uint64_t(1) << bit), check);
        EXPECT_EQ(d.status, EccStatus::corrected) << "bit " << bit;
        EXPECT_EQ(d.data, w) << "bit " << bit;
        EXPECT_EQ(d.check, check) << "bit " << bit;
    }
}

TEST(EccCodec, EverySingleCheckBitFlipIsCorrected)
{
    Rng rng(8);
    std::uint64_t w = rng.next();
    std::uint8_t check = eccEncode(w);
    for (unsigned bit = 0; bit < 8; ++bit) {
        EccDecode d =
            eccDecode(w, std::uint8_t(check ^ (1u << bit)));
        EXPECT_EQ(d.status, EccStatus::corrected) << "bit " << bit;
        EXPECT_EQ(d.data, w) << "bit " << bit;
        EXPECT_EQ(d.check, check) << "bit " << bit;
    }
}

TEST(EccCodec, DoubleBitFlipsAreDetectedNotMiscorrected)
{
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t w = rng.next();
        std::uint8_t check = eccEncode(w);
        unsigned a = unsigned(rng.below(64));
        unsigned b = unsigned(rng.below(64));
        if (a == b)
            continue;
        std::uint64_t bad = w ^ (std::uint64_t(1) << a)
            ^ (std::uint64_t(1) << b);
        EccDecode d = eccDecode(bad, check);
        EXPECT_EQ(d.status, EccStatus::uncorrectable)
            << "bits " << a << "," << b;
    }
}

TEST(EccCodec, DataPlusCheckDoubleFlipIsDetected)
{
    std::uint64_t w = 0x0123456789ABCDEFull;
    std::uint8_t check = eccEncode(w);
    for (unsigned db = 0; db < 64; db += 13) {
        for (unsigned cb = 0; cb < 8; ++cb) {
            EccDecode d =
                eccDecode(w ^ (std::uint64_t(1) << db),
                          std::uint8_t(check ^ (1u << cb)));
            EXPECT_EQ(d.status, EccStatus::uncorrectable)
                << "data bit " << db << " check bit " << cb;
        }
    }
}

TEST(MemImageEcc, CleanAfterWrites)
{
    mem::MemImage img(1 * MiB);
    std::vector<std::uint8_t> buf(4096);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = std::uint8_t(i * 7 + 3);
    img.write(0x1000, buf.size(), buf.data());
    // Partial, unaligned writes must keep the check bytes current.
    img.write(0x1003, 5, buf.data());
    img.write64(0x2000, 0xDEADBEEFCAFEF00Dull);

    mem::EccScan scan = img.verify(0, 64 * KiB);
    EXPECT_EQ(scan.corrected, 0u);
    EXPECT_EQ(scan.uncorrectable, 0u);
}

TEST(MemImageEcc, SingleFlipCorrectedInPlace)
{
    mem::MemImage img(1 * MiB);
    img.write64(0x4008, 0x1111222233334444ull);
    img.injectBitFlip(0x4008, 17);
    EXPECT_NE(img.read64(0x4008), 0x1111222233334444ull);

    mem::EccScan scan = img.verify(0x4000, 64);
    EXPECT_EQ(scan.corrected, 1u);
    EXPECT_EQ(scan.uncorrectable, 0u);
    EXPECT_EQ(img.read64(0x4008), 0x1111222233334444ull)
        << "verify must repair the stored word";
    EXPECT_EQ(img.correctedErrors(), 1u);

    // A second verify of the repaired line is clean.
    scan = img.verify(0x4000, 64);
    EXPECT_EQ(scan.corrected, 0u);
}

TEST(MemImageEcc, CheckBitFlipCorrected)
{
    mem::MemImage img(1 * MiB);
    img.write64(0x8000, 0xAAAA5555AAAA5555ull);
    img.injectCheckBitFlip(0x8000, 3);
    mem::EccScan scan = img.verify(0x8000, 8);
    EXPECT_EQ(scan.corrected, 1u);
    EXPECT_EQ(img.read64(0x8000), 0xAAAA5555AAAA5555ull);
    EXPECT_EQ(img.verify(0x8000, 8).corrected, 0u);
}

TEST(MemImageEcc, DoubleFlipIsUncorrectable)
{
    mem::MemImage img(1 * MiB);
    img.write64(0x6000, 0x123456789ABCDEF0ull);
    img.injectBitFlip(0x6000, 2);
    img.injectBitFlip(0x6000, 40);
    mem::EccScan scan = img.verify(0x6000, 8);
    EXPECT_EQ(scan.corrected, 0u);
    EXPECT_EQ(scan.uncorrectable, 1u);
    EXPECT_EQ(img.uncorrectableErrors(), 1u);
}

TEST(MemImageEcc, UntouchedPagesAreSkipped)
{
    mem::MemImage img(64 * MiB);
    img.write64(0, 5);
    // Verifying a huge range must not materialize pages.
    std::size_t pages = img.pagesTouched();
    mem::EccScan scan = img.verify(0, 64 * MiB);
    EXPECT_EQ(scan.corrected, 0u);
    EXPECT_EQ(scan.uncorrectable, 0u);
    EXPECT_EQ(img.pagesTouched(), pages);
}

TEST(MemImageEcc, RewriteClearsStaleFault)
{
    mem::MemImage img(1 * MiB);
    img.write64(0x3000, 1);
    img.injectBitFlip(0x3000, 0);
    img.injectBitFlip(0x3000, 1);
    // Overwriting the word refreshes the check byte: fault gone.
    img.write64(0x3000, 99);
    mem::EccScan scan = img.verify(0x3000, 8);
    EXPECT_EQ(scan.uncorrectable, 0u);
    EXPECT_EQ(img.read64(0x3000), 99u);
}

TEST(MemImageEcc, CopyFromPreservesCheckBytes)
{
    mem::MemImage a(1 * MiB);
    a.write64(0x100, 0xFEEDFACEull);
    a.injectBitFlip(0x100, 5);
    mem::MemImage b(1 * MiB);
    b.copyFrom(a);
    // The fault travels with the copy and is still correctable.
    mem::EccScan scan = b.verify(0x100, 8);
    EXPECT_EQ(scan.corrected, 1u);
    EXPECT_EQ(b.read64(0x100), 0xFEEDFACEull);
}

/** End to end: an uncorrectable DRAM fault poisons the host read. */
TEST(MemImageEcc, UncorrectableFaultPoisonsDemandRead)
{
    cpu::Power8System::Params p;
    p.dimms = {cpu::DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    cpu::Power8System sys(p);
    ASSERT_TRUE(sys.train());

    std::uint8_t pattern[dmi::cacheLineSize];
    for (unsigned i = 0; i < dmi::cacheLineSize; ++i)
        pattern[i] = std::uint8_t(i);
    sys.functionalWrite(0x10000, sizeof pattern, pattern);

    // Single-bit fault: corrected transparently, data intact.
    sys.dimm(0).image().injectBitFlip(0x10000, 9);
    bool done = false;
    cpu::HostOpResult got;
    sys.port().read(0x10000, [&](const cpu::HostOpResult &r) {
        got = r;
        done = true;
    });
    ASSERT_TRUE(sys.runUntilIdle());
    ASSERT_TRUE(done);
    EXPECT_FALSE(got.poisoned);
    EXPECT_EQ(got.data[0], 0);
    EXPECT_EQ(got.data[9], 9);
    EXPECT_GE(sys.dimm(0).image().correctedErrors(), 1u);

    // Double-bit fault in another line: poisoned end to end.
    sys.dimm(0).image().injectBitFlip(0x20000, 1);
    sys.dimm(0).image().injectBitFlip(0x20000, 2);
    done = false;
    sys.port().read(0x20000, [&](const cpu::HostOpResult &r) {
        got = r;
        done = true;
    });
    ASSERT_TRUE(sys.runUntilIdle());
    ASSERT_TRUE(done);
    EXPECT_TRUE(got.poisoned);
    EXPECT_EQ(sys.port().portStats().poisonedResponses.value(), 1.0);
    ASSERT_NE(sys.card(), nullptr);
    EXPECT_EQ(sys.card()->mbs().mbsStats().poisonedResponses.value(),
              1.0);
    // The FSP heard about it too.
    EXPECT_GE(sys.channel().errorLog().countAtLeast(
                  firmware::Severity::recoverable),
              std::size_t(1));
}

} // namespace
