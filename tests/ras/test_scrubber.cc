/** @file Patrol scrubber tests. */

#include <gtest/gtest.h>

#include <vector>

#include "firmware/error_log.hh"
#include "mem/mem_image.hh"
#include "ras/scrubber.hh"

using namespace contutto;
using namespace contutto::ras;

namespace
{

struct ScrubBench
{
    EventQueue eq;
    ClockDomain ddr{"ddr", 1500};
    stats::StatGroup root{"root"};
    mem::MemImage image{1 * MiB};
    firmware::ErrorLog log;
};

TEST(Scrubber, RepairsLatentSingleBitFaults)
{
    ScrubBench b;
    std::vector<std::uint8_t> ref(64 * KiB);
    for (std::size_t i = 0; i < ref.size(); ++i)
        ref[i] = std::uint8_t(i ^ (i >> 8));
    b.image.write(0, ref.size(), ref.data());

    const Addr faults[] = {0x40, 0x1238, 0x7FF8, 0xFFC0};
    for (Addr a : faults)
        b.image.injectBitFlip(a, unsigned(a % 64));

    PatrolScrubber::Params p;
    p.period = microseconds(1);
    p.linesPerBeat = 64;
    p.size = 64 * KiB;
    PatrolScrubber scrub("scrub", b.eq, b.ddr, &b.root, p, b.image);
    scrub.start();
    EXPECT_TRUE(scrub.running());

    // 1024 lines at 64/beat = 16 beats = one pass in 16 us.
    b.eq.run(microseconds(20));
    EXPECT_GE(scrub.passes(), 1u);
    EXPECT_EQ(scrub.scrubStats().scrubCorrected.value(), 4.0);
    EXPECT_EQ(scrub.scrubStats().scrubUncorrectable.value(), 0.0);

    std::vector<std::uint8_t> now(ref.size());
    b.image.read(0, now.size(), now.data());
    EXPECT_EQ(now, ref) << "all latent faults repaired in place";

    // Subsequent passes find nothing further.
    b.eq.run(microseconds(40));
    EXPECT_EQ(scrub.scrubStats().scrubCorrected.value(), 4.0);
}

TEST(Scrubber, ReportsUncorrectableLinesToErrorLog)
{
    ScrubBench b;
    b.image.write64(0x2000, 0x5555AAAA5555AAAAull);
    b.image.injectBitFlip(0x2000, 3);
    b.image.injectBitFlip(0x2000, 60);

    PatrolScrubber::Params p;
    p.period = microseconds(1);
    p.linesPerBeat = 64;
    p.size = 16 * KiB;
    PatrolScrubber scrub("scrub", b.eq, b.ddr, &b.root, p, b.image);
    scrub.attachErrorLog(&b.log);
    scrub.start();
    b.eq.run(microseconds(10));

    EXPECT_GE(scrub.scrubStats().scrubUncorrectable.value(), 1.0);
    EXPECT_GE(b.log.countAtLeast(firmware::Severity::recoverable),
              std::size_t(1));
}

TEST(Scrubber, StopHaltsAndStartResumes)
{
    ScrubBench b;
    b.image.write64(0, 1);
    PatrolScrubber::Params p;
    p.period = microseconds(1);
    p.linesPerBeat = 1;
    p.size = 64 * KiB;
    PatrolScrubber scrub("scrub", b.eq, b.ddr, &b.root, p, b.image);
    scrub.start();
    b.eq.run(microseconds(5));
    double lines = scrub.scrubStats().linesScrubbed.value();
    EXPECT_GT(lines, 0.0);

    scrub.stop();
    EXPECT_FALSE(scrub.running());
    b.eq.run(microseconds(10));
    EXPECT_EQ(scrub.scrubStats().linesScrubbed.value(), lines);

    scrub.start();
    b.eq.run(microseconds(15));
    EXPECT_GT(scrub.scrubStats().linesScrubbed.value(), lines);
}

TEST(Scrubber, ScrubsOnlyTheConfiguredWindow)
{
    ScrubBench b;
    b.image.write64(0x100, 7);        // outside the window
    b.image.injectBitFlip(0x100, 1);
    b.image.write64(0x10000, 9);      // inside the window
    b.image.injectBitFlip(0x10000, 2);

    PatrolScrubber::Params p;
    p.period = microseconds(1);
    p.linesPerBeat = 16;
    p.base = 0x10000;
    p.size = 4 * KiB;
    PatrolScrubber scrub("scrub", b.eq, b.ddr, &b.root, p, b.image);
    scrub.start();
    b.eq.run(microseconds(10));

    EXPECT_EQ(scrub.scrubStats().scrubCorrected.value(), 1.0);
    EXPECT_EQ(b.image.read64(0x10000), 9u);
    EXPECT_NE(b.image.read64(0x100), 7u)
        << "fault outside the window must be left alone";
}

} // namespace
