/**
 * @file
 * RAS soak test: a randomized multi-fault campaign against a live
 * ConTutto system. Five distinct fault kinds — DRAM bit flips, frame
 * corruptions, burst errors, frame drops and engine stalls — land
 * while a closed-loop workload writes and reads memory. The system
 * must make forward progress, return bit-exact data, leak no tags,
 * and account every injected fault; and the identical seed must
 * reproduce the identical counters.
 *
 * The scenario itself lives in ras::SoakCampaign (also driven at
 * scale by bench_ras_soak); this test pins down its invariants for
 * one seed and its reproducibility for another.
 */

#include <gtest/gtest.h>

#include "ras/soak_campaign.hh"

using namespace contutto;
using namespace contutto::ras;

namespace
{

TEST(RasSoak, MultiFaultCampaignKeepsIntegrityAndProgress)
{
    SoakCampaign::Spec spec;
    spec.seed = 20260806;
    SoakCampaign::Result c = SoakCampaign::run(spec);

    EXPECT_TRUE(c.trained);
    EXPECT_TRUE(c.progressed) << "workload must make progress";
    EXPECT_FALSE(c.cancelled);
    EXPECT_EQ(c.planned,
              std::uint64_t(spec.bitFlips + spec.frameCorruptions
                            + spec.frameDrops + spec.burstErrors
                            + spec.engineStalls));

    // Zero data-integrity violations.
    EXPECT_EQ(c.mismatches, 0u);
    EXPECT_EQ(c.failedOps, 0u);
    EXPECT_EQ(c.poisonedOps, 0u)
        << "single-bit faults must never poison";

    // RAS counters consistent with what was injected.
    EXPECT_EQ(c.applied, c.planned);
    EXPECT_EQ(c.corrected, std::uint64_t(spec.bitFlips))
        << "every injected flip corrected exactly once";
    EXPECT_EQ(c.uncorrectable, 0u);
    EXPECT_EQ(c.droppedCompletions,
              std::uint64_t(spec.engineStalls));
    EXPECT_EQ(c.cmdTimeouts, std::uint64_t(spec.engineStalls))
        << "each swallowed completion trips the watchdog once";
    EXPECT_EQ(c.cmdRetries, std::uint64_t(spec.engineStalls));
    EXPECT_EQ(c.tagsReclaimed, 0u)
        << "a single loss must recover by retry, not reclamation";
    EXPECT_EQ(c.framesDropped, std::uint64_t(spec.frameDrops));
    // Bursts may land on a frame that also took a forced corruption,
    // so the corrupted-frame count has a small overlap tolerance.
    EXPECT_GE(c.framesCorrupted,
              std::uint64_t(spec.frameCorruptions));
    EXPECT_LE(c.framesCorrupted,
              std::uint64_t(spec.frameCorruptions
                            + spec.burstErrors));
    // One replay can retransmit a whole window of damaged frames,
    // so replays <= injected errors; the watchdog must have seen
    // every one the links triggered.
    EXPECT_GE(c.linkReplays, 1u);
    EXPECT_EQ(c.replaysObserved, c.linkReplays);
    EXPECT_GE(c.scrubPasses, 4u);

    // Forward progress with nothing leaked; cold region repaired.
    EXPECT_TRUE(c.nothingLeaked) << "leaked tags or engines";
    EXPECT_TRUE(c.regionRepaired) << "not repaired by scrub";

    // The one-line verdict the campaign driver relies on agrees
    // with every assertion above.
    EXPECT_TRUE(c.healthy());
}

TEST(RasSoak, IdenticalSeedsReproduceIdenticalCounters)
{
    SoakCampaign::Spec spec;
    spec.seed = 424242;
    SoakCampaign::Result a = SoakCampaign::run(spec);
    SoakCampaign::Result b = SoakCampaign::run(spec);
    EXPECT_TRUE(a == b)
        << "same seed must reproduce the campaign bit for bit";
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(a.applied, a.planned);
}

TEST(RasSoak, CancelTokenStopsTheCampaignEarly)
{
    // A pre-raised token: the campaign must come back promptly with
    // the cancelled verdict instead of a (mis)diagnosis.
    SoakCampaign::Spec spec;
    spec.seed = 7;
    std::atomic<bool> cancel{true};
    SoakCampaign::Result r = SoakCampaign::run(spec, &cancel);
    EXPECT_TRUE(r.cancelled);
    EXPECT_FALSE(r.healthy());
}

} // namespace
