/**
 * @file
 * RAS soak test: a randomized multi-fault campaign against a live
 * ConTutto system. Five distinct fault kinds — DRAM bit flips, frame
 * corruptions, burst errors, frame drops and engine stalls — land
 * while a closed-loop workload writes and reads memory. The system
 * must make forward progress, return bit-exact data, leak no tags,
 * and account every injected fault; and the identical seed must
 * reproduce the identical counters.
 */

#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "cpu/system.hh"
#include "ras/fault_injector.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

constexpr unsigned kBitFlips = 24;
constexpr unsigned kFrameCorruptions = 6;
constexpr unsigned kFrameDrops = 4;
constexpr unsigned kBurstErrors = 2;
constexpr unsigned kEngineStalls = 3;
constexpr Addr kFaultBase = 4 * MiB; // per-DIMM local address
constexpr std::uint64_t kFaultSize = 64 * KiB;
constexpr unsigned kOps = 320; // write+read-verify pairs (region A)

/** Everything the reproducibility check compares. */
struct SoakCounters
{
    std::uint64_t planned = 0;
    std::uint64_t applied = 0;
    std::uint64_t corrected = 0;
    std::uint64_t uncorrectable = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t failedOps = 0;
    std::uint64_t poisonedOps = 0;
    std::uint64_t cmdTimeouts = 0;
    std::uint64_t cmdRetries = 0;
    std::uint64_t tagsReclaimed = 0;
    std::uint64_t droppedCompletions = 0;
    std::uint64_t framesCorrupted = 0;
    std::uint64_t framesDropped = 0;
    std::uint64_t linkReplays = 0;
    std::uint64_t replaysObserved = 0;
    std::uint64_t escalationLevel = 0;
    std::uint64_t scrubPasses = 0;

    auto
    tied() const
    {
        return std::tie(planned, applied, corrected, uncorrectable,
                        mismatches, failedOps, poisonedOps,
                        cmdTimeouts, cmdRetries, tagsReclaimed,
                        droppedCompletions, framesCorrupted,
                        framesDropped, linkReplays, replaysObserved,
                        escalationLevel, scrubPasses);
    }
    bool operator==(const SoakCounters &o) const
    {
        return tied() == o.tied();
    }
};

dmi::CacheLine
patternFor(unsigned op)
{
    dmi::CacheLine line;
    for (unsigned j = 0; j < line.size(); ++j)
        line[j] = std::uint8_t(op * 31 + j * 7 + 5);
    return line;
}

SoakCounters
runSoak(std::uint64_t seed)
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    p.seed = seed;
    // A tight watchdog so injected completion losses recover inside
    // the test's horizon (default is 20 us).
    p.cardParams.mbs.cmdTimeout = microseconds(5);
    p.ras.scrubEnabled = true;
    p.ras.scrub.period = microseconds(1);
    p.ras.scrub.linesPerBeat = 64;
    p.ras.scrub.base = kFaultBase;
    p.ras.scrub.size = kFaultSize;
    p.ras.watchdogEnabled = true;

    Power8System sys(p);
    EXPECT_TRUE(sys.train());

    // Region B: a cold reference region in each DIMM that only the
    // bit-flip faults and the patrol scrubber ever touch.
    std::vector<std::uint8_t> ref(kFaultSize);
    for (std::size_t i = 0; i < ref.size(); ++i)
        ref[i] = std::uint8_t(i * 13 + (i >> 9));
    for (unsigned d = 0; d < sys.numDimms(); ++d)
        sys.dimm(d).image().write(kFaultBase, ref.size(), ref.data());

    ras::FaultInjector inj("inj", sys.eventq(), sys.nestDomain(),
                           &sys, seed);
    inj.addMemory(&sys.dimm(0).image());
    inj.addMemory(&sys.dimm(1).image());
    inj.addChannel(&sys.downChannel());
    inj.addChannel(&sys.upChannel());
    inj.addMbs(&sys.card()->mbs());

    ras::FaultInjector::CampaignSpec spec;
    spec.start = sys.eventq().curTick();
    spec.duration = microseconds(100);
    spec.bitFlips = kBitFlips;
    spec.memBase = kFaultBase;
    spec.memSize = kFaultSize;
    spec.frameCorruptions = kFrameCorruptions;
    spec.frameDrops = kFrameDrops;
    spec.burstErrors = kBurstErrors;
    spec.engineStalls = kEngineStalls;
    auto plan = inj.runCampaign(spec);
    EXPECT_EQ(plan.size(), std::size_t(kBitFlips + kFrameCorruptions
                                       + kFrameDrops + kBurstErrors
                                       + kEngineStalls));

    // Region A workload: 8 closed loops, each writing a line then
    // reading it back and checking the data bit for bit.
    unsigned started = 0, completed = 0;
    SoakCounters c;
    c.planned = plan.size();
    std::function<void()> issueNext = [&] {
        if (started >= kOps)
            return;
        unsigned op = started++;
        Addr a = Addr(op) * dmi::cacheLineSize;
        dmi::CacheLine line = patternFor(op);
        sys.port().write(a, line, [&, a, op](const HostOpResult &wr) {
            if (wr.failed)
                ++c.failedOps;
            sys.port().read(a, [&, op](const HostOpResult &rr) {
                if (rr.failed)
                    ++c.failedOps;
                if (rr.poisoned)
                    ++c.poisonedOps;
                if (rr.data != patternFor(op))
                    ++c.mismatches;
                ++completed;
                issueNext();
            });
        });
    };
    for (int i = 0; i < 8; ++i)
        issueNext();
    while (completed < kOps && sys.eventq().step()) {
    }
    EXPECT_EQ(completed, kOps) << "workload must make progress";
    EXPECT_TRUE(sys.runUntilIdle());

    // Let the remainder of the campaign window elapse so every
    // planned fault has been applied.
    Tick campaign_end = spec.start + spec.duration + microseconds(1);
    if (sys.eventq().curTick() < campaign_end)
        sys.runFor(campaign_end - sys.eventq().curTick());
    EXPECT_EQ(inj.history().size(), plan.size());

    // Drain reads: enough traffic to consume any fault budget that
    // was armed after the workload went quiet (pending frame
    // corruptions/drops, swallowed completions), so the injected
    // counts reconcile exactly against the channel and MBS stats.
    for (int i = 0; i < 48; ++i)
        sys.port().read(Addr(i) * dmi::cacheLineSize,
                        [](const HostOpResult &) {});
    EXPECT_TRUE(sys.runUntilIdle());

    // Two further full scrub passes repair every latent bit flip.
    for (unsigned d = 0; d < sys.numDimms(); ++d) {
        ras::PatrolScrubber *scrub = sys.channel().scrubber(d);
        EXPECT_NE(scrub, nullptr) << d;
        if (scrub == nullptr)
            continue;
        std::uint64_t target = scrub->passes() + 2;
        while (scrub->passes() < target && sys.eventq().step()) {
        }
    }

    // Forward progress with nothing leaked.
    EXPECT_EQ(sys.port().inFlight(), 0u) << "leaked host tags";
    EXPECT_EQ(sys.port().queued(), 0u);
    EXPECT_EQ(sys.card()->mbs().activeEngines(), 0u)
        << "leaked command engines";

    // Data integrity: the cold region matches the reference again.
    std::vector<std::uint8_t> now(kFaultSize);
    for (unsigned d = 0; d < sys.numDimms(); ++d) {
        sys.dimm(d).image().read(kFaultBase, now.size(), now.data());
        EXPECT_EQ(now, ref) << "dimm " << d
                            << " not repaired by scrub";
    }

    const auto &mbs = sys.card()->mbs().mbsStats();
    const auto &down = sys.downChannel().channelStats();
    const auto &up = sys.upChannel().channelStats();
    c.applied = inj.history().size();
    c.corrected = sys.dimm(0).image().correctedErrors()
        + sys.dimm(1).image().correctedErrors();
    c.uncorrectable = sys.dimm(0).image().uncorrectableErrors()
        + sys.dimm(1).image().uncorrectableErrors();
    c.cmdTimeouts = std::uint64_t(mbs.cmdTimeouts.value());
    c.cmdRetries = std::uint64_t(mbs.cmdRetries.value());
    c.tagsReclaimed = std::uint64_t(mbs.tagsReclaimed.value());
    c.droppedCompletions =
        std::uint64_t(mbs.droppedCompletions.value());
    c.framesCorrupted = std::uint64_t(down.framesCorrupted.value()
                                      + up.framesCorrupted.value());
    c.framesDropped = std::uint64_t(down.framesDropped.value()
                                    + up.framesDropped.value());
    c.linkReplays = std::uint64_t(
        sys.hostLink().linkStats().replaysTriggered.value()
        + sys.card()->mbi().linkStats().replaysTriggered.value());
    ras::LinkWatchdog *dog = sys.channel().watchdog();
    if (dog != nullptr) {
        c.replaysObserved = std::uint64_t(
            dog->watchdogStats().replaysObserved.value());
        c.escalationLevel = dog->escalationLevel();
    }
    c.scrubPasses = sys.channel().scrubber(0)->passes()
        + sys.channel().scrubber(1)->passes();
    return c;
}

TEST(RasSoak, MultiFaultCampaignKeepsIntegrityAndProgress)
{
    SoakCounters c = runSoak(20260806);

    // Zero data-integrity violations.
    EXPECT_EQ(c.mismatches, 0u);
    EXPECT_EQ(c.failedOps, 0u);
    EXPECT_EQ(c.poisonedOps, 0u)
        << "single-bit faults must never poison";

    // RAS counters consistent with what was injected.
    EXPECT_EQ(c.applied, c.planned);
    EXPECT_EQ(c.corrected, std::uint64_t(kBitFlips))
        << "every injected flip corrected exactly once";
    EXPECT_EQ(c.uncorrectable, 0u);
    EXPECT_EQ(c.droppedCompletions, std::uint64_t(kEngineStalls));
    EXPECT_EQ(c.cmdTimeouts, std::uint64_t(kEngineStalls))
        << "each swallowed completion trips the watchdog once";
    EXPECT_EQ(c.cmdRetries, std::uint64_t(kEngineStalls));
    EXPECT_EQ(c.tagsReclaimed, 0u)
        << "a single loss must recover by retry, not reclamation";
    EXPECT_EQ(c.framesDropped, std::uint64_t(kFrameDrops));
    // Bursts may land on a frame that also took a forced corruption,
    // so the corrupted-frame count has a small overlap tolerance.
    EXPECT_GE(c.framesCorrupted, std::uint64_t(kFrameCorruptions));
    EXPECT_LE(c.framesCorrupted,
              std::uint64_t(kFrameCorruptions + kBurstErrors));
    // One replay can retransmit a whole window of damaged frames,
    // so replays <= injected errors; the watchdog must have seen
    // every one the links triggered.
    EXPECT_GE(c.linkReplays, 1u);
    EXPECT_EQ(c.replaysObserved, c.linkReplays);
    EXPECT_GE(c.scrubPasses, 4u);
}

TEST(RasSoak, IdenticalSeedsReproduceIdenticalCounters)
{
    SoakCounters a = runSoak(424242);
    SoakCounters b = runSoak(424242);
    EXPECT_TRUE(a == b)
        << "same seed must reproduce the campaign bit for bit";
    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(a.applied, a.planned);
}

} // namespace
