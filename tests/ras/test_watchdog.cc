/** @file Link watchdog escalation-ladder tests. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "firmware/error_log.hh"
#include "ras/watchdog.hh"
#include "sim/event.hh"

using namespace contutto;
using namespace contutto::ras;

namespace
{

struct WatchdogBench
{
    EventQueue eq;
    ClockDomain nest{"nest", 500};
    stats::StatGroup root{"root"};
    firmware::ErrorLog log;
    LinkWatchdog dog;
    std::vector<std::string> calls;

    explicit WatchdogBench(LinkWatchdog::Params p = {})
        : dog("dog", eq, nest, &root, p)
    {
        LinkWatchdog::Actions a;
        a.retrain = [this] { calls.push_back("retrain"); };
        a.spareLane = [this] { calls.push_back("spare"); };
        a.degrade = [this] { calls.push_back("degrade"); };
        a.offline = [this] { calls.push_back("offline"); };
        dog.setActions(std::move(a));
        dog.attachErrorLog(&log);
    }

    /** Feed @p n replays to the watchdog at tick @p t. */
    void
    replaysAt(Tick t, unsigned n)
    {
        OneShotEvent::schedule(eq, t, [this, n] {
            for (unsigned i = 0; i < n; ++i)
                dog.noteReplay();
        });
    }
};

TEST(Watchdog, SparseReplaysDoNotEscalate)
{
    LinkWatchdog::Params p;
    p.window = microseconds(2);
    p.replayThreshold = 4;
    WatchdogBench b(p);

    // One replay every 3 us: never 4 inside any 2 us window.
    for (int i = 0; i < 10; ++i)
        b.replaysAt(microseconds(3) * Tick(i + 1), 1);
    b.eq.run();

    EXPECT_EQ(b.dog.escalationLevel(), 0u);
    EXPECT_EQ(b.dog.watchdogStats().replaysObserved.value(), 10.0);
    EXPECT_EQ(b.dog.watchdogStats().stormsDetected.value(), 0.0);
    EXPECT_TRUE(b.calls.empty());
}

TEST(Watchdog, StormTriggersRetrainFirst)
{
    WatchdogBench b;
    b.replaysAt(microseconds(1), 4);
    b.eq.run();

    EXPECT_EQ(b.dog.escalationLevel(), 1u);
    EXPECT_EQ(b.dog.watchdogStats().retrains.value(), 1.0);
    ASSERT_EQ(b.calls.size(), 1u);
    EXPECT_EQ(b.calls[0], "retrain");
    // A retrain is informational, not a fault.
    EXPECT_EQ(b.log.countAtLeast(firmware::Severity::recoverable),
              std::size_t(0));
    EXPECT_EQ(b.log.size(), 1u);
}

TEST(Watchdog, CooldownGatesBackToBackEscalations)
{
    LinkWatchdog::Params p;
    p.cooldown = microseconds(10);
    WatchdogBench b(p);

    b.replaysAt(microseconds(1), 4); // storm -> level 1
    b.replaysAt(microseconds(2), 4); // within cooldown: detected only
    b.eq.run();

    EXPECT_EQ(b.dog.escalationLevel(), 1u);
    EXPECT_EQ(b.dog.watchdogStats().stormsDetected.value(), 2.0);
    ASSERT_EQ(b.calls.size(), 1u);
}

TEST(Watchdog, LadderRunsRetrainSpareDegradeOffline)
{
    LinkWatchdog::Params p;
    p.cooldown = microseconds(10);
    WatchdogBench b(p);

    // A storm every 20 us, each past the previous cooldown.
    for (int i = 0; i < 6; ++i)
        b.replaysAt(microseconds(20) * Tick(i + 1), 4);
    b.eq.run();

    EXPECT_EQ(b.dog.escalationLevel(), 4u);
    std::vector<std::string> want = {"retrain", "spare", "degrade",
                                     "offline"};
    EXPECT_EQ(b.calls, want);
    EXPECT_EQ(b.dog.watchdogStats().offlines.value(), 1.0);

    // Severities land in the FSP log: info, 2x recoverable, 1x
    // unrecoverable, and the component is deconfigured.
    EXPECT_EQ(b.log.size(), 4u);
    EXPECT_EQ(b.log.countAtLeast(firmware::Severity::recoverable),
              std::size_t(3));
    EXPECT_EQ(b.log.countAtLeast(firmware::Severity::unrecoverable),
              std::size_t(1));
    EXPECT_TRUE(b.log.isDeconfigured("dog"));
}

TEST(Watchdog, ResetDeclaresHealthy)
{
    WatchdogBench b;
    b.replaysAt(microseconds(1), 8);
    b.eq.run();
    EXPECT_GE(b.dog.escalationLevel(), 1u);

    b.dog.reset();
    EXPECT_EQ(b.dog.escalationLevel(), 0u);

    // The ladder restarts from retrain after a reset.
    b.calls.clear();
    b.replaysAt(b.eq.curTick() + microseconds(100), 4);
    b.eq.run();
    ASSERT_EQ(b.calls.size(), 1u);
    EXPECT_EQ(b.calls[0], "retrain");
}

} // namespace
