/** @file Fault-injection registry and campaign-planning tests. */

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "dmi/link.hh"
#include "mem/mem_image.hh"
#include "ras/fault_injector.hh"
#include "sim/event.hh"

using namespace contutto;
using namespace contutto::ras;

namespace
{

struct InjectorBench
{
    EventQueue eq;
    ClockDomain nest{"nest", 500};
    stats::StatGroup root{"root"};
    mem::MemImage image{4 * MiB};
    FaultInjector inj;

    explicit InjectorBench(std::uint64_t seed = 77)
        : inj("inj", eq, nest, &root, seed)
    {
        inj.addMemory(&image);
    }
};

bool
samePlan(const std::vector<FaultEvent> &a,
         const std::vector<FaultEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].when != b[i].when || a[i].kind != b[i].kind
            || a[i].target != b[i].target || a[i].addr != b[i].addr
            || a[i].bit != b[i].bit || a[i].count != b[i].count)
            return false;
    }
    return true;
}

TEST(FaultInjector, ImmediateBitFlipIsVisibleToVerify)
{
    InjectorBench b;
    b.image.write64(0x1000, 0xF0F0F0F0F0F0F0F0ull);

    FaultEvent ev;
    ev.kind = FaultKind::dramBitFlip;
    ev.addr = 0x1000;
    ev.bit = 12;
    b.inj.inject(ev);

    EXPECT_EQ(b.inj.injected(FaultKind::dramBitFlip), 1u);
    EXPECT_EQ(b.inj.history().size(), 1u);
    mem::EccScan scan = b.image.verify(0x1000, 8);
    EXPECT_EQ(scan.corrected, 1u);
    EXPECT_EQ(b.image.read64(0x1000), 0xF0F0F0F0F0F0F0F0ull);
}

TEST(FaultInjector, ScheduledFaultFiresAtItsTick)
{
    InjectorBench b;
    b.image.write64(0, 1);

    FaultEvent ev;
    ev.when = microseconds(5);
    ev.kind = FaultKind::dramBitFlip;
    ev.addr = 0;
    ev.bit = 0;
    b.inj.schedule(ev);

    b.eq.run(microseconds(4));
    EXPECT_EQ(b.inj.injected(FaultKind::dramBitFlip), 0u);
    b.eq.run(microseconds(6));
    EXPECT_EQ(b.inj.injected(FaultKind::dramBitFlip), 1u);
}

TEST(FaultInjector, CampaignIsDeterministicPerSeed)
{
    FaultInjector::CampaignSpec spec;
    spec.duration = microseconds(50);
    spec.bitFlips = 16;
    spec.memBase = 0x10000;
    spec.memSize = 64 * KiB;

    InjectorBench a(123), b(123), c(456);
    auto pa = a.inj.planCampaign(spec);
    auto pb = b.inj.planCampaign(spec);
    auto pc = c.inj.planCampaign(spec);

    EXPECT_TRUE(samePlan(pa, pb))
        << "same seed and spec must give the identical plan";
    EXPECT_FALSE(samePlan(pa, pc))
        << "a different seed should shuffle the plan";
}

TEST(FaultInjector, CampaignFlipsDistinctWordsInsideTheRegion)
{
    InjectorBench b(99);
    FaultInjector::CampaignSpec spec;
    spec.duration = microseconds(10);
    spec.bitFlips = 64;
    spec.memBase = 0x8000;
    spec.memSize = 4 * KiB; // 512 words for 64 flips
    auto plan = b.inj.planCampaign(spec);

    ASSERT_EQ(plan.size(), 64u);
    std::set<std::pair<unsigned, Addr>> words;
    Tick last = 0;
    for (const FaultEvent &ev : plan) {
        EXPECT_EQ(ev.kind, FaultKind::dramBitFlip);
        EXPECT_GE(ev.addr, spec.memBase);
        EXPECT_LT(ev.addr, spec.memBase + spec.memSize);
        EXPECT_EQ(ev.addr % 8, 0u);
        EXPECT_LT(ev.bit, 64u);
        EXPECT_LE(ev.when, spec.start + spec.duration);
        EXPECT_GE(ev.when, last) << "plan must be time sorted";
        last = ev.when;
        words.insert({ev.target, ev.addr});
    }
    EXPECT_EQ(words.size(), 64u) << "every flip in a distinct word";
}

TEST(FaultInjector, CampaignBitFlipsAllStayCorrectable)
{
    InjectorBench b(7);
    // Populate the region so pages exist and hold known data.
    for (Addr a = 0; a < 64 * KiB; a += 8)
        b.image.write64(a, a * 0x9E3779B97F4A7C15ull);

    FaultInjector::CampaignSpec spec;
    spec.duration = microseconds(20);
    spec.bitFlips = 32;
    spec.memSize = 64 * KiB;
    b.inj.runCampaign(spec);
    b.eq.run();

    EXPECT_EQ(b.inj.injected(FaultKind::dramBitFlip), 32u);
    mem::EccScan scan = b.image.verify(0, 64 * KiB);
    EXPECT_EQ(scan.corrected, 32u)
        << "distinct words keep every fault single-bit";
    EXPECT_EQ(scan.uncorrectable, 0u);
    for (Addr a = 0; a < 64 * KiB; a += 8)
        ASSERT_EQ(b.image.read64(a), a * 0x9E3779B97F4A7C15ull);
}

/** A scriptable power target that records what it was told. */
struct FakeDomain : PowerTarget
{
    unsigned cuts = 0;
    unsigned restores = 0;
    std::vector<Tick> dips;

    void powerCut() override { ++cuts; }
    void powerRestore() override { ++restores; }
    void brownout(Tick dip) override { dips.push_back(dip); }
};

TEST(FaultInjector, PowerCampaignPairsEveryCutWithALaterRestore)
{
    InjectorBench b(31);
    FakeDomain dom;
    b.inj.addPowerTarget(&dom);

    FaultInjector::CampaignSpec spec;
    spec.duration = microseconds(200);
    spec.powerCuts = 4;
    spec.outageMin = microseconds(10);
    spec.outageMax = microseconds(40);
    spec.brownouts = 3;
    spec.brownoutMin = microseconds(1);
    spec.brownoutMax = microseconds(5);
    auto plan = b.inj.planCampaign(spec);

    // Pair cuts and restores per target in plan order; every cut
    // must have a restore after a bounded outage.
    std::vector<Tick> cut_times;
    unsigned cuts = 0, restores = 0, dips = 0;
    for (const FaultEvent &ev : plan) {
        switch (ev.kind) {
          case FaultKind::powerCut:
            ++cuts;
            cut_times.push_back(ev.when);
            break;
          case FaultKind::powerRestore:
            ++restores;
            break;
          case FaultKind::brownout:
            ++dips;
            EXPECT_GE(ev.duration, spec.brownoutMin);
            EXPECT_LE(ev.duration, spec.brownoutMax);
            break;
          default:
            ADD_FAILURE() << "unexpected kind in plan";
        }
    }
    EXPECT_EQ(cuts, 4u);
    EXPECT_EQ(restores, 4u);
    EXPECT_EQ(dips, 3u);
    for (Tick t : cut_times)
        EXPECT_LE(t, spec.start + spec.duration);

    // Same seed, same spec: identical power schedule.
    InjectorBench b2(31);
    FakeDomain dom2;
    b2.inj.addPowerTarget(&dom2);
    EXPECT_TRUE(samePlan(plan, b2.inj.planCampaign(spec)));
}

TEST(FaultInjector, PowerFaultsReachTheTargetAndCount)
{
    InjectorBench b(13);
    FakeDomain dom;
    b.inj.addPowerTarget(&dom);

    FaultInjector::CampaignSpec spec;
    spec.duration = microseconds(100);
    spec.powerCuts = 2;
    spec.brownouts = 1;
    b.inj.runCampaign(spec);
    b.eq.run();

    EXPECT_EQ(dom.cuts, 2u);
    EXPECT_EQ(dom.restores, 2u);
    ASSERT_EQ(dom.dips.size(), 1u);
    EXPECT_GE(dom.dips[0], spec.brownoutMin);
    EXPECT_LE(dom.dips[0], spec.brownoutMax);
    EXPECT_EQ(b.inj.injected(FaultKind::powerCut), 2u);
    EXPECT_EQ(b.inj.injected(FaultKind::powerRestore), 2u);
    EXPECT_EQ(b.inj.injected(FaultKind::brownout), 1u);
    EXPECT_EQ(b.inj.injectorStats().powerCuts.value(), 2.0);
    EXPECT_EQ(b.inj.injectorStats().domainRestores.value(), 2.0);
    EXPECT_EQ(b.inj.injectorStats().brownouts.value(), 1.0);
}

TEST(FaultInjector, ChannelFaultsRideTheRealLink)
{
    InjectorBench b;
    ClockDomain fabric{"fabric", 4000};
    dmi::DmiChannel down("down", b.eq, fabric, &b.root,
                         dmi::DmiChannel::Params{14, 125,
                                                 nanoseconds(1), 0.0,
                                                 11});
    dmi::DmiChannel up("up", b.eq, fabric, &b.root,
                       dmi::DmiChannel::Params{21, 125, nanoseconds(1),
                                               0.0, 12});
    dmi::HostLink host("host", b.eq, b.nest, &b.root, {}, down, up);
    dmi::BufferLink buffer("buffer", b.eq, fabric, &b.root, {}, up,
                           down);
    unsigned idx = b.inj.addChannel(&down);

    std::vector<std::uint8_t> tags;
    buffer.onFrame =
        [&](const dmi::DownFrame &f) { tags.push_back(f.tag); };

    FaultEvent corrupt;
    corrupt.kind = FaultKind::frameCorrupt;
    corrupt.target = idx;
    b.inj.inject(corrupt);
    FaultEvent drop;
    drop.kind = FaultKind::frameDrop;
    drop.target = idx;
    drop.when = microseconds(10);
    b.inj.schedule(drop);

    for (std::uint8_t t = 0; t < 3; ++t) {
        OneShotEvent::schedule(b.eq, microseconds(10) * Tick(t), [&,
                                                                  t] {
            dmi::DownFrame f;
            f.type = dmi::FrameType::command;
            f.cmdType = dmi::CmdType::read128;
            f.tag = t;
            host.sendFrame(f);
        });
    }
    b.eq.run(microseconds(40));

    // Both injected faults were absorbed by the replay protocol.
    ASSERT_EQ(tags.size(), 3u);
    for (std::uint8_t t = 0; t < 3; ++t)
        EXPECT_EQ(tags[t], t);
    EXPECT_EQ(down.channelStats().framesCorrupted.value(), 1.0);
    EXPECT_GE(down.channelStats().framesDropped.value(), 1.0);
    EXPECT_EQ(b.inj.injected(FaultKind::frameCorrupt), 1u);
    EXPECT_EQ(b.inj.injected(FaultKind::frameDrop), 1u);
    EXPECT_GE(host.linkStats().replaysTriggered.value(), 2.0);
}

} // namespace
