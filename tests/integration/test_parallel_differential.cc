/**
 * @file
 * The parallel-engine differential harness: the N-thread sharded run
 * must be *bit-identical* to the serial fallback, on the full model
 * stack, under fault injection.
 *
 * Two idioms are proven separately:
 *
 *  - Partitioned system: a mixed ConTutto/CDIMM socket sharded one
 *    channel per shard, soaked with per-channel fault campaigns plus
 *    a cross-shard rotating workload. Serial and parallel executions
 *    must produce byte-identical stats-JSON trees, identical FSP
 *    error-log contents, and the same final tick — per seed, at 2
 *    and at 4 shards.
 *
 *  - Task farm: seeded crash-recovery campaigns distributed over
 *    worker threads via ShardedExecutor::runTasks. Every seed's
 *    Result must be identical whether the farm ran on one thread or
 *    four.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <vector>

#include "cpu/multi_slot.hh"
#include "ras/fault_injector.hh"
#include "sim/telemetry.hh"
#include "storage/crash_campaign.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

constexpr unsigned kChannelOps = 48; ///< per-channel closed loop.
constexpr unsigned kRotateOps = 32;  ///< cross-shard rotating loop.
constexpr Addr kFaultBase = 2 * MiB;
constexpr std::uint64_t kFaultSize = 32 * KiB;

/** Everything one campaign run produces; compared byte for byte. */
struct DiffResult
{
    std::string statsJson;
    std::vector<std::string> errorLogs;
    Tick endTick = 0;
    std::uint64_t faultsApplied = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t completed = 0;

    bool
    operator==(const DiffResult &o) const
    {
        return statsJson == o.statsJson && errorLogs == o.errorLogs
            && endTick == o.endTick
            && faultsApplied == o.faultsApplied
            && mismatches == o.mismatches && completed == o.completed;
    }
};

std::string
serializeLog(const firmware::ErrorLog &log)
{
    std::ostringstream os;
    for (const auto &e : log.entries())
        os << e.when << '|' << e.component << '|'
           << int(e.severity) << '|' << e.message << '\n';
    os << "overflow=" << log.overflowCount() << '\n';
    return os.str();
}

dmi::CacheLine
patternFor(unsigned op)
{
    dmi::CacheLine line;
    for (unsigned j = 0; j < line.size(); ++j)
        line[j] = std::uint8_t(op * 29 + j * 11 + 3);
    return line;
}

/** Mixed socket: ConTutto in 0 and 2, CDIMMs in 4 and 5. */
MultiSlotSystem::Params
diffSocket(std::uint64_t seed, unsigned shards, bool parallel)
{
    MultiSlotSystem::Params p;
    for (unsigned s = 0; s < MultiSlotSystem::numSlots; ++s)
        p.slots[s].kind = SlotKind::empty;
    for (unsigned s : {0u, 2u}) {
        p.slots[s].kind = SlotKind::contutto;
        p.slots[s].channel.cardParams.mbs.cmdTimeout =
            microseconds(5);
    }
    for (unsigned s : {4u, 5u})
        p.slots[s].kind = SlotKind::cdimm;
    for (unsigned s : {0u, 2u, 4u, 5u}) {
        p.slots[s].channel.seed = seed;
        p.slots[s].channel.dimms = {
            DimmSpec{mem::MemTech::dram, 64 * MiB, {}, {}},
            DimmSpec{mem::MemTech::dram, 64 * MiB, {}, {}}};
    }
    p.shards = shards;
    p.parallelExec = parallel;
    return p;
}

/**
 * One full soak: train, inject per-channel fault campaigns, run a
 * shard-local closed loop on every channel plus a rotating loop
 * whose every hop crosses shards, drain, and snapshot everything
 * observable.
 */
DiffResult
runShardedSoak(std::uint64_t seed, unsigned shards, bool parallel)
{
    MultiSlotSystem socket(diffSocket(seed, shards, parallel));
    EXPECT_TRUE(socket.trainAll());
    const unsigned nch = socket.populatedChannels();

    // One injector per channel, living on that channel's shard
    // queue so every fault application is shard-local.
    std::vector<std::unique_ptr<ras::FaultInjector>> injectors;
    Tick campaignEnd = 0;
    for (unsigned c = 0; c < nch; ++c) {
        MemoryChannel &ch = socket.channel(c);
        auto inj = std::make_unique<ras::FaultInjector>(
            "inj" + std::to_string(c), socket.channelQueue(c),
            socket.clocks().nest, &socket, seed + c * 7919);
        inj->addMemory(&ch.dimm(0).image());
        inj->addMemory(&ch.dimm(1).image());
        inj->addChannel(&ch.downChannel());
        inj->addChannel(&ch.upChannel());
        const bool contutto = ch.card() != nullptr;
        if (contutto)
            inj->addMbs(&ch.card()->mbs());

        ras::FaultInjector::CampaignSpec spec;
        spec.start = socket.channelQueue(c).curTick();
        spec.duration = microseconds(60);
        spec.bitFlips = 8;
        spec.memBase = kFaultBase;
        spec.memSize = kFaultSize;
        spec.frameCorruptions = 3;
        spec.frameDrops = 2;
        spec.burstErrors = 1;
        spec.engineStalls = contutto ? 1 : 0;
        auto plan = inj->runCampaign(spec);
        EXPECT_FALSE(plan.empty());
        campaignEnd = std::max(campaignEnd,
                               spec.start + spec.duration
                                   + microseconds(1));
        injectors.push_back(std::move(inj));
    }

    DiffResult res;

    // Shard-local closed loops: write a line, read it back,
    // verify, repeat. Addresses stride by the channel count so a
    // loop never leaves its channel.
    std::vector<unsigned> started(nch, 0), completed(nch, 0);
    std::vector<std::uint64_t> mism(nch, 0);
    std::vector<std::function<void()>> loops(nch);
    for (unsigned c = 0; c < nch; ++c) {
        loops[c] = [&, c] {
            if (started[c] >= kChannelOps)
                return;
            unsigned op = started[c]++;
            Addr a = Addr(op * nch + c) * dmi::cacheLineSize;
            dmi::CacheLine line = patternFor(op * 5 + c);
            socket.write(a, line, [&, a, op, c](const HostOpResult &) {
                socket.read(a, [&, op, c](const HostOpResult &r) {
                    if (r.data != patternFor(op * 5 + c))
                        ++mism[c];
                    ++completed[c];
                    loops[c]();
                });
            });
        };
        for (int k = 0; k < 2; ++k)
            loops[c]();
    }

    // The rotating loop: consecutive lines interleave across the
    // channels, so every next op is issued from a foreign shard's
    // completion context and crosses via the mailboxes.
    unsigned rotStarted = 0, rotCompleted = 0;
    std::function<void()> rotate = [&] {
        if (rotStarted >= kRotateOps)
            return;
        unsigned op = rotStarted++;
        Addr a = Addr(op) * dmi::cacheLineSize + 16 * MiB;
        dmi::CacheLine line = patternFor(1000 + op);
        socket.write(a, line, [&, a, op](const HostOpResult &) {
            socket.read(a, [&, op](const HostOpResult &r) {
                if (r.data != patternFor(1000 + op))
                    ++res.mismatches;
                ++rotCompleted;
                rotate();
            });
        });
    };
    rotate();

    EXPECT_TRUE(socket.runUntilIdle(milliseconds(5)));
    for (unsigned c = 0; c < nch; ++c) {
        EXPECT_EQ(completed[c], kChannelOps) << "channel " << c;
        res.mismatches += mism[c];
        res.completed += completed[c];
    }
    EXPECT_EQ(rotCompleted, kRotateOps);
    res.completed += rotCompleted;

    // Let every campaign window elapse so all faults have landed,
    // then drain reads to consume any still-armed frame faults.
    if (socket.sharded())
        socket.executor()->run(campaignEnd);
    for (unsigned c = 0; c < nch; ++c)
        EXPECT_EQ(injectors[c]->history().size(),
                  socket.channel(c).card() ? 15u : 14u)
            << "channel " << c;
    std::vector<std::function<void()>> drains(nch);
    std::vector<unsigned> drained(nch, 0);
    for (unsigned c = 0; c < nch; ++c) {
        drains[c] = [&, c] {
            if (drained[c] >= 12)
                return;
            Addr a = Addr(drained[c] * nch + c) * dmi::cacheLineSize;
            ++drained[c];
            socket.read(a,
                        [&, c](const HostOpResult &) { drains[c](); });
        };
        drains[c]();
    }
    EXPECT_TRUE(socket.runUntilIdle(milliseconds(5)));

    for (unsigned c = 0; c < nch; ++c)
        res.faultsApplied += injectors[c]->history().size();

    // The observable universe: the socket's entire stats tree (all
    // channels, per-shard queues, the executor, the injectors), the
    // FSP logs, and where simulated time ended up.
    std::ostringstream os;
    stats::toJson(socket, os);
    res.statsJson = os.str();
    EXPECT_TRUE(telemetry::jsonLint(res.statsJson));
    for (unsigned c = 0; c < nch; ++c)
        res.errorLogs.push_back(
            serializeLog(socket.channel(c).errorLog()));
    res.endTick = socket.curTick();
    return res;
}

class ParallelDifferential
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ParallelDifferential, ShardedSoakSerialVsParallelBitIdentical)
{
    const std::uint64_t seed = GetParam();
    for (unsigned shards : {2u, 4u}) {
        DiffResult serial = runShardedSoak(seed, shards, false);
        DiffResult parallel = runShardedSoak(seed, shards, true);

        // Identical, byte for byte — stats tree first because its
        // diff localizes a divergence to one component.
        EXPECT_EQ(serial.statsJson, parallel.statsJson)
            << "seed " << seed << " shards " << shards;
        ASSERT_EQ(serial.errorLogs.size(), parallel.errorLogs.size());
        for (std::size_t c = 0; c < serial.errorLogs.size(); ++c)
            EXPECT_EQ(serial.errorLogs[c], parallel.errorLogs[c])
                << "seed " << seed << " shards " << shards
                << " channel " << c;
        EXPECT_EQ(serial.endTick, parallel.endTick);
        EXPECT_TRUE(serial == parallel);

        // And the run itself was healthy: everything completed,
        // every injected fault survived as corrected, not as data
        // corruption.
        EXPECT_EQ(serial.mismatches, 0u);
        EXPECT_EQ(serial.completed,
                  4 * kChannelOps + kRotateOps);
        EXPECT_EQ(serial.faultsApplied, 2 * 15u + 2 * 14u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferential,
                         ::testing::Values(20260806ULL, 424242ULL));

TEST(ParallelDifferential, CrashCampaignFarmIsThreadCountInvariant)
{
    using storage::CrashRecoveryCampaign;
    const std::vector<std::uint64_t> seeds{7, 11, 42, 1234};

    auto farm = [&](unsigned shards,
                    sim::ShardedExecutor::Mode mode) {
        std::vector<CrashRecoveryCampaign::Result> results(
            seeds.size());
        std::vector<std::function<void()>> tasks;
        for (std::size_t i = 0; i < seeds.size(); ++i)
            tasks.push_back([&results, &seeds, i] {
                CrashRecoveryCampaign::Spec s;
                s.seed = seeds[i];
                s.powerCuts = 2;
                s.regionBlocks = 24;
                s.queueDepth = 3;
                s.longOutageEvery = 2;
                s.brownouts = 1;
                s.dimmCapacity = 32 * MiB;
                results[i] = CrashRecoveryCampaign(s).run();
            });
        sim::ShardedExecutor::runTasks(shards, mode, tasks);
        return results;
    };

    auto serial = farm(1, sim::ShardedExecutor::Mode::serial);
    auto parallel = farm(4, sim::ShardedExecutor::Mode::parallel);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i] == parallel[i])
            << "seed " << seeds[i]
            << ": farm result depends on thread count";
        EXPECT_EQ(serial[i].durabilityViolations, 0u);
        EXPECT_EQ(serial[i].recoveries, serial[i].cuts);
        EXPECT_GT(serial[i].writesCompleted, 0u);
    }
}

} // namespace
