/**
 * @file
 * Multi-seed invariant sweeps (see seed_sweep.hh for the scaffold).
 *
 * The properties the simulator stakes its experiments on must hold
 * for *any* seed, not just the handful the acceptance tests picked.
 * These sweeps run dozens of seeded scenarios — fanned out over the
 * ShardedExecutor task farm, so the sweep itself doubles as a
 * threading soak — and hold every seed to the same invariants:
 *
 *  - zero durability violations in power-fault campaigns, with
 *    exact counter reconciliation;
 *  - latency attribution that sums exactly to end-to-end time;
 *  - monotone simulated time as observed by completion callbacks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/system.hh"
#include "sim/span.hh"
#include "storage/crash_campaign.hh"
#include "seed_sweep.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

constexpr unsigned sweepSeedCount = 32;
constexpr unsigned sweepShards = 4;

// ---------------------------------------------------------------
// Scaffold self-checks: every seed reported, mode-invariant.
// ---------------------------------------------------------------

TEST(SeedSweep, ScaffoldRunsEverySeedOnceAndIsModeInvariant)
{
    const auto seeds = sweep::seeds(0x5EEDULL, 12);
    auto scenario = [](std::uint64_t seed, sweep::Report &r) {
        // A pure-compute scenario: a splitmix-ish scramble whose
        // value the scaffold must carry back unchanged.
        std::uint64_t z = seed * 0x2545F4914F6CDD1DULL;
        sweep::check(r, "scramble", true, std::to_string(z));
    };
    const auto serial = sweep::run(seeds, 1, scenario);
    const auto parallel = sweep::run(seeds, sweepShards, scenario);

    ASSERT_EQ(serial.size(), seeds.size());
    ASSERT_EQ(parallel.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_EQ(serial[i].seed, seeds[i]);
        EXPECT_EQ(parallel[i].seed, seeds[i]);
        ASSERT_EQ(serial[i].checks.size(), 1u);
        ASSERT_EQ(parallel[i].checks.size(), 1u);
        // Task i ran exactly once in both modes with the same input.
        EXPECT_EQ(serial[i].checks[0].detail,
                  parallel[i].checks[0].detail);
    }
    sweep::expectAllPassed(serial);
    sweep::expectAllPassed(parallel);
}

// ---------------------------------------------------------------
// Power-fault campaigns: durable means durable, for any seed.
// ---------------------------------------------------------------

storage::CrashRecoveryCampaign::Spec
sweepSpec(std::uint64_t seed)
{
    storage::CrashRecoveryCampaign::Spec s;
    s.seed = seed;
    // Small per-seed campaigns: the sweep's power is in seed count,
    // not per-seed depth. Short outages only (no full save/restore
    // round trip per cut) and a small module keep 32 seeds cheap.
    s.powerCuts = 2;
    s.regionBlocks = 24;
    s.queueDepth = 3;
    s.longOutageEvery = 0;
    s.brownouts = 1;
    s.dimmCapacity = 4 * MiB;
    return s;
}

TEST(SeedSweep, CrashCampaignDurabilityHoldsForEverySeed)
{
    const auto reports = sweep::run(
        sweep::seeds(20260806ULL, sweepSeedCount), sweepShards,
        [](std::uint64_t seed, sweep::Report &r) {
            storage::CrashRecoveryCampaign camp(sweepSpec(seed));
            const auto res = camp.run();

            // The acceptance bar, per seed: a block whose fence
            // completed is never damaged.
            sweep::check(r, "durability-violations",
                         res.durabilityViolations == 0,
                         std::to_string(res.durabilityViolations));
            sweep::check(r, "all-cuts-recovered",
                         res.recoveries == 2
                             && res.failedRecoveries == 0,
                         std::to_string(res.recoveries) + "/"
                             + std::to_string(res.failedRecoveries));
            sweep::check(r, "workload-ran",
                         res.writesCompleted > 0
                             && res.blocksFenced > 0);
            // Counters reconcile exactly: every submitted write
            // either completed or was failed by a cut, and every
            // audited block landed in exactly one verdict bucket.
            sweep::check(r, "write-counters-reconcile",
                         res.writesSubmitted
                             == res.writesCompleted
                                 + res.writesFailed);
            const std::uint64_t verified = res.unwritten + res.intact
                + res.newer + res.torn + res.stale + res.lost;
            sweep::check(r, "audit-buckets-reconcile",
                         verified == std::uint64_t(2) * 24,
                         std::to_string(verified));
            // Any damaged block must have been *detected* by the
            // device, never silently served: campaign verdicts and
            // device detection counters agree exactly.
            const auto &ps = camp.pmem().pmemStats();
            sweep::check(
                r, "damage-is-detected",
                res.torn + res.stale + res.lost
                    == std::uint64_t(ps.tornDetected.value()
                                     + ps.staleDetected.value()
                                     + ps.lostDetected.value()));
        });
    sweep::expectAllPassed(reports);
}

// ---------------------------------------------------------------
// Latency attribution + monotone time: per-seed systems.
// ---------------------------------------------------------------

class SeedSweepSpans : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        span::reset();
        span::setCapacity(1 << 15);
        span::setSampleInterval(1);
        span::setEnabled(true);
    }
    void TearDown() override
    {
        span::setEnabled(false);
        span::setSampleInterval(1);
        span::reset();
    }
};

Power8System::Params
sweepSystemParams(std::uint64_t seed)
{
    Power8System::Params p;
    // Alternate the buffer under test so the sweep covers both the
    // ConTutto and the Centaur read paths.
    p.buffer = seed % 2 ? BufferKind::contutto : BufferKind::centaur;
    p.dimms = {DimmSpec{mem::MemTech::dram, 16 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 16 * MiB, {}, {}}};
    p.seed = seed;
    return p;
}

TEST_F(SeedSweepSpans, AttributionSumsExactlyAndTimeIsMonotone)
{
    const auto reports = sweep::run(
        sweep::seeds(0xA77B10ULL, 16), sweepShards,
        [](std::uint64_t seed, sweep::Report &r) {
            Power8System sys(sweepSystemParams(seed));
            sweep::check(r, "trained", sys.train());

            // A seed-derived warm address, then one traced read.
            const Addr cap = sys.memoryCapacity();
            const Addr addr =
                (seed * 0x9E37ULL) % (cap / 2) / 128 * 128;
            sys.port().read(addr, nullptr);
            sweep::check(r, "warmed", sys.runUntilIdle());

            const Tick issue = sys.eventq().curTick();
            HostOpResult res;
            bool done = false;
            sys.port().read(addr, [&](const HostOpResult &x) {
                res = x;
                done = true;
            });
            sweep::check(r, "read-done",
                         sys.runUntilIdle() && done && !res.failed
                             && res.traceId != noTraceId);

            // Stage exclusives must sum exactly to end-to-end time,
            // with nothing unattributed. Computed inside the task,
            // right after completion, so the bounded span ring
            // cannot have evicted this id's spans yet.
            const auto b = span::breakdown(res.traceId);
            Tick sum = 0;
            for (const auto &st : b.stages)
                sum += st.exclusive;
            sweep::check(r, "stages-sum-to-total",
                         sum == b.total
                             && b.total == res.doneAt - issue,
                         std::to_string(sum) + " vs "
                             + std::to_string(b.total));
            sweep::check(r, "nothing-untracked",
                         b.stageTime("(untracked)") == 0);

            // A short closed-loop workload: simulated time as seen
            // by completion callbacks never runs backwards, and no
            // op completes before it was issued.
            bool monotone = true;
            Tick last = 0;
            unsigned completions = 0;
            for (unsigned i = 0; i < 24; ++i) {
                const Addr a =
                    (addr + (i + 1) * 4096) % cap / 128 * 128;
                const Tick at = sys.eventq().curTick();
                sys.port().read(a, [&, at](const HostOpResult &x) {
                    const Tick now = sys.eventq().curTick();
                    if (now < last || x.doneAt < at
                        || x.doneAt > now)
                        monotone = false;
                    last = now;
                    ++completions;
                });
            }
            sweep::check(r, "workload-idle", sys.runUntilIdle());
            sweep::check(r, "monotone-tick",
                         monotone && completions == 24,
                         std::to_string(completions));
        });
    sweep::expectAllPassed(reports);
}

} // namespace
