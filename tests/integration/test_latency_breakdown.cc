/**
 * @file
 * Golden end-to-end latency-attribution tests: one traced host read
 * through the ConTutto and Centaur paths must decompose into stage
 * times that sum exactly to the end-to-end latency, and moving the
 * latency knob must show up in the breakdown as exactly the
 * configured adder.
 */

#include <gtest/gtest.h>

#include "cpu/system.hh"
#include "sim/span.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

Power8System::Params
contuttoParams()
{
    Power8System::Params p;
    p.buffer = BufferKind::contutto;
    p.dimms = {DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}}};
    return p;
}

Power8System::Params
centaurParams()
{
    Power8System::Params p;
    p.buffer = BufferKind::centaur;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

class LatencyBreakdownTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        span::reset();
        span::setSampleInterval(1);
        span::setEnabled(true);
    }

    void TearDown() override
    {
        span::setEnabled(false);
        span::setSampleInterval(1);
        span::reset();
    }

    /** One traced read of a warm address; returns its result. */
    HostOpResult tracedRead(Power8System &sys, Addr addr)
    {
        // Warm the address so row-buffer state does not differ
        // between runs of this helper.
        sys.port().read(addr, nullptr);
        EXPECT_TRUE(sys.runUntilIdle());

        HostOpResult result;
        bool done = false;
        issueTick_ = sys.eventq().curTick();
        sys.port().read(addr, [&](const HostOpResult &r) {
            result = r;
            done = true;
        });
        EXPECT_TRUE(sys.runUntilIdle());
        EXPECT_TRUE(done);
        return result;
    }

    Tick issueTick_ = 0;
};

TEST_F(LatencyBreakdownTest, ContuttoStagesSumToEndToEnd)
{
    Power8System sys(contuttoParams());
    ASSERT_TRUE(sys.train());

    HostOpResult r = tracedRead(sys, 0x4000);
    ASSERT_NE(r.traceId, noTraceId);
    ASSERT_FALSE(r.failed);

    auto b = span::breakdown(r.traceId);
    // The root "host" span covers issue to done exactly.
    EXPECT_EQ(b.begin, issueTick_);
    EXPECT_EQ(b.end, r.doneAt);
    EXPECT_EQ(b.total, r.doneAt - issueTick_);

    // Per-stage exclusive times sum to the total, no slack at all.
    Tick sum = 0;
    for (const auto &st : b.stages)
        sum += st.exclusive;
    EXPECT_EQ(sum, b.total);

    // The ConTutto read path visits every layer.
    for (const char *stage :
         {"host", "dmi.down", "mbs", "ddr", "dmi.up"})
        EXPECT_GT(b.stageTime(stage), Tick(0)) << stage;
    EXPECT_EQ(b.stageTime("centaur"), Tick(0));
    // Nothing is unattributed on a clean read.
    EXPECT_EQ(b.stageTime("(untracked)"), Tick(0));
}

TEST_F(LatencyBreakdownTest, KnobDeltaMatchesConfiguredAdder)
{
    Power8System sys(contuttoParams());
    ASSERT_TRUE(sys.train());

    HostOpResult base = tracedRead(sys, 0x8000);
    ASSERT_NE(base.traceId, noTraceId);

    sys.card()->mbs().setKnobPosition(7);
    Tick adder = sys.card()->mbs().knobDelay();
    ASSERT_GT(adder, Tick(0));

    HostOpResult knobbed = tracedRead(sys, 0x8000);
    ASSERT_NE(knobbed.traceId, noTraceId);

    auto b0 = span::breakdown(base.traceId);
    auto b7 = span::breakdown(knobbed.traceId);

    // End-to-end grows by the knob's one-way adder; clockEdge()
    // alignment can shift either run by up to one fabric cycle.
    Tick cycle = sys.fabricDomain().period();
    Tick delta = b7.total - b0.total;
    EXPECT_NEAR(double(delta), double(adder), double(cycle));

    // And the growth is attributed to the knob stage, nowhere else.
    Tick knob_delta =
        b7.stageTime("mbs.knob") - b0.stageTime("mbs.knob");
    EXPECT_NEAR(double(knob_delta), double(adder), double(cycle));
}

TEST_F(LatencyBreakdownTest, CentaurStagesSumToEndToEnd)
{
    Power8System sys(centaurParams());
    ASSERT_TRUE(sys.train());

    HostOpResult r = tracedRead(sys, 0x4000);
    ASSERT_NE(r.traceId, noTraceId);
    ASSERT_FALSE(r.failed);

    auto b = span::breakdown(r.traceId);
    EXPECT_EQ(b.total, r.doneAt - issueTick_);
    Tick sum = 0;
    for (const auto &st : b.stages)
        sum += st.exclusive;
    EXPECT_EQ(sum, b.total);

    // Centaur path: no MBS, no soft DDR3 controller stage.
    EXPECT_GT(b.stageTime("centaur"), Tick(0));
    EXPECT_EQ(b.stageTime("mbs"), Tick(0));
    for (const char *stage : {"host", "dmi.down", "dmi.up"})
        EXPECT_GT(b.stageTime(stage), Tick(0)) << stage;
}

TEST_F(LatencyBreakdownTest, TraceIdSurvivesDmiReplay)
{
    Power8System sys(contuttoParams());
    ASSERT_TRUE(sys.train());

    // Drop the next downstream frame: the read command is lost on
    // the wire, the link layer times out and replays it, and the
    // operation still completes under its original trace id.
    sys.downChannel().dropNext(1);

    HostOpResult r;
    bool done = false;
    sys.port().read(0xC000, [&](const HostOpResult &x) {
        r = x;
        done = true;
    });
    ASSERT_TRUE(sys.runUntilIdle());
    ASSERT_TRUE(done);
    ASSERT_NE(r.traceId, noTraceId);
    ASSERT_FALSE(r.failed);

    // The retransmission is recorded against the op's own id.
    bool saw_replay = false;
    for (const auto &s : span::spansFor(r.traceId))
        if (std::string(s.stage) == "dmi.replay")
            saw_replay = true;
    EXPECT_TRUE(saw_replay);

    // The replayed operation still yields a complete attribution.
    auto b = span::breakdown(r.traceId);
    Tick sum = 0;
    for (const auto &st : b.stages)
        sum += st.exclusive;
    EXPECT_EQ(sum, b.total);
    EXPECT_GT(b.stageTime("ddr"), Tick(0));
}

} // namespace
