/**
 * @file
 * Reusable multi-seed invariant sweep scaffold.
 *
 * A sweep runs one scenario per seed — typically a self-contained
 * simulation — and collects named invariant checks into a per-seed
 * report. Scenarios are distributed over worker threads with
 * ShardedExecutor::runTasks, so a 32-seed sweep doubles as a
 * thread-safety soak for anything the scenario touches; the task
 * farm's determinism contract (tasks share no mutable state) is the
 * scaffold's contract too.
 *
 * Usage:
 *   auto reports = sweep::run(sweep::seeds(0xC0FFEE, 32), 4,
 *       [](std::uint64_t seed, sweep::Report &r) {
 *           ... simulate ...
 *           sweep::check(r, "no-violations", violations == 0,
 *                        std::to_string(violations));
 *       });
 *   sweep::expectAllPassed(reports);
 */

#ifndef CONTUTTO_TESTS_INTEGRATION_SEED_SWEEP_HH
#define CONTUTTO_TESTS_INTEGRATION_SEED_SWEEP_HH

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/parallel.hh"

namespace sweep
{

/** One named invariant verdict. */
struct Check
{
    std::string name;
    bool ok = false;
    std::string detail;
};

/** Everything one seed's scenario reported. */
struct Report
{
    std::uint64_t seed = 0;
    std::vector<Check> checks;
};

/** Record one invariant check in the report. */
inline void
check(Report &r, const std::string &name, bool ok,
      const std::string &detail = "")
{
    r.checks.push_back(Check{name, ok, detail});
}

/** A deterministic well-spread seed list (splitmix64 stream). */
inline std::vector<std::uint64_t>
seeds(std::uint64_t base, unsigned n)
{
    std::vector<std::uint64_t> out;
    out.reserve(n);
    std::uint64_t x = base;
    for (unsigned i = 0; i < n; ++i) {
        x += 0x9E3779B97F4A7C15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        out.push_back(z ^ (z >> 31));
    }
    return out;
}

/**
 * Run @p scenario once per seed, fanned out over @p shards worker
 * threads (parallel mode; pass 1 for a serial sweep). Scenarios
 * must be self-contained: no shared mutable state beyond their own
 * report slot.
 */
inline std::vector<Report>
run(const std::vector<std::uint64_t> &seed_list, unsigned shards,
    const std::function<void(std::uint64_t, Report &)> &scenario)
{
    std::vector<Report> reports(seed_list.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(seed_list.size());
    for (std::size_t i = 0; i < seed_list.size(); ++i)
        tasks.push_back([&reports, &seed_list, &scenario, i] {
            reports[i].seed = seed_list[i];
            scenario(seed_list[i], reports[i]);
        });
    contutto::sim::ShardedExecutor::runTasks(
        shards,
        shards > 1 ? contutto::sim::ShardedExecutor::Mode::parallel
                   : contutto::sim::ShardedExecutor::Mode::serial,
        tasks);
    return reports;
}

/** Assert every check of every seed passed, with a useful dump. */
inline void
expectAllPassed(const std::vector<Report> &reports)
{
    for (const Report &r : reports) {
        EXPECT_FALSE(r.checks.empty())
            << "seed " << r.seed << " reported no checks";
        for (const Check &c : r.checks)
            EXPECT_TRUE(c.ok)
                << "seed " << r.seed << ": invariant '" << c.name
                << "' failed"
                << (c.detail.empty() ? "" : " (" + c.detail + ")");
    }
}

} // namespace sweep

#endif // CONTUTTO_TESTS_INTEGRATION_SEED_SWEEP_HH
