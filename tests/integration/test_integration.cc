/** @file Cross-module integration scenarios. */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <sstream>

#include "accel/driver.hh"
#include "firmware/card_control.hh"
#include "storage/fio.hh"
#include "storage/pmem.hh"
#include "workloads/spec.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

Power8System::Params
mixedParams()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}}};
    return p;
}

TEST(Integration, BootThenWorkThenKnobViaRegisters)
{
    // The full §3.4 flow followed by real work: FSP boot (power,
    // config, SPDs, training), then application traffic, then
    // software moves the knob through the FSI->I2C path and the
    // latency change is visible end to end.
    Power8System sys(mixedParams());
    firmware::SystemCardControl control(sys);
    firmware::ErrorLog log;
    firmware::BootSequencer boot("boot", sys.eventq(),
                                 sys.nestDomain(), &sys, {}, control,
                                 log);
    firmware::BootReport report;
    bool booted = false;
    boot.start([&](const firmware::BootReport &r) {
        report = r;
        booted = true;
    });
    while (!booted && sys.eventq().step()) {
    }
    ASSERT_TRUE(report.success) << report.failReason;
    ASSERT_TRUE(report.map.valid);
    EXPECT_EQ(report.map.dramBytes(), 1 * GiB);

    double base = sys.measureReadLatencyNs();

    bool wrote = false;
    control.fsi().writeReg(firmware::regKnob, 5, [&] { wrote = true; });
    while (!wrote && sys.eventq().step()) {
    }
    double knobbed = sys.measureReadLatencyNs();
    EXPECT_NEAR(knobbed - base, 120.0, 8.0); // 5 x 24 ns
}

TEST(Integration, CpuAndAcceleratorShareDimmBandwidth)
{
    // The Access processor really shares the memory controllers
    // with the host: an accelerator scan slows while the CPU
    // hammers the same DIMMs.
    Power8System sys(mixedParams());
    ASSERT_TRUE(sys.train());
    accel::AccelComplex complex("accel", sys.eventq(),
                                sys.fabricDomain(), &sys, {},
                                *sys.card(), 2ull * GiB);
    accel::AccelDriver driver(
        sys, complex, accel::AccelDriver::Params{256 * MiB,
                                                 microseconds(1)});

    auto scan_time = [&](bool with_cpu_traffic) {
        bool done = false;
        Tick t0 = sys.eventq().curTick();
        driver.minMaxAsync(0, 4 * MiB,
                           [&](const accel::ControlBlock &) {
                               done = true;
                           });
        bool keep_hammering = with_cpu_traffic;
        std::function<void()> hammer = [&] {
            if (!keep_hammering)
                return;
            static Addr a = 64 * MiB;
            a += 4096;
            sys.port().read(a, [&](const HostOpResult &) {
                hammer();
            });
        };
        if (with_cpu_traffic)
            for (int i = 0; i < 16; ++i)
                hammer();
        while (!done && sys.eventq().step()) {
        }
        keep_hammering = false;
        sys.runUntilIdle();
        return double(sys.eventq().curTick() - t0);
    };

    double alone = scan_time(false);
    double contended = scan_time(true);
    EXPECT_GT(contended, alone * 1.1);
}

TEST(Integration, PersistentDataSurvivesPowerCycleEndToEnd)
{
    // pmem block writes -> NVDIMM save on power loss -> restore ->
    // retrain the link -> the data reads back over the timing path.
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::nvdimmN, 128 * MiB, {}, {}},
               DimmSpec{mem::MemTech::nvdimmN, 128 * MiB, {}, {}}};
    Power8System sys(p);
    ASSERT_TRUE(sys.train());

    dmi::CacheLine line;
    line.fill(0xC4);
    sys.port().write(0x7000, line, nullptr);
    sys.port().flush(nullptr);
    ASSERT_TRUE(sys.runUntilIdle());

    auto &nv0 = static_cast<mem::NvdimmDevice &>(sys.dimm(0));
    auto &nv1 = static_cast<mem::NvdimmDevice &>(sys.dimm(1));
    nv0.powerLoss();
    nv1.powerLoss();
    sys.runFor(nv0.saveDuration() + milliseconds(1));
    ASSERT_EQ(nv0.state(), mem::NvdimmDevice::State::saved);
    nv0.powerRestore();
    nv1.powerRestore();
    sys.runFor(nv0.saveDuration() + milliseconds(1));
    ASSERT_EQ(nv0.state(), mem::NvdimmDevice::State::normal);

    // The channel would retrain after a platform power event.
    bool retrained = false;
    sys.trainAsync([&](const dmi::TrainingResult &r) {
        retrained = r.success;
    });
    while (!retrained && sys.eventq().step()) {
    }
    ASSERT_TRUE(retrained);

    bool verified = false;
    sys.port().read(0x7000, [&](const HostOpResult &r) {
        verified = (r.data[0] == 0xC4 && r.data[127] == 0xC4);
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_TRUE(verified);
}

TEST(Integration, NoisyLinkSoakWithKnobChanges)
{
    // Soak: random mixed operations under a lossy link while the
    // knob moves, checked against a reference model. Exactly-once
    // in-order delivery and data integrity must hold throughout.
    auto p = mixedParams();
    p.channelErrorRate = 0.005;
    Power8System sys(p);
    ASSERT_TRUE(sys.train());
    Rng rng(4242);

    constexpr Addr region = 256 * 1024;
    std::vector<std::uint8_t> ref(region, 0);
    int completed = 0;
    int issued = 0;
    for (int round = 0; round < 12; ++round) {
        sys.card()->mbs().setKnobPosition(round % 8);
        for (int op = 0; op < 25; ++op) {
            Addr addr = rng.below(region / 128) * 128;
            ++issued;
            if (rng.chance(0.45)) {
                dmi::CacheLine line;
                for (auto &b : line)
                    b = std::uint8_t(rng.next());
                std::memcpy(ref.data() + addr, line.data(), 128);
                sys.port().write(addr, line,
                                 [&](const HostOpResult &) {
                                     ++completed;
                                 });
            } else if (rng.chance(0.1)) {
                sys.port().flush([&](const HostOpResult &) {
                    ++completed;
                });
            } else {
                // Snapshot the reference at issue time: same-line
                // ordering guarantees the read observes exactly the
                // writes issued before it.
                std::array<std::uint8_t, 128> expect;
                std::memcpy(expect.data(), ref.data() + addr, 128);
                sys.port().read(
                    addr, [&, expect](const HostOpResult &r) {
                        ++completed;
                        for (int i = 0; i < 128; ++i)
                            ASSERT_EQ(r.data[i], expect[i]);
                    });
            }
            // Sync each round boundary so the reference stays valid
            // for reads racing writes to the same line.
            if (op % 25 == 24)
                ASSERT_TRUE(sys.runUntilIdle(milliseconds(400)));
        }
        ASSERT_TRUE(sys.runUntilIdle(milliseconds(400)));
    }
    EXPECT_EQ(completed, issued);
}

TEST(Integration, StatsTreeCoversTheWholeSystem)
{
    // Observability: after real traffic the hierarchical stats dump
    // names every layer of the stack with non-trivial numbers.
    Power8System sys(mixedParams());
    ASSERT_TRUE(sys.train());
    dmi::CacheLine line;
    line.fill(1);
    for (int i = 0; i < 10; ++i) {
        sys.port().write(Addr(i) * 128, line, nullptr);
        sys.port().read(Addr(i) * 128, nullptr);
    }
    ASSERT_TRUE(sys.runUntilIdle());

    std::ostringstream os;
    sys.printStats(os);
    std::string dump = os.str();
    for (const char *needle :
         {"system.chan0.down.framesCarried",
          "system.chan0.up.framesCarried",
          "system.chan0.contutto.mbi.txPayloadFrames",
          "system.chan0.contutto.mbs.reads 10",
          "system.chan0.contutto.mbs.writes 10",
          "system.chan0.contutto.avalon.transactions",
          "system.chan0.contutto.mc0.rowHits",
          "system.chan0.dimm0.bytesWritten",
          "system.chan0.hostPort.readLatency"}) {
        EXPECT_NE(dump.find(needle), std::string::npos)
            << "missing stat: " << needle;
    }
    // And a reset really zeroes the tree.
    sys.resetStats();
    std::ostringstream os2;
    sys.printStats(os2);
    EXPECT_NE(os2.str().find("mbs.reads 0"), std::string::npos);
}

TEST(Integration, SpecWorkloadWhileFioRunsOnPmem)
{
    // Two clients of the same card: a core model running an
    // application profile and a pmem block device doing I/O. Both
    // must finish and the combined pressure shows in tag stalls or
    // engine occupancy.
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::sttMram, 256 * MiB,
                        mem::MramDevice::Junction::pMTJ, {}},
               DimmSpec{mem::MemTech::sttMram, 256 * MiB,
                        mem::MramDevice::Junction::pMTJ, {}}};
    Power8System sys(p);
    ASSERT_TRUE(sys.train());

    storage::PmemBlockDevice pmem("pmem", sys, &sys, {});
    // Storage I/O in the upper half of the pmem region.
    int io_done = 0;
    Rng rng(9);
    std::function<void()> io = [&] {
        if (io_done >= 150)
            return;
        storage::BlockRequest req;
        req.lba = 32768 + rng.below(16384);
        req.isWrite = rng.chance(0.5);
        req.onDone = [&](const storage::BlockRequest &) {
            ++io_done;
            io();
        };
        pmem.submit(std::move(req));
    };
    io();

    // The application in the lower region.
    ClockDomain core("core", 250);
    cpu::WorkloadProfile prof;
    prof.name = "mixed";
    prof.missesPerKiloInstr = 10;
    prof.workingSet = 64 * MiB;
    cpu::CoreModel::Params cp;
    cp.instructions = 150000;
    cpu::CoreModel model("core", sys.eventq(), core, &sys, prof, cp,
                         sys.port());
    bool app_done = false;
    model.start(
        [&](const cpu::CoreModel::Result &) { app_done = true; });

    while ((!app_done || io_done < 150) && sys.eventq().step()) {
    }
    EXPECT_TRUE(app_done);
    EXPECT_EQ(io_done, 150);
    EXPECT_GT(
        sys.card()->mbs().mbsStats().engineOccupancy.maximum(), 2.0);
}

} // namespace
