/**
 * @file
 * Golden determinism anchors for the event core.
 *
 * The expected values below were captured from seeded
 * CrashRecoveryCampaign and RAS fault-campaign runs on the binary
 * heap event queue that preceded the ladder queue. The simulations
 * depend on every tie-break the queue makes, so bit-identical
 * counters here demonstrate that the ladder rewrite (wheel buckets,
 * overflow pulls, one-shot pooling, reschedule fast path) preserved
 * the (tick, priority, insertion order) contract end to end — not
 * just on synthetic op mixes but across the full model stack. If a
 * future change alters scheduling semantics deliberately, these
 * constants must be re-captured and the change called out in review.
 */

#include <gtest/gtest.h>

#include <functional>

#include "cpu/system.hh"
#include "ras/fault_injector.hh"
#include "storage/crash_campaign.hh"

using namespace contutto;
using namespace contutto::cpu;
using namespace contutto::storage;

namespace
{

CrashRecoveryCampaign::Spec
crashSpec(std::uint64_t seed)
{
    CrashRecoveryCampaign::Spec s;
    s.seed = seed;
    s.powerCuts = 3;
    s.regionBlocks = 32;
    s.queueDepth = 4;
    s.longOutageEvery = 2;
    s.brownouts = 2;
    return s;
}

struct CrashGolden
{
    std::uint64_t writesSubmitted, writesCompleted, writesFailed;
    std::uint64_t intact, newer, unwritten;
    Tick endTick;
};

void
checkCrash(std::uint64_t seed, const CrashGolden &g)
{
    CrashRecoveryCampaign camp(crashSpec(seed));
    const auto r = camp.run();
    EXPECT_EQ(r.cuts, 3u);
    EXPECT_EQ(r.brownoutsInjected, 2u);
    EXPECT_EQ(r.recoveries, 3u);
    EXPECT_EQ(r.failedRecoveries, 0u);
    EXPECT_EQ(r.writesSubmitted, g.writesSubmitted);
    EXPECT_EQ(r.writesCompleted, g.writesCompleted);
    EXPECT_EQ(r.writesFailed, g.writesFailed);
    EXPECT_EQ(r.blocksFenced, g.writesCompleted);
    EXPECT_EQ(r.intact, g.intact);
    EXPECT_EQ(r.newer, g.newer);
    EXPECT_EQ(r.torn, 0u);
    EXPECT_EQ(r.stale, 0u);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.unwritten, g.unwritten);
    EXPECT_EQ(r.durabilityViolations, 0u);
    EXPECT_EQ(camp.system().eventq().curTick(), g.endTick);
}

TEST(GoldenDeterminism, CrashCampaignSeed7)
{
    checkCrash(7, CrashGolden{206, 194, 12, 94, 1, 1,
                              Tick(682972600000)});
}

TEST(GoldenDeterminism, CrashCampaignSeed42)
{
    checkCrash(42, CrashGolden{115, 103, 12, 38, 0, 58,
                               Tick(683563508000)});
}

struct RasGolden
{
    double timeouts, retries, dropped, corrupt, frameDrops, replays;
    Tick endTick;
};

void
checkRas(std::uint64_t seed, const RasGolden &g)
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    p.seed = seed;
    p.cardParams.mbs.cmdTimeout = microseconds(5);
    p.ras.watchdogEnabled = true;

    Power8System sys(p);
    ASSERT_TRUE(sys.train());

    ras::FaultInjector inj("inj", sys.eventq(), sys.nestDomain(),
                           &sys, seed);
    inj.addMemory(&sys.dimm(0).image());
    inj.addMemory(&sys.dimm(1).image());
    inj.addChannel(&sys.downChannel());
    inj.addChannel(&sys.upChannel());
    inj.addMbs(&sys.card()->mbs());

    ras::FaultInjector::CampaignSpec spec;
    spec.start = sys.eventq().curTick();
    spec.duration = microseconds(60);
    spec.bitFlips = 12;
    spec.memBase = 4 * MiB;
    spec.memSize = 64 * KiB;
    spec.frameCorruptions = 4;
    spec.frameDrops = 2;
    spec.burstErrors = 1;
    spec.engineStalls = 2;
    inj.runCampaign(spec);

    // Closed-loop write-then-readback workload under fault fire.
    unsigned started = 0, completed = 0;
    std::uint64_t failed = 0, mismatches = 0;
    const unsigned kOps = 160;
    std::function<void()> issueNext = [&] {
        if (started >= kOps)
            return;
        unsigned op = started++;
        Addr a = Addr(op) * dmi::cacheLineSize;
        dmi::CacheLine line;
        for (unsigned j = 0; j < line.size(); ++j)
            line[j] = std::uint8_t(op * 31 + j * 7 + 5);
        sys.port().write(
            a, line, [&, a, line](const HostOpResult &wr) {
                if (wr.failed)
                    ++failed;
                sys.port().read(a, [&, line](const HostOpResult &rr) {
                    if (rr.failed)
                        ++failed;
                    if (rr.data != line)
                        ++mismatches;
                    ++completed;
                    issueNext();
                });
            });
    };
    for (int i = 0; i < 8; ++i)
        issueNext();
    while (completed < kOps && sys.eventq().step()) {
    }
    sys.runUntilIdle();
    Tick campaign_end = spec.start + spec.duration + microseconds(1);
    if (sys.eventq().curTick() < campaign_end)
        sys.runFor(campaign_end - sys.eventq().curTick());
    for (int i = 0; i < 48; ++i)
        sys.port().read(Addr(i) * dmi::cacheLineSize,
                        [](const HostOpResult &) {});
    sys.runUntilIdle();

    EXPECT_EQ(inj.history().size(), 21u);
    EXPECT_EQ(completed, kOps);
    EXPECT_EQ(failed, 0u);
    EXPECT_EQ(mismatches, 0u);
    const auto &mbs = sys.card()->mbs().mbsStats();
    const auto &down = sys.downChannel().channelStats();
    const auto &up = sys.upChannel().channelStats();
    EXPECT_EQ(mbs.cmdTimeouts.value(), g.timeouts);
    EXPECT_EQ(mbs.cmdRetries.value(), g.retries);
    EXPECT_EQ(mbs.droppedCompletions.value(), g.dropped);
    EXPECT_EQ(down.framesCorrupted.value() + up.framesCorrupted.value(),
              g.corrupt);
    EXPECT_EQ(down.framesDropped.value() + up.framesDropped.value(),
              g.frameDrops);
    EXPECT_EQ(sys.hostLink().linkStats().replaysTriggered.value()
                  + sys.card()->mbi().linkStats().replaysTriggered.value(),
              g.replays);
    EXPECT_EQ(sys.eventq().curTick(), g.endTick);
}

TEST(GoldenDeterminism, RasCampaignSeed20260806)
{
    checkRas(20260806,
             RasGolden{2, 2, 2, 4, 2, 2, Tick(66952000)});
}

TEST(GoldenDeterminism, RasCampaignSeed424242)
{
    checkRas(424242,
             RasGolden{2, 2, 2, 4, 2, 1, Tick(66940000)});
}

} // namespace
