/**
 * @file
 * Chaos harness for supervised campaign execution.
 *
 * Self-injects the three failure shapes a real campaign farm meets —
 * worker crashes (thrown exceptions), forced hangs (tasks that
 * ignore everything but their cancel token), and mid-run kills (a
 * campaign stopped dead at a checkpoint boundary) — and holds the
 * resilience layer to its contract:
 *
 *  - zero lost or duplicated tasks: every task gets exactly one
 *    verdict and healthy tasks execute exactly once;
 *  - every failure classified: crashes, hangs and kills land in the
 *    CampaignResult taxonomy, never in a dead process;
 *  - chaos never perturbs the survivors: results and stats-JSON of
 *    the tasks that succeeded are bit-identical to a run with no
 *    failures injected at all, and a killed-and-resumed campaign is
 *    bit-identical to an uninterrupted one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/supervisor.hh"
#include "storage/crash_campaign.hh"
#include "seed_sweep.hh"

#include <unistd.h>

using namespace contutto;
using contutto::sim::CampaignSupervisor;
using contutto::sim::ShardedExecutor;
using Outcome = CampaignSupervisor::TaskOutcome;

namespace
{

/** A small per-seed campaign: chaos power is in task count. */
storage::CrashRecoveryCampaign::Spec
chaosSpec(std::uint64_t seed)
{
    storage::CrashRecoveryCampaign::Spec s;
    s.seed = seed;
    s.powerCuts = 2;
    s.regionBlocks = 8;
    s.queueDepth = 2;
    s.longOutageEvery = 0;
    s.brownouts = 1;
    s.dimmCapacity = 4 * MiB;
    return s;
}

std::string
statsJson(storage::CrashRecoveryCampaign &camp)
{
    std::ostringstream os;
    stats::toJson(camp.system(), os);
    return os.str();
}

std::string
ckptPath(const std::string &tag, std::uint64_t seed)
{
    return (std::filesystem::temp_directory_path()
            / ("ct_chaos_" + tag + "_" + std::to_string(getpid())
               + "_" + std::to_string(seed) + ".ckpt"))
        .string();
}

CampaignSupervisor::Params
chaosParams()
{
    CampaignSupervisor::Params p;
    p.shards = 4;
    p.mode = ShardedExecutor::Mode::parallel;
    p.watchdogInterval = std::chrono::milliseconds(2);
    p.backoffBase = std::chrono::milliseconds(0);
    return p;
}

// ---------------------------------------------------------------
// Crashes + hangs: every failure classified, nothing lost.
// ---------------------------------------------------------------

TEST(ChaosCampaign, CrashesAndHangsAllClassifiedNoTaskLost)
{
    enum Role { healthy, crashOnce, crashAlways, hang };
    // A fixed chaos plan (deterministic, covers every role, spread
    // over all four shards of a 24-task farm).
    std::vector<Role> plan(24, healthy);
    plan[3] = crashOnce;
    plan[7] = crashAlways;
    plan[10] = hang;
    plan[13] = crashOnce;
    plan[18] = crashAlways;
    plan[21] = hang;

    // The reference: what every healthy task must compute.
    auto simulate = [](unsigned i) {
        EventQueue eq;
        std::uint64_t acc = i;
        for (int k = 0; k < 200; ++k)
            OneShotEvent::schedule(eq, Tick(k) * 5,
                                   [&acc, k] { acc = acc * 33 + k; });
        eq.run();
        return acc;
    };
    std::vector<std::uint64_t> bare(plan.size());
    for (unsigned i = 0; i < plan.size(); ++i)
        bare[i] = simulate(i);

    auto p = chaosParams();
    p.taskDeadline = std::chrono::milliseconds(25);
    CampaignSupervisor sup(p);

    std::vector<std::atomic<unsigned>> executions(plan.size());
    std::vector<std::uint64_t> out(plan.size(), 0);
    std::vector<CampaignSupervisor::Task> tasks;
    for (unsigned i = 0; i < plan.size(); ++i)
        tasks.push_back([&, i](const std::atomic<bool> &cancel) {
            const unsigned exec = executions[i].fetch_add(1);
            switch (plan[i]) {
              case crashAlways:
                throw std::runtime_error("injected crash");
              case crashOnce:
                if (exec == 0)
                    throw std::runtime_error("injected crash");
                break;
              case hang:
                while (!cancel.load(std::memory_order_relaxed))
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                return;
              case healthy:
                break;
            }
            out[i] = simulate(i);
        });

    auto r = sup.run(tasks);

    // Nothing lost: one verdict per task, totals reconcile.
    ASSERT_TRUE(r.allAccounted(tasks.size()));

    for (unsigned i = 0; i < plan.size(); ++i) {
        switch (plan[i]) {
          case healthy:
            EXPECT_EQ(r.tasks[i].outcome, Outcome::ok) << i;
            // Not duplicated: a healthy task ran exactly once.
            EXPECT_EQ(executions[i].load(), 1u) << i;
            EXPECT_EQ(out[i], bare[i]) << i;
            break;
          case crashOnce:
            EXPECT_EQ(r.tasks[i].outcome, Outcome::okRetried) << i;
            EXPECT_EQ(executions[i].load(), 2u) << i;
            // Chaos must not perturb the survivor's result.
            EXPECT_EQ(out[i], bare[i]) << i;
            break;
          case crashAlways:
            // Climbed the whole ladder: 2 farm + 1 serial attempt,
            // then quarantined with the error preserved.
            EXPECT_EQ(r.tasks[i].outcome, Outcome::quarantined) << i;
            EXPECT_EQ(executions[i].load(), 3u) << i;
            EXPECT_EQ(r.tasks[i].error, "injected crash") << i;
            break;
          case hang:
            EXPECT_EQ(r.tasks[i].outcome, Outcome::timedOut) << i;
            EXPECT_FALSE(r.tasks[i].unresponsive) << i;
            break;
        }
    }
    EXPECT_EQ(r.succeeded, 20u);
    EXPECT_EQ(r.retried, 2u);
    EXPECT_EQ(r.quarantined, 2u);
    EXPECT_EQ(r.timedOut, 2u);
    EXPECT_EQ(r.unresponsive, 0u);
}

// ---------------------------------------------------------------
// Mid-run kills: crash at a checkpoint boundary, retry resumes.
// ---------------------------------------------------------------

TEST(ChaosCampaign, KilledCampaignResumesBitIdenticalUnderRetry)
{
    // Four seeds, each a full kill/resume cycle driven by the
    // supervisor's own retry: attempt 1 stops dead at the first
    // checkpoint boundary (the in-process "kill") and throws;
    // attempt 2 finds the checkpoint and resumes. The result must
    // be bit-identical — Result, stats-JSON and FSP error log — to
    // the same campaign run uninterrupted.
    const std::vector<std::uint64_t> seeds{11, 12, 13, 14};

    struct Run
    {
        storage::CrashRecoveryCampaign::Result result;
        std::string stats;
        std::string errors;
    };
    auto capture = [](storage::CrashRecoveryCampaign &camp,
                      storage::CrashRecoveryCampaign::Result res) {
        Run run;
        run.result = res;
        run.stats = statsJson(camp);
        std::ostringstream os;
        for (const auto &e : camp.errorLog().entries())
            os << e.when << ' ' << e.component << ' '
               << int(e.severity) << ' ' << e.message << '\n';
        os << camp.errorLog().overflowCount();
        run.errors = os.str();
        return run;
    };

    std::vector<Run> baseline(seeds.size());
    std::vector<Run> chaos(seeds.size());
    std::vector<std::string> paths(seeds.size());

    CampaignSupervisor sup(chaosParams());
    std::vector<CampaignSupervisor::Task> tasks;
    for (std::size_t t = 0; t < seeds.size(); ++t) {
        paths[t] = ckptPath("resume", seeds[t]);
        tasks.push_back([&, t](const std::atomic<bool> &) {
            const std::uint64_t seed = seeds[t];
            storage::CrashRecoveryCampaign::RunOptions opts;
            opts.checkpointPath = paths[t];
            if (!std::filesystem::exists(paths[t])) {
                // Attempt 1: run to the first checkpoint, "die".
                storage::CrashRecoveryCampaign camp(chaosSpec(seed));
                opts.checkpointEvery = 1;
                opts.stopAfterCheckpoints = 1;
                camp.run(opts);
                if (!camp.stoppedEarly())
                    throw std::runtime_error(
                        "campaign too short to kill");
                throw std::runtime_error("injected mid-run kill");
            }
            // Attempt 2: a fresh process image resumes the corpse.
            storage::CrashRecoveryCampaign camp(chaosSpec(seed));
            opts.checkpointEvery = 1;
            opts.resumeFrom = paths[t];
            chaos[t] = capture(camp, camp.run(opts));
        });
    }
    auto r = sup.run(tasks);
    ASSERT_TRUE(r.allAccounted(tasks.size()));
    ASSERT_TRUE(r.allOk());
    EXPECT_EQ(r.retried, seeds.size());

    // The uninterrupted control runs (same checkpoint cadence, so
    // the normalization at round boundaries is identical work).
    for (std::size_t t = 0; t < seeds.size(); ++t) {
        storage::CrashRecoveryCampaign camp(chaosSpec(seeds[t]));
        storage::CrashRecoveryCampaign::RunOptions opts;
        opts.checkpointPath = ckptPath("base", seeds[t]);
        opts.checkpointEvery = 1;
        baseline[t] = capture(camp, camp.run(opts));
        std::remove(opts.checkpointPath.c_str());
        std::remove(paths[t].c_str());
    }

    for (std::size_t t = 0; t < seeds.size(); ++t) {
        EXPECT_EQ(chaos[t].result, baseline[t].result)
            << "seed " << seeds[t];
        EXPECT_EQ(chaos[t].stats, baseline[t].stats)
            << "seed " << seeds[t];
        EXPECT_EQ(chaos[t].errors, baseline[t].errors)
            << "seed " << seeds[t];
    }
}

// ---------------------------------------------------------------
// 32-seed sweep under injected failure: survivors untouched.
// ---------------------------------------------------------------

TEST(ChaosCampaign, SweepSurvivorsBitIdenticalUnderInjectedFailure)
{
    const auto seeds = sweep::seeds(0xC4A05ULL, 32);

    // The chaos plan, seeded: ~a quarter of the tasks crash once
    // (transient), two fixed ones crash always (hard). The plan is
    // derived before the farm starts so both runs agree on it.
    std::vector<int> transient(seeds.size(), 0);
    Rng chaosRng(0xC4A05ULL);
    for (std::size_t i = 0; i < seeds.size(); ++i)
        transient[i] = chaosRng.below(4) == 0;
    // Pin one transient per shard so the plan cannot degenerate
    // into a failure-free sweep for an unlucky chaos seed.
    for (std::size_t i : {1u, 9u, 17u, 25u})
        transient[i] = 1;
    const std::size_t hardA = 5, hardB = 19;
    transient[hardA] = transient[hardB] = 0;

    struct Capture
    {
        storage::CrashRecoveryCampaign::Result result;
        std::string stats;
        bool ran = false;
    };

    auto farm = [&](bool inject) {
        std::vector<Capture> caps(seeds.size());
        std::vector<std::atomic<unsigned>> executions(seeds.size());
        CampaignSupervisor sup(chaosParams());
        std::vector<CampaignSupervisor::Task> tasks;
        for (std::size_t i = 0; i < seeds.size(); ++i)
            tasks.push_back([&, i](const std::atomic<bool> &) {
                const unsigned exec = executions[i].fetch_add(1);
                if (inject) {
                    if (i == hardA || i == hardB)
                        throw std::runtime_error("hard failure");
                    if (transient[i] && exec == 0)
                        throw std::runtime_error("transient");
                }
                storage::CrashRecoveryCampaign camp(
                    chaosSpec(seeds[i]));
                caps[i].result = camp.run();
                caps[i].stats = statsJson(camp);
                caps[i].ran = true;
            });
        auto r = sup.run(tasks);
        // Zero duplicated work: every task that could run ran its
        // campaign exactly once (retries re-run only the crash).
        for (std::size_t i = 0; i < seeds.size(); ++i) {
            const bool hard =
                inject && (i == hardA || i == hardB);
            EXPECT_EQ(caps[i].ran, !hard) << i;
        }
        return std::make_pair(std::move(caps), std::move(r));
    };

    auto [base, baseR] = farm(false);
    auto [chaos, chaosR] = farm(true);

    // The no-failure control is entirely healthy...
    ASSERT_TRUE(baseR.allAccounted(seeds.size()));
    ASSERT_TRUE(baseR.allOk());
    // ...and under chaos nothing is lost and every failure is
    // classified: hard crashes quarantined, transients retried.
    ASSERT_TRUE(chaosR.allAccounted(seeds.size()));
    EXPECT_EQ(chaosR.quarantined, 2u);
    EXPECT_EQ(chaosR.succeeded, seeds.size() - 2);
    unsigned expectRetried = 0;
    for (std::size_t i = 0; i < seeds.size(); ++i)
        expectRetried += transient[i];
    EXPECT_EQ(chaosR.retried, expectRetried);
    EXPECT_GE(expectRetried, 4u) << "chaos plan degenerated";

    // Surviving-task counters are bit-identical to the no-failure
    // run — injected neighbours' failures never leak across tasks.
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        if (i == hardA || i == hardB) {
            EXPECT_EQ(chaosR.tasks[i].outcome, Outcome::quarantined);
            continue;
        }
        EXPECT_EQ(chaosR.tasks[i].outcome,
                  transient[i] ? Outcome::okRetried : Outcome::ok)
            << i;
        EXPECT_EQ(chaos[i].result, base[i].result)
            << "seed " << seeds[i];
        EXPECT_EQ(chaos[i].stats, base[i].stats)
            << "seed " << seeds[i];
    }
}

} // namespace
