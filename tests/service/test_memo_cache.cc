/**
 * @file
 * Memo cache: LRU bounds and counters, recency refresh on both hit
 * and re-insert, and the persistence round-trip the drain/restart
 * cycle depends on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "service/memo_cache.hh"
#include "sim/checkpoint.hh"

using namespace contutto::service;

namespace
{

class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

TEST(MemoCache, HitMissAndCounters)
{
    MemoCache m(8);
    EXPECT_EQ(m.lookup(1, 1), "");
    EXPECT_EQ(m.misses(), 1u);
    m.insert(1, 1, "payload-a");
    EXPECT_EQ(m.lookup(1, 1), "payload-a");
    EXPECT_EQ(m.hits(), 1u);
    // Same config, different seed: a distinct key.
    EXPECT_EQ(m.lookup(1, 2), "");
    EXPECT_EQ(m.size(), 1u);
}

TEST(MemoCache, LruEvictsTheColdest)
{
    MemoCache m(3);
    m.insert(1, 1, "a");
    m.insert(2, 1, "b");
    m.insert(3, 1, "c");
    // Touch 'a' so 'b' is now the coldest.
    EXPECT_EQ(m.lookup(1, 1), "a");
    m.insert(4, 1, "d");
    EXPECT_EQ(m.evictions(), 1u);
    EXPECT_EQ(m.lookup(2, 1), "");  // evicted
    EXPECT_EQ(m.lookup(1, 1), "a"); // survived via the touch
    EXPECT_EQ(m.lookup(3, 1), "c");
    EXPECT_EQ(m.lookup(4, 1), "d");
    EXPECT_EQ(m.size(), 3u);
}

TEST(MemoCache, ZeroCapacityDisables)
{
    MemoCache m(0);
    m.insert(1, 1, "a");
    EXPECT_EQ(m.lookup(1, 1), "");
    EXPECT_EQ(m.size(), 0u);
}

TEST(MemoCache, SaveLoadRoundTrip)
{
    TempPath p("memo_roundtrip.ckpt");
    {
        MemoCache m(16);
        m.insert(0xaaa, 1, "alpha");
        m.insert(0xbbb, 2, "beta");
        m.insert(0xaaa, 9, "gamma");
        m.save(p.str());
    }
    MemoCache back(16);
    back.load(p.str());
    EXPECT_EQ(back.size(), 3u);
    EXPECT_EQ(back.lookup(0xaaa, 1), "alpha");
    EXPECT_EQ(back.lookup(0xbbb, 2), "beta");
    EXPECT_EQ(back.lookup(0xaaa, 9), "gamma");
}

TEST(MemoCache, LoadIntoSmallerCacheKeepsTheHottest)
{
    TempPath p("memo_trim.ckpt");
    {
        MemoCache m(4);
        m.insert(1, 0, "one");
        m.insert(2, 0, "two");
        m.insert(3, 0, "three");
        m.insert(4, 0, "four");
        // Heat up "one": hottest at save time.
        EXPECT_EQ(m.lookup(1, 0), "one");
        m.save(p.str());
    }
    MemoCache back(2);
    back.load(p.str());
    EXPECT_EQ(back.size(), 2u);
    // Save order is coldest->hottest, so the survivors are the two
    // hottest: "four" and the re-touched "one".
    EXPECT_EQ(back.lookup(4, 0), "four");
    EXPECT_EQ(back.lookup(1, 0), "one");
    EXPECT_EQ(back.lookup(2, 0), "");
    EXPECT_EQ(back.lookup(3, 0), "");
}

TEST(MemoCache, CorruptIndexThrows)
{
    TempPath p("memo_corrupt.ckpt");
    {
        MemoCache m(4);
        m.insert(1, 1, "x");
        m.save(p.str());
    }
    // Flip a payload byte; the checkpoint checksum must object.
    {
        std::FILE *f = std::fopen(p.str().c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 40, SEEK_SET);
        int c = std::fgetc(f);
        std::fseek(f, 40, SEEK_SET);
        std::fputc(c ^ 0x5a, f);
        std::fclose(f);
    }
    MemoCache back(4);
    EXPECT_THROW(back.load(p.str()), contutto::ckpt::Error);
}

} // namespace
