/**
 * @file
 * Service-layer chaos: with responses delayed, dropped and
 * truncated and workers crashing on a deterministic cadence, the
 * retrying client still gets every request answered exactly once,
 * payloads stay byte-identical per (config hash, seed), and a
 * drain under load answers everything it admitted.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hh"
#include "service/server.hh"

using namespace contutto::service;

namespace
{

class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

CampaignClient::Params
chaosClient(const std::string &socket, std::uint64_t jitterSeed)
{
    CampaignClient::Params p;
    p.socketPath = socket;
    p.callTimeout = std::chrono::seconds(120);
    p.responseTimeout = std::chrono::seconds(2);
    p.backoffBase = std::chrono::milliseconds(1);
    p.backoffCap = std::chrono::milliseconds(50);
    p.jitterSeed = jitterSeed;
    p.maxAttempts = 64;
    return p;
}

Request
spinRequest(const std::string &id, std::uint64_t spinMs,
            std::uint64_t seed)
{
    Request r;
    r.id = id;
    r.kind = "spin";
    r.seed = seed;
    r.config = Json::object();
    r.config.set("spinMs", Json::number(spinMs));
    return r;
}

TEST(CampaignServerChaos, FaultyWireStillAnswersExactlyOnce)
{
    CampaignServer::Params p;
    p.socketPath = ::testing::TempDir() + "chaos_wire.sock";
    p.workers = 2;
    p.watchdogInterval = std::chrono::milliseconds(2);
    p.faults.dropEveryN = 3;     // every 3rd result vanishes
    p.faults.truncateEveryN = 4; // every 4th is cut mid-line
    p.faults.delayEveryN = 5;    // every 5th arrives late
    p.faults.delayMs = 20;
    CampaignServer server(p);
    server.start();

    // 12 requests over 4 threads: 8 distinct (config, seed) keys
    // plus 4 verbatim duplicates that must coalesce or memoize.
    const unsigned kDistinct = 8;
    const unsigned kTotal = 12;
    std::vector<CampaignClient::Reply> replies(kTotal);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 4; ++t)
        threads.emplace_back([&, t] {
            CampaignClient client(
                chaosClient(p.socketPath, 100 + t));
            for (unsigned i = t; i < kTotal; i += 4) {
                unsigned logical = i % kDistinct;
                replies[i] = client.submit(spinRequest(
                    "chaos-" + std::to_string(logical), 20,
                    logical + 1));
            }
        });
    for (auto &t : threads)
        t.join();

    // Every request answered ok, and answers for the same key are
    // byte-identical however they were produced (computed, memo,
    // replay after a dropped response).
    std::map<std::string, std::string> byId;
    for (unsigned i = 0; i < kTotal; ++i) {
        ASSERT_EQ(replies[i].outcome, CampaignClient::Outcome::ok)
            << "request " << i << ": " << replies[i].error;
        EXPECT_EQ(replies[i].response.at("status").asString(),
                  "ok");
        const std::string id =
            replies[i].response.at("id").asString();
        const std::string payload =
            replies[i].response.at("payload").dump();
        auto [it, fresh] = byId.emplace(id, payload);
        if (!fresh) {
            EXPECT_EQ(it->second, payload)
                << "divergent payload for " << id;
        }
    }

    auto s = server.stats();
    EXPECT_GT(s.faultsInjected, 0u);
    // At-most-one execution per distinct key, however many times
    // the wire forced a resubmit.
    EXPECT_EQ(s.executions, kDistinct);
    EXPECT_GE(s.duplicates + s.memoHits, kTotal - kDistinct);
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServerChaos, MemoHitSurvivesDroppedResponse)
{
    // Regression: a memo-hit response that lands on a fault tick
    // once self-deadlocked the server (respond() re-took the stats
    // lock the memo path was still holding), wedging every later
    // connection. Drive a memo hit straight into a dropped
    // response and insist the retry is answered.
    CampaignServer::Params p;
    p.socketPath = ::testing::TempDir() + "chaos_memo_drop.sock";
    p.workers = 1;
    p.watchdogInterval = std::chrono::milliseconds(2);
    p.faults.dropEveryN = 2; // 2nd faultable response: the memo hit
    CampaignServer server(p);
    server.start();

    CampaignClient client(chaosClient(p.socketPath, 9));
    auto first = client.submit(spinRequest("memo-a", 10, 42));
    ASSERT_EQ(first.outcome, CampaignClient::Outcome::ok);

    // Fresh id, same (config, seed): served from the memo. The
    // drop eats the first answer; the retry must get through.
    auto second = client.submit(spinRequest("memo-b", 10, 42));
    ASSERT_EQ(second.outcome, CampaignClient::Outcome::ok);
    EXPECT_EQ(second.response.at("outcome").asString(), "memo");
    EXPECT_EQ(second.response.at("payload").dump(),
              first.response.at("payload").dump());
    EXPECT_GT(second.attempts, 1u);

    // And the server is still responsive, not wedged.
    auto s = server.stats();
    EXPECT_GE(s.memoHits, 2u);
    EXPECT_GT(s.faultsInjected, 0u);
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServerChaos, InjectedWorkerCrashesAreAbsorbed)
{
    CampaignServer::Params p;
    p.socketPath = ::testing::TempDir() + "chaos_crash.sock";
    p.workers = 2;
    p.watchdogInterval = std::chrono::milliseconds(2);
    p.attempts = 2;
    p.faults.crashEveryN = 1; // every execution crashes once
    CampaignServer server(p);
    server.start();

    CampaignClient client(chaosClient(p.socketPath, 7));
    for (unsigned i = 0; i < 4; ++i) {
        auto r = client.submit(spinRequest(
            "crashy-" + std::to_string(i), 10, i + 1));
        ASSERT_EQ(r.outcome, CampaignClient::Outcome::ok);
        EXPECT_EQ(r.response.at("status").asString(), "ok");
        // The supervisor's retry ladder absorbed the crash.
        EXPECT_EQ(r.response.at("outcome").asString(),
                  "okRetried");
    }
    auto s = server.stats();
    EXPECT_EQ(s.executions, 4u);
    EXPECT_GE(s.faultsInjected, 4u);
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServerChaos, CrashRetryExhaustionIsAnExplicitError)
{
    CampaignServer::Params p;
    p.socketPath = ::testing::TempDir() + "chaos_exhaust.sock";
    p.workers = 1;
    p.watchdogInterval = std::chrono::milliseconds(2);
    p.attempts = 1; // the injected crash has no retry to hide in
    p.faults.crashEveryN = 1;
    CampaignServer server(p);
    server.start();

    CampaignClient client(chaosClient(p.socketPath, 8));
    auto r = client.submit(spinRequest("doomed", 10, 1));
    ASSERT_EQ(r.outcome, CampaignClient::Outcome::ok);
    EXPECT_EQ(r.response.at("status").asString(), "error");
    EXPECT_EQ(r.response.at("outcome").asString(), "quarantined");
    EXPECT_EQ(server.stats().failed, 1u);
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServerChaos, DrainUnderLoadAnswersEverything)
{
    CampaignServer::Params p;
    p.socketPath = ::testing::TempDir() + "chaos_drain.sock";
    p.workers = 2;
    p.watchdogInterval = std::chrono::milliseconds(2);
    CampaignServer server(p);
    server.start();

    // A burst of 8 clients; the drain lands mid-burst. Every
    // submit must get an explicit answer: a result for admitted
    // work, a shed for late arrivals — never silence.
    std::atomic<unsigned> ok{0}, shed{0}, other{0};
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < 8; ++i)
        threads.emplace_back([&, i] {
            auto cp = chaosClient(p.socketPath, 200 + i);
            cp.maxAttempts = 1; // a drain shed is terminal here
            CampaignClient client(cp);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10 * i));
            auto r = client.submit(spinRequest(
                "drain-" + std::to_string(i), 80, i + 1));
            if (r.outcome == CampaignClient::Outcome::ok)
                ++ok;
            else if (r.outcome
                     == CampaignClient::Outcome::shedGiveUp)
                ++shed;
            else
                ++other;
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(35));
    server.requestDrain();
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(other.load(), 0u);
    EXPECT_EQ(ok.load() + shed.load(), 8u);
    EXPECT_GT(ok.load(), 0u); // the early ones got in
    EXPECT_TRUE(server.stop());

    auto s = server.stats();
    EXPECT_EQ(s.completed + s.shed, s.submitted);
    EXPECT_EQ(s.running, 0u);
    EXPECT_EQ(s.queueDepth, 0u);
}

TEST(CampaignServerChaos, BlownDrainBudgetCancelsButStillAnswers)
{
    CampaignServer::Params p;
    p.socketPath = ::testing::TempDir() + "chaos_budget.sock";
    p.workers = 1;
    p.watchdogInterval = std::chrono::milliseconds(2);
    p.cancelGrace = std::chrono::milliseconds(500);
    p.drainTimeout = std::chrono::milliseconds(60);
    CampaignServer server(p);
    server.start();

    // One long spin in flight and one queued behind it; the drain
    // budget (60 ms) expires long before either would finish.
    std::vector<CampaignClient::Reply> replies(2);
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < 2; ++i)
        threads.emplace_back([&, i] {
            CampaignClient client(
                chaosClient(p.socketPath, 300 + i));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20 * i));
            replies[i] = client.submit(spinRequest(
                "straggler-" + std::to_string(i), 5000, i + 1));
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(server.stop()); // dirty: stragglers cancelled
    for (auto &t : threads)
        t.join();

    for (unsigned i = 0; i < 2; ++i) {
        ASSERT_EQ(replies[i].outcome, CampaignClient::Outcome::ok)
            << "straggler " << i << " got silence: "
            << replies[i].error;
        EXPECT_EQ(replies[i].response.at("status").asString(),
                  "cancelled");
    }
    auto s = server.stats();
    EXPECT_EQ(s.cancelled, 2u);
    EXPECT_EQ(s.completed, s.submitted);
}

} // namespace
