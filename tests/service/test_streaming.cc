/**
 * @file
 * The live telemetry plane, end to end over a real Unix socket:
 * streaming progress frames (ordering and rate limiting, with and
 * without injected wire faults), the health endpoint (JSON and
 * Prometheus, reconciled against client-observed outcomes), the
 * request-level trace attribution in result frames, and the
 * structured straggler log of a blown drain budget.
 */

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hh"
#include "service/server.hh"

using namespace contutto::service;
using Clock = std::chrono::steady_clock;

namespace
{

/** Self-cleaning socket/file path under the test temp dir. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

CampaignServer::Params
fastServer(const std::string &socket)
{
    CampaignServer::Params p;
    p.socketPath = socket;
    p.workers = 2;
    p.watchdogInterval = std::chrono::milliseconds(2);
    p.cancelGrace = std::chrono::milliseconds(500);
    p.progressPeriod = std::chrono::milliseconds(20);
    p.samplePeriod = std::chrono::milliseconds(10);
    return p;
}

CampaignClient::Params
fastClient(const std::string &socket)
{
    CampaignClient::Params p;
    p.socketPath = socket;
    p.callTimeout = std::chrono::seconds(60);
    p.responseTimeout = std::chrono::seconds(30);
    p.backoffBase = std::chrono::milliseconds(1);
    return p;
}

Request
spinRequest(const std::string &id, std::uint64_t spinMs,
            std::uint64_t seed = 1)
{
    Request r;
    r.id = id;
    r.kind = "spin";
    r.seed = seed;
    r.config = Json::object();
    r.config.set("spinMs", Json::number(spinMs));
    return r;
}

/**
 * Raw-socket observer: sends one request line and records every
 * response line verbatim, so frame ordering and "nothing after the
 * terminal result" can be asserted at the wire level (the client
 * library would hide both).
 */
class RawStream
{
  public:
    explicit RawStream(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr))
            != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~RawStream()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    bool
    send(const std::string &line)
    {
        std::string out = line + "\n";
        return ::send(fd_, out.data(), out.size(), MSG_NOSIGNAL)
               == ssize_t(out.size());
    }

    /** One line within @p timeout; empty on timeout/EOF. */
    std::string
    nextLine(std::chrono::milliseconds timeout)
    {
        const auto deadline = Clock::now() + timeout;
        for (;;) {
            std::size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline
                                           - Clock::now());
            if (left.count() <= 0)
                return {};
            pollfd pfd{fd_, POLLIN, 0};
            int r = ::poll(&pfd, 1, int(left.count()));
            if (r <= 0)
                continue;
            char chunk[4096];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return {};
            buf_.append(chunk, std::size_t(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

/** Collected frames of one streamed submit. */
struct StreamLog
{
    std::vector<Json> progress;
    std::vector<Json> results;
    unsigned garbled = 0;
};

StreamLog
streamSubmit(const std::string &socket, Request req)
{
    req.stream = true;
    StreamLog log;
    RawStream s(socket);
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(s.send(req.toJson().dump()));
    // Drain until the terminal result, then linger several progress
    // periods to catch any frame illegally emitted after it.
    bool sawResult = false;
    for (;;) {
        std::string line =
            s.nextLine(std::chrono::milliseconds(
                sawResult ? 150 : 10000));
        if (line.empty())
            break;
        try {
            Json j = Json::parse(line);
            const std::string type = j.getString("type", "?");
            if (type == "progress")
                log.progress.push_back(std::move(j));
            else if (type == "result") {
                log.results.push_back(std::move(j));
                sawResult = true;
            } else
                ADD_FAILURE() << "unexpected frame: " << line;
        } catch (const ProtocolError &) {
            ++log.garbled;
        }
        if (sawResult && log.results.size() > 1)
            break;
    }
    return log;
}

void
expectMonotoneSeq(const StreamLog &log)
{
    std::uint64_t last = 0;
    for (const Json &p : log.progress) {
        std::uint64_t seq = p.getU64("seq", 0);
        EXPECT_GT(seq, last) << "seq must be strictly increasing";
        last = seq;
    }
}

} // namespace

TEST(Streaming, ProgressFramesThenExactlyOneResult)
{
    TempPath sock("stream_basic.sock");
    CampaignServer server(fastServer(sock.str()));
    server.start();
    CampaignClient probe(fastClient(sock.str()));
    ASSERT_TRUE(probe.waitReady(std::chrono::seconds(10)));

    StreamLog log =
        streamSubmit(sock.str(), spinRequest("st-1", 250));

    // A 250 ms spin at a 20 ms progress period must surface at
    // least 3 rate-limited frames before the terminal result.
    EXPECT_GE(log.progress.size(), 3u);
    ASSERT_EQ(log.results.size(), 1u);
    EXPECT_EQ(log.garbled, 0u);
    expectMonotoneSeq(log);
    EXPECT_EQ(log.results[0].at("status").asString(), "ok");

    // Frames report the request's life: elapsed advances, and the
    // spin campaign publishes workDone/workTotal while running.
    bool sawRunningWork = false;
    for (const Json &p : log.progress) {
        EXPECT_EQ(p.at("id").asString(), "st-1");
        const std::string state = p.getString("state", "?");
        EXPECT_TRUE(state == "queued" || state == "running");
        if (state == "running" && p.getU64("workTotal", 0) == 250
            && p.getU64("workDone", 0) > 0)
            sawRunningWork = true;
    }
    EXPECT_TRUE(sawRunningWork);

    // The supervisor tick heartbeat reached the frames.
    EXPECT_GT(log.progress.back().getU64("heartbeats", 0), 0u);

    EXPECT_TRUE(server.stop());
}

TEST(Streaming, NonStreamingSubmitGetsNoProgressFrames)
{
    TempPath sock("stream_off.sock");
    CampaignServer server(fastServer(sock.str()));
    server.start();
    CampaignClient probe(fastClient(sock.str()));
    ASSERT_TRUE(probe.waitReady(std::chrono::seconds(10)));

    RawStream s(sock.str());
    ASSERT_TRUE(s.ok());
    Request req = spinRequest("off-1", 120);
    ASSERT_TRUE(s.send(req.toJson().dump()));
    std::string line = s.nextLine(std::chrono::seconds(10));
    ASSERT_FALSE(line.empty());
    Json j = Json::parse(line);
    // First (and only) frame is already the result.
    EXPECT_EQ(j.at("type").asString(), "result");
    EXPECT_TRUE(server.stop());
}

TEST(Streaming, SurvivesDroppedAndDelayedProgressFrames)
{
    TempPath sock("stream_faults.sock");
    CampaignServer::Params p = fastServer(sock.str());
    // Drop every 2nd and delay every 3rd progress frame. The same
    // plan governs result responses on their own cadence; with one
    // submit the single result (tick 1) fires neither fault.
    p.faults.dropEveryN = 2;
    p.faults.delayEveryN = 3;
    p.faults.delayMs = 30;
    CampaignServer server(p);
    server.start();
    CampaignClient probe(fastClient(sock.str()));
    ASSERT_TRUE(probe.waitReady(std::chrono::seconds(10)));

    StreamLog log =
        streamSubmit(sock.str(), spinRequest("flt-1", 400));

    // Terminal contract under fire: exactly one result, nothing
    // after it, and the frames that did arrive stay monotone (the
    // drops show as seq gaps, never as reordering).
    ASSERT_EQ(log.results.size(), 1u);
    EXPECT_EQ(log.results[0].at("status").asString(), "ok");
    EXPECT_GE(log.progress.size(), 3u);
    expectMonotoneSeq(log);
    std::uint64_t maxSeq = log.progress.back().getU64("seq", 0);
    // Dropped frames consumed seqs: the top seq must exceed the
    // delivered count, proving the gaps are real.
    EXPECT_GT(maxSeq, std::uint64_t(log.progress.size()));

    // The server counted the injected faults.
    auto snap = server.metricsSnapshot();
    EXPECT_GT(
        snap.counterValue("campaignd_faults_injected_total"), 0u);
    EXPECT_TRUE(server.stop());
}

TEST(Streaming, HealthCountersReconcileWithClientOutcomes)
{
    TempPath sock("health_rec.sock");
    CampaignServer server(fastServer(sock.str()));
    server.start();
    CampaignClient client(fastClient(sock.str()));
    ASSERT_TRUE(client.waitReady(std::chrono::seconds(10)));

    // A deterministic little history:
    //   3 distinct executions,
    //   1 duplicate id (replayed, no new execution),
    //   1 fresh id with a known (config, seed) (memo hit).
    for (int i = 0; i < 3; ++i) {
        auto r = client.submit(
            spinRequest("h-" + std::to_string(i), 20,
                        std::uint64_t(i + 1)));
        ASSERT_EQ(r.outcome, CampaignClient::Outcome::ok);
    }
    auto dup = client.submit(spinRequest("h-0", 20, 1));
    ASSERT_EQ(dup.outcome, CampaignClient::Outcome::ok);
    auto memo = client.submit(spinRequest("h-new", 20, 2));
    ASSERT_EQ(memo.outcome, CampaignClient::Outcome::ok);
    EXPECT_EQ(memo.response.at("outcome").asString(), "memo");

    // The health endpoint over the wire, JSON form.
    auto health = client.health();
    ASSERT_EQ(health.outcome, CampaignClient::Outcome::ok);
    const Json &m = health.response.at("metrics");
    const Json &c = m.at("counters");
    EXPECT_EQ(c.at("campaignd_submitted_total").asU64(), 5u);
    EXPECT_EQ(c.at("campaignd_accepted_total").asU64(), 3u);
    EXPECT_EQ(c.at("campaignd_executions_total").asU64(), 3u);
    EXPECT_EQ(c.at("campaignd_duplicates_total").asU64(), 1u);
    EXPECT_EQ(c.at("campaignd_memo_hits_total").asU64(), 1u);
    // Only the 3 executed originals missed: the replay answers
    // before the memo probe, the memo hit never reaches the miss
    // counter.
    EXPECT_EQ(c.at("campaignd_memo_misses_total").asU64(), 3u);
    // completed = 3 executions + 1 memo fast path (the replay
    // answers from the done window without re-completing).
    EXPECT_EQ(c.at("campaignd_completed_total").asU64(), 4u);
    const Json &g = m.at("gauges");
    EXPECT_EQ(g.at("campaignd_inflight").asI64(), 0);
    EXPECT_EQ(g.at("campaignd_running").asI64(), 0);
    EXPECT_EQ(g.at("campaignd_queue_depth").asI64(), 0);

    // Histogram coherence over the wire: count == sum(buckets).
    const Json &hist =
        m.at("histograms").at("campaignd_exec_ms");
    std::uint64_t total = 0;
    for (const Json &b : hist.at("buckets").items())
        total += b.asU64();
    EXPECT_EQ(hist.at("count").asU64(), total);
    EXPECT_EQ(total, 3u); // one exec histogram entry per execution

    // And the Prometheus exposition agrees on the counters.
    auto prom = client.health("prometheus");
    ASSERT_EQ(prom.outcome, CampaignClient::Outcome::ok);
    const std::string text =
        prom.response.at("text").asString();
    EXPECT_NE(text.find("# TYPE campaignd_submitted_total "
                        "counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("campaignd_submitted_total 5\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("campaignd_exec_ms_bucket{le=\"+Inf\"} 3\n"),
        std::string::npos);

    // The sampler ticked while all this ran.
    EXPECT_GT(c.at("campaignd_sampler_ticks_total").asU64(), 0u);
    EXPECT_TRUE(server.stop());
}

TEST(Streaming, TraceAttributionSumsToClientLatency)
{
    TempPath sock("trace_sum.sock");
    CampaignServer server(fastServer(sock.str()));
    server.start();
    CampaignClient client(fastClient(sock.str()));
    ASSERT_TRUE(client.waitReady(std::chrono::seconds(10)));

    Request req = spinRequest("tr-1", 150);
    req.traceId = 77;

    const auto t0 = Clock::now();
    auto rep = client.submit(req);
    const auto e2eUs = std::uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - t0)
            .count());
    ASSERT_EQ(rep.outcome, CampaignClient::Outcome::ok);

    const Json &trace = rep.response.at("trace");
    EXPECT_EQ(trace.at("id").asU64(), 77u);
    const std::uint64_t queueUs = trace.at("queueUs").asU64();
    const std::uint64_t execUs = trace.at("execUs").asU64();
    const std::uint64_t serializeUs =
        trace.at("serializeUs").asU64();
    const std::uint64_t totalUs = trace.at("totalUs").asU64();

    // Exact partition: the three stages sum to the reported total.
    EXPECT_EQ(totalUs, queueUs + execUs + serializeUs);
    // The execution stage contains the 150 ms spin.
    EXPECT_GE(execUs, 140000u);
    // Server-side total is bounded by what the client saw, and the
    // client-side overhead (connect, write, read, parse) accounts
    // for the remainder to within one sampler period's slack.
    EXPECT_LE(totalUs, e2eUs);
    EXPECT_LE(e2eUs - totalUs, 100000u);

    // A server-assigned id when the client offers none.
    auto rep2 = client.submit(spinRequest("tr-2", 20, 2));
    ASSERT_EQ(rep2.outcome, CampaignClient::Outcome::ok);
    EXPECT_NE(rep2.response.at("trace").at("id").asU64(), 0u);

    EXPECT_TRUE(server.stop());
}

TEST(Streaming, MemoHitCarriesZeroQueueAndExecAttribution)
{
    TempPath sock("trace_memo.sock");
    CampaignServer server(fastServer(sock.str()));
    server.start();
    CampaignClient client(fastClient(sock.str()));
    ASSERT_TRUE(client.waitReady(std::chrono::seconds(10)));

    auto first = client.submit(spinRequest("m-1", 30));
    ASSERT_EQ(first.outcome, CampaignClient::Outcome::ok);
    auto hit = client.submit(spinRequest("m-2", 30));
    ASSERT_EQ(hit.outcome, CampaignClient::Outcome::ok);
    ASSERT_EQ(hit.response.at("outcome").asString(), "memo");

    const Json &trace = hit.response.at("trace");
    EXPECT_EQ(trace.at("queueUs").asU64(), 0u);
    EXPECT_EQ(trace.at("execUs").asU64(), 0u);
    EXPECT_EQ(trace.at("totalUs").asU64(),
              trace.at("serializeUs").asU64());
    EXPECT_TRUE(server.stop());
}

TEST(Streaming, BlownDrainLogsStructuredStragglerLines)
{
    TempPath sock("drain_log.sock");
    CampaignServer::Params p = fastServer(sock.str());
    p.workers = 1;
    p.drainTimeout = std::chrono::milliseconds(50);
    CampaignServer server(p);
    server.start();
    CampaignClient probe(fastClient(sock.str()));
    ASSERT_TRUE(probe.waitReady(std::chrono::seconds(10)));

    // One long spin occupying the only worker, one queued behind
    // it; the 50 ms drain budget cannot cover the 2 s spin, so
    // stop() must cancel both and log each as a structured line.
    std::thread runner([&] {
        CampaignClient c(fastClient(sock.str()));
        Request r = spinRequest("straggler-run", 2000);
        r.deadlineMs = 30000;
        c.submit(r);
    });
    std::thread queued([&] {
        CampaignClient c(fastClient(sock.str()));
        c.submit(spinRequest("straggler-q", 2000, 2));
    });
    // Let both reach the server before draining.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(server.stop()); // dirty drain by construction
    std::string err = ::testing::internal::GetCapturedStderr();
    runner.join();
    queued.join();

    EXPECT_NE(err.find("drain-cancel"), std::string::npos);
    EXPECT_NE(err.find("\"id\":\"straggler-run\""),
              std::string::npos);
    EXPECT_NE(err.find("\"state\":\"running\""),
              std::string::npos);
    EXPECT_NE(err.find("\"id\":\"straggler-q\""),
              std::string::npos);
    EXPECT_NE(err.find("\"state\":\"queued\""),
              std::string::npos);
    EXPECT_NE(err.find("\"deadlineRemainingMs\":"),
              std::string::npos);

    auto snap = server.metricsSnapshot();
    EXPECT_EQ(
        snap.counterValue("campaignd_drain_cancelled_total"), 2u);
}
