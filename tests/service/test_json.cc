/**
 * @file
 * Wire-format JSON: strict parsing (malformed input becomes a
 * ProtocolError, never UB), exact u64 round-trips, and the
 * determinism the memo cache leans on — dump() is a pure function
 * of the value.
 */

#include <gtest/gtest.h>

#include <string>

#include "service/json.hh"

using namespace contutto::service;

namespace
{

TEST(Json, ScalarsRoundTrip)
{
    EXPECT_EQ(Json::parse("null").kind(), Json::Kind::null);
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_FALSE(Json::parse("false").asBool());
    EXPECT_EQ(Json::parse("42").asU64(), 42u);
    EXPECT_EQ(Json::parse("-7").asI64(), -7);
    EXPECT_DOUBLE_EQ(Json::parse("2.5").asDouble(), 2.5);
    EXPECT_EQ(Json::parse("\"hi\\n\"").asString(), "hi\n");
}

TEST(Json, U64RoundTripsExactly)
{
    // The seed space is the full 64 bits; a detour through double
    // would corrupt large seeds. The parser must keep the token.
    const std::string max = "18446744073709551615";
    Json j = Json::parse(max);
    EXPECT_EQ(j.asU64(), 18446744073709551615ull);
    EXPECT_EQ(j.dump(), max);
    EXPECT_EQ(Json::number(std::uint64_t(18446744073709551615ull))
                  .dump(),
              max);
}

TEST(Json, DumpIsDeterministicAndInsertionOrdered)
{
    Json j = Json::object();
    j.set("zebra", Json::number(std::uint64_t(1)));
    j.set("alpha", Json::string("x"));
    Json inner = Json::array();
    inner.append(Json::boolean(true));
    inner.append(Json::makeNull());
    j.set("list", inner);
    const std::string once = j.dump();
    EXPECT_EQ(once, "{\"zebra\":1,\"alpha\":\"x\",\"list\":"
                    "[true,null]}");
    // Parse -> dump is the identity on the wire form.
    EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(Json, StrictIntegerReadsRejectFloats)
{
    EXPECT_THROW(Json::parse("1.5").asU64(), ProtocolError);
    EXPECT_THROW(Json::parse("1e3").asU64(), ProtocolError);
    EXPECT_THROW(Json::parse("-1").asU64(), ProtocolError);
    EXPECT_THROW(Json::parse("true").asU64(), ProtocolError);
    EXPECT_THROW(Json::parse("\"7\"").asU64(), ProtocolError);
}

TEST(Json, MalformedInputThrows)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\":1,}", "nul",
          "\"unterminated", "{\"a\":1}trailing",
          "\"bad\\q\"", "{\"a\":1 \"b\":2}", "[1 2]"})
        EXPECT_THROW(Json::parse(bad), ProtocolError)
            << "accepted: " << bad;
}

TEST(Json, DuplicateKeysRejected)
{
    EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), ProtocolError);
}

TEST(Json, DepthCapStopsRecursion)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    for (int i = 0; i < 200; ++i)
        deep += "]";
    EXPECT_THROW(Json::parse(deep), ProtocolError);
}

TEST(Json, ObjectAccessors)
{
    Json j = Json::parse("{\"a\":1,\"b\":\"two\"}");
    EXPECT_EQ(j.at("a").asU64(), 1u);
    EXPECT_EQ(j.find("b")->asString(), "two");
    EXPECT_EQ(j.find("missing"), nullptr);
    EXPECT_THROW(j.at("missing"), ProtocolError);
    EXPECT_EQ(j.getU64("a", 9), 1u);
    EXPECT_EQ(j.getU64("zzz", 9), 9u);
    EXPECT_EQ(j.getString("b", "d"), "two");
}

} // namespace
