/**
 * @file
 * Protocol layer: request validation fails fast and precisely, the
 * config hash is stable / seed-free / knob-sensitive, and a
 * CampaignJob's payload is deterministic and cancellable.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "service/protocol.hh"
#include "trace/generate.hh"

using namespace contutto::service;

namespace
{

Json
parseConfig(const char *text)
{
    return Json::parse(text);
}

/** Generate a small deterministic binary trace for the "trace"
 *  kind; returns its path. */
std::string
makeTrace(const std::string &leaf, std::uint64_t seed,
          std::uint64_t records = 2000)
{
    contutto::trace::GenerateSpec spec;
    spec.shape = contutto::trace::Shape::qsort;
    spec.records = records;
    spec.seed = seed;
    spec.meanDelay = contutto::nanoseconds(50);
    std::string path = ::testing::TempDir() + "proto_" + leaf;
    contutto::trace::generate(spec, path);
    return path;
}

Json
traceConfig(const std::string &path, const char *extra = nullptr)
{
    Json cfg = extra ? Json::parse(extra) : Json::object();
    cfg.set("path", Json::string(path));
    return cfg;
}

TEST(Protocol, RequestRoundTrip)
{
    Request r;
    r.id = "sweep-17";
    r.kind = "ras_soak";
    r.seed = 0xdeadbeefcafef00dull;
    r.priority = -3;
    r.deadlineMs = 1500;
    r.config = parseConfig("{\"ops\":64}");
    Request back = Request::fromJson(r.toJson());
    EXPECT_EQ(back.id, r.id);
    EXPECT_EQ(back.kind, r.kind);
    EXPECT_EQ(back.seed, r.seed);
    EXPECT_EQ(back.priority, r.priority);
    EXPECT_EQ(back.deadlineMs, r.deadlineMs);
    EXPECT_EQ(back.config.dump(), r.config.dump());
}

TEST(Protocol, RequestValidation)
{
    Json j = Json::parse(
        "{\"type\":\"submit\",\"kind\":\"spin\"}");
    EXPECT_THROW(Request::fromJson(j), ProtocolError); // no id
    j.set("id", Json::string(""));
    EXPECT_THROW(Request::fromJson(j), ProtocolError); // empty id
    j.set("id", Json::string(std::string(300, 'x')));
    EXPECT_THROW(Request::fromJson(j), ProtocolError); // huge id
    j.set("id", Json::string("ok"));
    j.set("config", Json::number(std::uint64_t(1)));
    EXPECT_THROW(Request::fromJson(j), ProtocolError); // non-object
}

TEST(Protocol, UnknownKindAndKnobsRejectedAtAdmission)
{
    EXPECT_THROW(CampaignJob("nope", 1, Json::object()),
                 ProtocolError);
    EXPECT_THROW(
        CampaignJob("ras_soak", 1, parseConfig("{\"opz\":3}")),
        ProtocolError);
    EXPECT_THROW(
        CampaignJob("crash", 1, parseConfig("{\"powerCuts\":0}")),
        ProtocolError);
    EXPECT_THROW(
        CampaignJob("spin", 1, parseConfig("{\"spinMs\":999999}")),
        ProtocolError);
    // u32 knobs reject out-of-range u64 values.
    EXPECT_THROW(
        CampaignJob("ras_soak", 1,
                    parseConfig("{\"ops\":5000000000}")),
        ProtocolError);
}

TEST(Protocol, ConfigHashIsStableSeedFreeAndKnobSensitive)
{
    Json cfg = parseConfig("{\"ops\":64,\"bitFlips\":8}");
    CampaignJob a("ras_soak", 1, cfg);
    CampaignJob b("ras_soak", 999, cfg); // different seed
    CampaignJob c("ras_soak", 1, parseConfig(
                      "{\"bitFlips\":8,\"ops\":64}")); // reordered
    EXPECT_EQ(a.configHash(), b.configHash());
    EXPECT_EQ(a.configHash(), c.configHash());

    CampaignJob d("ras_soak", 1,
                  parseConfig("{\"ops\":65,\"bitFlips\":8}"));
    EXPECT_NE(a.configHash(), d.configHash());

    // Kinds are domain-separated even with default knobs.
    CampaignJob soak("ras_soak", 1, Json::object());
    CampaignJob crash("crash", 1, Json::object());
    CampaignJob spin("spin", 1, Json::object());
    EXPECT_NE(soak.configHash(), crash.configHash());
    EXPECT_NE(soak.configHash(), spin.configHash());
    EXPECT_NE(crash.configHash(), spin.configHash());
}

TEST(Protocol, SpecHashMatchesJobHash)
{
    // The bench binaries stamp Spec::hash() into --stats-json; the
    // service derives the same key from the JSON config. They must
    // agree or the memo key is useless across tools.
    contutto::ras::SoakCampaign::Spec spec;
    spec.ops = 64;
    spec.seed = 42; // must NOT matter
    CampaignJob job("ras_soak", 7, parseConfig("{\"ops\":64}"));
    EXPECT_EQ(job.configHash(), spec.hash());

    contutto::storage::CrashRecoveryCampaign::Spec cspec;
    cspec.powerCuts = 2;
    CampaignJob cjob("crash", 7,
                     parseConfig("{\"powerCuts\":2}"));
    EXPECT_EQ(cjob.configHash(), cspec.hash());
}

TEST(Protocol, PayloadIsDeterministic)
{
    std::atomic<bool> cancel{false};
    Json cfg = parseConfig("{\"ops\":48,\"bitFlips\":6}");
    CampaignJob a("ras_soak", 11, cfg);
    CampaignJob b("ras_soak", 11, cfg);
    EXPECT_EQ(a.run(cancel), b.run(cancel));
    // And the payload is parseable, self-describing JSON.
    Json p = Json::parse(a.run(cancel));
    EXPECT_EQ(p.at("kind").asString(), "ras_soak");
    EXPECT_EQ(p.at("seed").asU64(), 11u);
    EXPECT_EQ(p.at("configHash").asString(),
              hashHex(a.configHash()));
}

TEST(Protocol, SpecKindValidatesItsKnobs)
{
    EXPECT_THROW(
        CampaignJob("spec", 1, parseConfig("{\"nope\":1}")),
        ProtocolError);
    EXPECT_THROW(
        CampaignJob("spec", 1, parseConfig("{\"benchmark\":12}")),
        ProtocolError);
    EXPECT_THROW(
        CampaignJob("spec", 1, parseConfig("{\"buffer\":2}")),
        ProtocolError);
    // Centaur allows knob 0-3; ConTutto 0-7.
    EXPECT_THROW(
        CampaignJob("spec", 1,
                    parseConfig("{\"buffer\":0,\"knob\":4}")),
        ProtocolError);
    EXPECT_NO_THROW(
        CampaignJob("spec", 1,
                    parseConfig("{\"buffer\":1,\"knob\":7}")));
    EXPECT_THROW(
        CampaignJob("spec", 1, parseConfig("{\"instructions\":0}")),
        ProtocolError);
    // Sampled mode validates the window shape at admission.
    EXPECT_THROW(
        CampaignJob("spec", 1,
                    parseConfig("{\"sampleMode\":1,"
                                "\"sampleWindow\":0}")),
        ProtocolError);
    EXPECT_THROW(
        CampaignJob("spec", 1,
                    parseConfig("{\"sampleMode\":1,"
                                "\"samplePeriod\":8}")),
        ProtocolError);
}

TEST(Protocol, SpecHashFoldsSamplingKnobs)
{
    Json detailed = parseConfig("{\"benchmark\":3}");
    CampaignJob a("spec", 1, detailed);
    CampaignJob b("spec", 999, detailed); // seed never in the hash
    EXPECT_EQ(a.configHash(), b.configHash());
    EXPECT_FALSE(a.sampled());

    // Turning sampling on moves the hash: a sampled run must never
    // share a memo entry with a detailed one.
    CampaignJob s("spec", 1,
                  parseConfig("{\"benchmark\":3,\"sampleMode\":1}"));
    EXPECT_TRUE(s.sampled());
    EXPECT_NE(a.configHash(), s.configHash());

    // And so does each sampling knob.
    CampaignJob s2("spec", 1,
                   parseConfig("{\"benchmark\":3,\"sampleMode\":1,"
                               "\"samplePeriod\":8192}"));
    EXPECT_NE(s.configHash(), s2.configHash());
}

TEST(Protocol, SpecPayloadDeterministicInBothRegimes)
{
    std::atomic<bool> cancel{false};
    Json cfg = parseConfig(
        "{\"benchmark\":3,\"instructions\":20000,\"sampleMode\":1,"
        "\"sampleWarmup\":8,\"sampleWindow\":32,"
        "\"samplePeriod\":256}");
    CampaignJob a("spec", 11, cfg);
    CampaignJob b("spec", 11, cfg);
    std::string pa = a.run(cancel);
    EXPECT_EQ(pa, b.run(cancel));

    Json p = Json::parse(pa);
    EXPECT_EQ(p.at("kind").asString(), "spec");
    EXPECT_EQ(p.at("benchmark").asString(), "429.mcf");
    EXPECT_EQ(p.at("simMode").asString(), "sampled");
    EXPECT_EQ(p.at("instructions").asU64(), 20000u);
    EXPECT_GT(p.at("runtimeTicks").asU64(), 0u);
    EXPECT_GT(p.at("windows").asU64(), 0u);
    EXPECT_GT(p.at("fastForwardMisses").asU64(), 0u);

    // Detailed regime: no sampling members, simMode says so.
    CampaignJob d("spec", 11,
                  parseConfig("{\"benchmark\":3,"
                              "\"instructions\":20000}"));
    Json pd = Json::parse(d.run(cancel));
    EXPECT_EQ(pd.at("simMode").asString(), "detailed");
    EXPECT_EQ(pd.find("windows"), nullptr);
}

TEST(Protocol, ResultFramesCarrySimMode)
{
    CampaignJob sampled(
        "spec", 1,
        parseConfig("{\"sampleMode\":1,\"sampleWindow\":32,"
                    "\"sampleWarmup\":8,\"samplePeriod\":256}"));
    Json res = makeResult("id1", "ok", "ok",
                          sampled.configHash(), 1, "");
    attachSimMode(res, sampled);
    EXPECT_EQ(res.at("simMode").asString(), "sampled");
    EXPECT_EQ(res.at("sampling").at("windowUnits").asU64(), 32u);
    EXPECT_EQ(res.at("sampling").at("periodUnits").asU64(), 256u);

    CampaignJob spin("spin", 1, Json::object());
    Json res2 = makeResult("id2", "ok", "ok", spin.configHash(), 1,
                           "");
    attachSimMode(res2, spin);
    EXPECT_EQ(res2.at("simMode").asString(), "detailed");
    EXPECT_EQ(res2.find("sampling"), nullptr);
}

TEST(Protocol, TraceKindValidatesKnobsAtAdmission)
{
    const std::string path = makeTrace("validate.bin", 1);

    // No path, unknown knob, or a path that is not a valid trace:
    // rejected at admission, before any queue wait.
    EXPECT_THROW(CampaignJob("trace", 1, Json::object()),
                 ProtocolError);
    EXPECT_THROW(
        CampaignJob("trace", 1, traceConfig(path, "{\"nope\":1}")),
        ProtocolError);
    EXPECT_THROW(
        CampaignJob("trace", 1,
                    traceConfig(path + ".does_not_exist")),
        ProtocolError);

    EXPECT_THROW(
        CampaignJob("trace", 1, traceConfig(path, "{\"buffer\":2}")),
        ProtocolError);
    // Centaur allows knob 0-3; ConTutto 0-7.
    EXPECT_THROW(
        CampaignJob("trace", 1,
                    traceConfig(path, "{\"buffer\":0,\"knob\":4}")),
        ProtocolError);
    EXPECT_NO_THROW(
        CampaignJob("trace", 1,
                    traceConfig(path, "{\"buffer\":1,\"knob\":7}")));
    EXPECT_THROW(
        CampaignJob("trace", 1, traceConfig(path, "{\"timed\":2}")),
        ProtocolError);
    EXPECT_THROW(
        CampaignJob("trace", 1, traceConfig(path, "{\"window\":0}")),
        ProtocolError);
    EXPECT_THROW(
        CampaignJob("trace", 1,
                    traceConfig(path, "{\"sampleMode\":1,"
                                      "\"sampleWindow\":0}")),
        ProtocolError);

    // A structurally corrupt file is an admission failure too.
    const std::string bad =
        ::testing::TempDir() + "proto_corrupt.bin";
    {
        std::ofstream os(bad, std::ios::binary | std::ios::trunc);
        os << "not a trace";
    }
    EXPECT_THROW(CampaignJob("trace", 1, traceConfig(bad)),
                 ProtocolError);
}

TEST(Protocol, TraceHashKeyedByContentNotPath)
{
    // The same trace content at two different paths memoizes to the
    // same key; different content (another seed) does not.
    const std::string a = makeTrace("hash_a.bin", 7);
    const std::string b = makeTrace("hash_b.bin", 7);
    const std::string c = makeTrace("hash_c.bin", 8);

    CampaignJob ja("trace", 1, traceConfig(a));
    CampaignJob jb("trace", 999, traceConfig(b)); // seed-free too
    CampaignJob jc("trace", 1, traceConfig(c));
    EXPECT_EQ(ja.configHash(), jb.configHash());
    EXPECT_NE(ja.configHash(), jc.configHash());

    // Replay knobs move the hash: timed vs window mode, knob
    // position, and sampling must never share a memo entry.
    CampaignJob jw("trace", 1, traceConfig(a, "{\"timed\":0}"));
    CampaignJob jk("trace", 1, traceConfig(a, "{\"knob\":2}"));
    CampaignJob js("trace", 1,
                   traceConfig(a, "{\"sampleMode\":1}"));
    EXPECT_NE(ja.configHash(), jw.configHash());
    EXPECT_NE(ja.configHash(), jk.configHash());
    EXPECT_NE(ja.configHash(), js.configHash());
    EXPECT_TRUE(js.sampled());
    EXPECT_FALSE(ja.sampled());
}

TEST(Protocol, TracePayloadDeterministicBothReplayModes)
{
    std::atomic<bool> cancel{false};
    const std::string path = makeTrace("payload.bin", 3);

    CampaignJob a("trace", 11, traceConfig(path));
    CampaignJob b("trace", 11, traceConfig(path));
    std::string pa = a.run(cancel);
    EXPECT_EQ(pa, b.run(cancel));

    Json p = Json::parse(pa);
    EXPECT_EQ(p.at("kind").asString(), "trace");
    EXPECT_EQ(p.at("replayMode").asString(), "timed");
    EXPECT_EQ(p.at("simMode").asString(), "detailed");
    EXPECT_EQ(p.at("records").asU64(), 2000u);
    EXPECT_EQ(p.at("reads").asU64() + p.at("writes").asU64(),
              2000u);
    EXPECT_EQ(p.at("detailedTrips").asU64(), 2000u);
    EXPECT_GT(p.at("runtimeTicks").asU64(), 0u);

    // Window mode replays the same records through the MLP-window
    // model instead.
    CampaignJob w("trace", 11,
                  traceConfig(path, "{\"timed\":0,\"window\":4}"));
    Json pw = Json::parse(w.run(cancel));
    EXPECT_EQ(pw.at("replayMode").asString(), "window");
    EXPECT_EQ(pw.at("records").asU64(), 2000u);
    EXPECT_GT(pw.at("runtimeTicks").asU64(), 0u);

    // Sampled timed replay reports its window counters.
    CampaignJob s("trace", 11,
                  traceConfig(path, "{\"sampleMode\":1,"
                                    "\"sampleWarmup\":8,"
                                    "\"sampleWindow\":32,"
                                    "\"samplePeriod\":256}"));
    Json ps = Json::parse(s.run(cancel));
    EXPECT_EQ(ps.at("simMode").asString(), "sampled");
    EXPECT_EQ(ps.at("traceChecksum").asString(),
              p.at("traceChecksum").asString());
    EXPECT_GT(ps.at("windows").asU64(), 0u);
    EXPECT_GT(ps.at("fastForwardMisses").asU64(), 0u);
    EXPECT_LT(ps.at("detailedTrips").asU64(), 2000u);
}

TEST(Protocol, TraceFileChangedAfterAdmissionIsRejected)
{
    std::atomic<bool> cancel{false};
    const std::string path = makeTrace("swap.bin", 21);
    CampaignJob job("trace", 1, traceConfig(path));

    // Swap in different (but valid) content behind the admitted
    // job's back: the run must refuse, not silently replay the
    // wrong trace under the old memo key.
    const std::string other = makeTrace("swap_other.bin", 22);
    std::filesystem::rename(other, path);
    try {
        job.run(cancel);
        FAIL() << "run accepted a swapped trace file";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("changed since "
                                             "admission"),
                  std::string::npos);
    }
}

TEST(Protocol, SpinHonoursItsCancelToken)
{
    std::atomic<bool> cancel{false};
    CampaignJob spin("spin", 1, parseConfig("{\"spinMs\":30000}"));
    std::thread raiser([&cancel] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        cancel.store(true);
    });
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(spin.run(cancel), CampaignJob::Cancelled);
    raiser.join();
    EXPECT_LT(std::chrono::steady_clock::now() - t0,
              std::chrono::seconds(10));
}

} // namespace
