/**
 * @file
 * Campaign server end to end over a real Unix socket: admission
 * and shedding, idempotent ids (coalesce + replay), memoization
 * and its byte-identity contract, deadlines in the queue and in
 * execution, priority ordering, and the drain/restart cycle.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hh"
#include "service/server.hh"

using namespace contutto::service;
using Clock = std::chrono::steady_clock;

namespace
{

/** Self-cleaning socket/file path under the test temp dir. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

CampaignServer::Params
fastServer(const std::string &socket)
{
    CampaignServer::Params p;
    p.socketPath = socket;
    p.workers = 2;
    p.watchdogInterval = std::chrono::milliseconds(2);
    p.cancelGrace = std::chrono::milliseconds(500);
    return p;
}

CampaignClient::Params
fastClient(const std::string &socket)
{
    CampaignClient::Params p;
    p.socketPath = socket;
    p.callTimeout = std::chrono::seconds(60);
    p.responseTimeout = std::chrono::seconds(30);
    p.backoffBase = std::chrono::milliseconds(1);
    return p;
}

Request
spinRequest(const std::string &id, std::uint64_t spinMs,
            std::uint64_t seed = 1)
{
    Request r;
    r.id = id;
    r.kind = "spin";
    r.seed = seed;
    r.config = Json::object();
    r.config.set("spinMs", Json::number(spinMs));
    return r;
}

Request
soakRequest(const std::string &id, std::uint64_t seed)
{
    Request r;
    r.id = id;
    r.kind = "ras_soak";
    r.seed = seed;
    r.config = Json::object();
    r.config.set("ops", Json::number(std::uint64_t(48)));
    return r;
}

std::string
payloadText(const Json &response)
{
    return response.at("payload").dump();
}

TEST(CampaignServer, ComputesThenMemoizes)
{
    TempPath sock("srv_memo.sock");
    CampaignServer server(fastServer(sock.str()));
    server.start();
    CampaignClient client(fastClient(sock.str()));
    ASSERT_TRUE(client.waitReady(std::chrono::seconds(10)));

    auto first = client.submit(soakRequest("a-1", 7));
    ASSERT_EQ(first.outcome, CampaignClient::Outcome::ok);
    EXPECT_EQ(first.response.at("status").asString(), "ok");
    EXPECT_EQ(first.response.at("outcome").asString(), "ok");

    // Different id, same (config, seed): answered from the memo,
    // byte-identical payload.
    auto second = client.submit(soakRequest("a-2", 7));
    ASSERT_EQ(second.outcome, CampaignClient::Outcome::ok);
    EXPECT_EQ(second.response.at("outcome").asString(), "memo");
    EXPECT_EQ(payloadText(second.response),
              payloadText(first.response));

    // Different seed: computed, different fingerprint key.
    auto third = client.submit(soakRequest("a-3", 8));
    ASSERT_EQ(third.outcome, CampaignClient::Outcome::ok);
    EXPECT_EQ(third.response.at("outcome").asString(), "ok");
    EXPECT_EQ(third.response.at("configHash").asString(),
              first.response.at("configHash").asString());

    auto s = server.stats();
    EXPECT_EQ(s.executions, 2u);
    EXPECT_EQ(s.memoHits, 1u);
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServer, DuplicateInFlightIdsCoalesce)
{
    TempPath sock("srv_dup.sock");
    CampaignServer server(fastServer(sock.str()));
    server.start();

    // Three concurrent submits of the SAME id: one execution, three
    // identical answers.
    std::vector<CampaignClient::Reply> replies(3);
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i)
        threads.emplace_back([&, i] {
            CampaignClient c(fastClient(sock.str()));
            replies[i] = c.submit(spinRequest("same-id", 150));
        });
    for (auto &t : threads)
        t.join();
    for (const auto &r : replies) {
        ASSERT_EQ(r.outcome, CampaignClient::Outcome::ok);
        EXPECT_EQ(r.response.at("status").asString(), "ok");
        EXPECT_EQ(payloadText(r.response),
                  payloadText(replies[0].response));
    }
    auto s = server.stats();
    EXPECT_EQ(s.executions, 1u);
    EXPECT_EQ(s.duplicates, 2u);

    // A late duplicate replays the completed response.
    CampaignClient c(fastClient(sock.str()));
    auto replay = c.submit(spinRequest("same-id", 150));
    ASSERT_EQ(replay.outcome, CampaignClient::Outcome::ok);
    EXPECT_EQ(payloadText(replay.response),
              payloadText(replies[0].response));
    EXPECT_EQ(server.stats().executions, 1u);
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServer, ConcurrentFreshIdsWithOneKeySingleFlight)
{
    TempPath sock("srv_keyflight.sock");
    auto sp = fastServer(sock.str());
    sp.workers = 3; // enough workers to run twins concurrently
    CampaignServer server(sp);
    server.start();

    // Three concurrent submits with DISTINCT ids but the same
    // (config, seed): single-flight must hold them to one
    // execution even though all three could run at once.
    std::vector<CampaignClient::Reply> replies(3);
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i)
        threads.emplace_back([&, i] {
            CampaignClient c(fastClient(sock.str()));
            replies[i] = c.submit(spinRequest(
                "fresh-" + std::to_string(i), 150, 77));
        });
    for (auto &t : threads)
        t.join();
    for (const auto &r : replies) {
        ASSERT_EQ(r.outcome, CampaignClient::Outcome::ok);
        EXPECT_EQ(r.response.at("status").asString(), "ok");
        EXPECT_EQ(payloadText(r.response),
                  payloadText(replies[0].response));
    }
    auto s = server.stats();
    EXPECT_EQ(s.executions, 1u);
    EXPECT_EQ(s.memoHits, 2u); // the two followers
    EXPECT_EQ(s.duplicates, 0u); // ids were all distinct
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServer, FullQueueShedsWithRetryAfter)
{
    auto p = fastServer(
        (::testing::TempDir() + "srv_shed.sock"));
    p.workers = 1;
    p.queueCap = 1;
    p.shedRetryAfterMs = 35;
    CampaignServer server(p);
    server.start();

    // Occupy the worker, fill the queue, then overflow it.
    std::thread blocker([&] {
        CampaignClient c(fastClient(p.socketPath));
        auto r = c.submit(spinRequest("blocker", 600));
        EXPECT_EQ(r.outcome, CampaignClient::Outcome::ok);
    });
    std::thread filler([&] {
        CampaignClient c(fastClient(p.socketPath));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
        // Distinct seed: same key as the blocker or the overflow
        // request would single-flight instead of costing a slot.
        auto r = c.submit(spinRequest("filler", 10, 2));
        EXPECT_EQ(r.outcome, CampaignClient::Outcome::ok);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    auto cp = fastClient(p.socketPath);
    cp.maxAttempts = 1; // surface the shed instead of retrying
    CampaignClient c(cp);
    auto shed = c.submit(spinRequest("overflow", 10, 3));
    EXPECT_EQ(shed.outcome, CampaignClient::Outcome::shedGiveUp);
    EXPECT_EQ(shed.response.at("reason").asString(), "queue full");
    EXPECT_GE(shed.response.at("retryAfterMs").asU64(), 35u);

    // With retries allowed, the same request eventually lands.
    cp.maxAttempts = 64;
    CampaignClient retry(cp);
    auto ok = retry.submit(spinRequest("overflow", 10, 3));
    EXPECT_EQ(ok.outcome, CampaignClient::Outcome::ok);
    EXPECT_GE(ok.shedRetries, 0u);

    blocker.join();
    filler.join();
    auto s = server.stats();
    EXPECT_GE(s.shed, 1u);
    EXPECT_LE(s.queuePeak, p.queueCap);
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServer, DrainingShedsNewWork)
{
    TempPath sock("srv_drain_shed.sock");
    CampaignServer server(fastServer(sock.str()));
    server.start();
    server.requestDrain();

    auto cp = fastClient(sock.str());
    cp.maxAttempts = 1;
    CampaignClient c(cp);
    auto shed = c.submit(spinRequest("late", 10));
    EXPECT_EQ(shed.outcome, CampaignClient::Outcome::shedGiveUp);
    EXPECT_EQ(shed.response.at("reason").asString(), "draining");
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServer, DeadlinesExpireInExecutionAndInQueue)
{
    auto p = fastServer(
        (::testing::TempDir() + "srv_deadline.sock"));
    p.workers = 1;
    CampaignServer server(p);
    server.start();
    CampaignClient client(fastClient(p.socketPath));

    // Execution overrun: the supervisor watchdog cancels the spin.
    Request slow = spinRequest("slow", 10'000);
    slow.deadlineMs = 80;
    const auto t0 = Clock::now();
    auto r = client.submit(slow);
    ASSERT_EQ(r.outcome, CampaignClient::Outcome::ok);
    EXPECT_EQ(r.response.at("status").asString(), "timeout");
    EXPECT_EQ(r.response.at("outcome").asString(), "timedOut");
    EXPECT_LT(Clock::now() - t0, std::chrono::seconds(8));

    // Queue-wait overrun: answered without burning the worker.
    std::thread blocker([&] {
        CampaignClient c(fastClient(p.socketPath));
        auto br = c.submit(spinRequest("blocker", 400));
        EXPECT_EQ(br.outcome, CampaignClient::Outcome::ok);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Request doomed = spinRequest("doomed", 10);
    doomed.deadlineMs = 50; // expires while the blocker runs
    auto dr = client.submit(doomed);
    blocker.join();
    ASSERT_EQ(dr.outcome, CampaignClient::Outcome::ok);
    EXPECT_EQ(dr.response.at("status").asString(), "timeout");
    EXPECT_EQ(dr.response.at("outcome").asString(),
              "expiredInQueue");
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServer, PriorityOrdersTheQueue)
{
    auto p = fastServer(
        (::testing::TempDir() + "srv_prio.sock"));
    p.workers = 1;
    CampaignServer server(p);
    server.start();

    // Occupy the single worker, then queue three requests with
    // priorities 1, 5, 3 (in that arrival order). Completion order
    // must be 5, 3, 1.
    std::thread blocker([&] {
        CampaignClient c(fastClient(p.socketPath));
        c.submit(spinRequest("blocker", 500));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(120));

    std::mutex mtx;
    std::vector<std::string> order;
    auto submitAt = [&](const std::string &id,
                        std::int64_t priority) {
        // Distinct seeds: same-key requests would single-flight
        // onto the first admission instead of queueing.
        Request r = spinRequest(id, 120,
                                std::uint64_t(priority));
        r.priority = priority;
        CampaignClient c(fastClient(p.socketPath));
        auto rep = c.submit(r);
        EXPECT_EQ(rep.outcome, CampaignClient::Outcome::ok);
        std::lock_guard<std::mutex> lk(mtx);
        order.push_back(id);
    };
    std::vector<std::thread> threads;
    threads.emplace_back(submitAt, "low", 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    threads.emplace_back(submitAt, "high", 5);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    threads.emplace_back(submitAt, "mid", 3);
    for (auto &t : threads)
        t.join();
    blocker.join();

    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "high");
    EXPECT_EQ(order[1], "mid");
    EXPECT_EQ(order[2], "low");
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServer, MalformedRequestsGetErrorResponses)
{
    TempPath sock("srv_err.sock");
    CampaignServer server(fastServer(sock.str()));
    server.start();
    CampaignClient probe(fastClient(sock.str()));
    ASSERT_TRUE(probe.waitReady(std::chrono::seconds(10)));

    // Raw garbage on the wire.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sock.str().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char *garbage = "this is not json\n";
    ASSERT_EQ(::send(fd, garbage, std::strlen(garbage), 0),
              ssize_t(std::strlen(garbage)));
    char buf[512];
    ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    ASSERT_GT(n, 0);
    buf[n] = '\0';
    Json err = Json::parse(
        std::string(buf).substr(0, std::string(buf).find('\n')));
    EXPECT_EQ(err.at("type").asString(), "error");
    ::close(fd);

    // Well-formed JSON, invalid request: unknown kind and unknown
    // knob both answered as protocol errors, not executions.
    CampaignClient client(fastClient(sock.str()));
    Request bad = spinRequest("bad", 10);
    bad.kind = "warp_drive";
    auto r = client.submit(bad);
    EXPECT_EQ(r.outcome, CampaignClient::Outcome::error);

    Request typo = spinRequest("typo", 10);
    typo.config = Json::object();
    typo.config.set("spinMz", Json::number(std::uint64_t(5)));
    auto r2 = client.submit(typo);
    EXPECT_EQ(r2.outcome, CampaignClient::Outcome::error);

    auto s = server.stats();
    EXPECT_GE(s.protocolErrors, 3u);
    EXPECT_EQ(s.executions, 0u);
    EXPECT_TRUE(server.stop());
}

TEST(CampaignServer, MemoSurvivesDrainAndRestart)
{
    TempPath sock("srv_restart.sock");
    TempPath memo("srv_restart.memo");
    std::string firstPayload;
    {
        auto p = fastServer(sock.str());
        p.memoPath = memo.str();
        CampaignServer server(p);
        server.start();
        CampaignClient client(fastClient(sock.str()));
        auto r = client.submit(soakRequest("gen1", 21));
        ASSERT_EQ(r.outcome, CampaignClient::Outcome::ok);
        firstPayload = payloadText(r.response);
        EXPECT_TRUE(server.stop()); // persists the memo index
    }
    {
        auto p = fastServer(sock.str());
        p.memoPath = memo.str();
        CampaignServer server(p);
        server.start(); // warms from the persisted index
        CampaignClient client(fastClient(sock.str()));
        auto r = client.submit(soakRequest("gen2", 21));
        ASSERT_EQ(r.outcome, CampaignClient::Outcome::ok);
        EXPECT_EQ(r.response.at("outcome").asString(), "memo");
        EXPECT_EQ(payloadText(r.response), firstPayload);
        EXPECT_EQ(server.stats().executions, 0u);
        EXPECT_TRUE(server.stop());
    }
}

} // namespace
