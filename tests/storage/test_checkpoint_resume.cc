/**
 * @file
 * Checkpoint/resume bit-equality: a campaign killed at a checkpoint
 * boundary and resumed in a fresh process image must be
 * indistinguishable — Result, stats-JSON and FSP error log byte for
 * byte — from the same campaign run uninterrupted. Exercised over
 * many seeds, serially and distributed over a 4-shard task farm.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "sim/parallel.hh"
#include "storage/crash_campaign.hh"

using namespace contutto;
using namespace contutto::storage;

namespace
{

CrashRecoveryCampaign::Spec
resumeSpec(std::uint64_t seed)
{
    CrashRecoveryCampaign::Spec s;
    s.seed = seed;
    s.powerCuts = 4;
    s.regionBlocks = 16;
    s.queueDepth = 2;
    s.longOutageEvery = 3;
    s.brownouts = 1;
    s.dimmCapacity = 16 * MiB;
    return s;
}

std::string
statsJson(CrashRecoveryCampaign &camp)
{
    std::ostringstream os;
    stats::toJson(camp.system(), os);
    return os.str();
}

std::string
errorLogText(CrashRecoveryCampaign &camp)
{
    std::ostringstream os;
    for (const auto &e : camp.errorLog().entries()) {
        os << e.when << ' ' << e.component << ' '
           << int(e.severity) << ' ' << e.message << '\n';
    }
    os << "overflow=" << camp.errorLog().overflowCount() << '\n';
    return os.str();
}

std::string
ckptPath(const std::string &tag, std::uint64_t seed)
{
    auto dir = std::filesystem::temp_directory_path();
    return (dir / ("ct_resume_" + tag + "_"
                   + std::to_string(std::uint64_t(::getpid())) + "_"
                   + std::to_string(seed) + ".ckpt"))
        .string();
}

/** One seed's kill/resume round trip; fails the calling test on any
 *  divergence. Returns false on divergence so farm tasks can report
 *  without gtest's per-thread assertion caveats. */
bool
roundTrip(std::uint64_t seed, const std::string &tag,
          std::string *why)
{
    const auto spec = resumeSpec(seed);
    const std::string path = ckptPath(tag, seed);

    // The uninterrupted reference.
    CrashRecoveryCampaign base(spec);
    const auto rBase = base.run();
    const std::string jsonBase = statsJson(base);
    const std::string logBase = errorLogText(base);

    // Kill at the round-2 checkpoint boundary...
    CrashRecoveryCampaign victim(spec);
    CrashRecoveryCampaign::RunOptions kill;
    kill.checkpointPath = path;
    kill.checkpointEvery = 2;
    kill.stopAfterCheckpoints = 1;
    victim.run(kill);
    if (!victim.stoppedEarly()) {
        *why = "victim did not stop at the checkpoint";
        return false;
    }

    // ...and resume in a fresh campaign object (fresh queue, RNGs,
    // stats tree, images: the in-process equivalent of a new
    // process reading the file).
    CrashRecoveryCampaign resumed(spec);
    CrashRecoveryCampaign::RunOptions cont;
    cont.resumeFrom = path;
    const auto rResumed = resumed.run(cont);

    std::remove(path.c_str());

    if (!(rBase == rResumed)) {
        *why = "Result diverged";
        return false;
    }
    if (statsJson(resumed) != jsonBase) {
        *why = "stats-JSON diverged";
        return false;
    }
    if (errorLogText(resumed) != logBase) {
        *why = "error log diverged";
        return false;
    }
    return true;
}

TEST(CheckpointResume, EightSeedsBitIdenticalSerial)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        std::string why;
        EXPECT_TRUE(roundTrip(seed, "serial", &why))
            << "seed " << seed << ": " << why;
    }
}

TEST(CheckpointResume, EightSeedsBitIdenticalFourShardFarm)
{
    // The same round trips, distributed over a 4-shard task farm in
    // parallel mode: checkpoint/restore must not depend on which
    // thread runs the campaign or what its neighbours do.
    constexpr unsigned kSeeds = 8;
    std::vector<std::string> why(kSeeds);
    std::vector<int> ok(kSeeds, 0);
    std::vector<std::function<void()>> tasks;
    for (unsigned i = 0; i < kSeeds; ++i) {
        tasks.push_back([i, &why, &ok] {
            ok[i] = roundTrip(100 + i, "farm", &why[i]) ? 1 : 0;
        });
    }
    sim::ShardedExecutor::runTasks(
        4, sim::ShardedExecutor::Mode::parallel, tasks);
    for (unsigned i = 0; i < kSeeds; ++i)
        EXPECT_TRUE(ok[i]) << "seed " << 100 + i << ": " << why[i];
}

TEST(CheckpointResume, ResumeRejectsMismatchedSpec)
{
    const std::string path = ckptPath("mismatch", 1);
    CrashRecoveryCampaign a(resumeSpec(1));
    CrashRecoveryCampaign::RunOptions save;
    save.checkpointPath = path;
    save.checkpointEvery = 2;
    save.stopAfterCheckpoints = 1;
    a.run(save);
    ASSERT_TRUE(a.stoppedEarly());

    auto other = resumeSpec(2);      // different seed
    CrashRecoveryCampaign b(other);
    CrashRecoveryCampaign::RunOptions cont;
    cont.resumeFrom = path;
    EXPECT_THROW(b.run(cont), ckpt::Error);
    std::remove(path.c_str());
}

TEST(CheckpointResume, CorruptFileIsRejected)
{
    const std::string path = ckptPath("corrupt", 1);
    CrashRecoveryCampaign a(resumeSpec(3));
    CrashRecoveryCampaign::RunOptions save;
    save.checkpointPath = path;
    save.checkpointEvery = 2;
    save.stopAfterCheckpoints = 1;
    a.run(save);
    ASSERT_TRUE(a.stoppedEarly());

    // Flip one byte in the middle of the file.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        long size = std::ftell(f);
        ASSERT_GT(size, 64L);
        std::fseek(f, size / 2, SEEK_SET);
        int c = std::fgetc(f);
        std::fseek(f, size / 2, SEEK_SET);
        std::fputc(c ^ 0x5A, f);
        std::fclose(f);
    }
    CrashRecoveryCampaign b(resumeSpec(3));
    CrashRecoveryCampaign::RunOptions cont;
    cont.resumeFrom = path;
    EXPECT_THROW(b.run(cont), ckpt::Error);
    std::remove(path.c_str());
}

TEST(CheckpointResume, CheckpointingRunIsNonPerturbing)
{
    // Writing checkpoints (without stopping) must leave the final
    // Result and stats bit-identical to a plain run: saving is
    // all-const and the boundary probe runs in both modes.
    const auto spec = resumeSpec(9);
    CrashRecoveryCampaign plain(spec);
    const auto rPlain = plain.run();

    const std::string path = ckptPath("noperturb", 9);
    CrashRecoveryCampaign noting(spec);
    CrashRecoveryCampaign::RunOptions opts;
    opts.checkpointPath = path;
    opts.checkpointEvery = 1;
    const auto rNoting = noting.run(opts);
    std::remove(path.c_str());

    EXPECT_FALSE(noting.stoppedEarly());
    EXPECT_TRUE(rPlain == rNoting);
    EXPECT_EQ(statsJson(plain), statsJson(noting));
}

} // namespace
