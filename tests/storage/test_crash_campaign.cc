/**
 * @file
 * Power-fault campaign acceptance tests: durable blocks survive,
 * tears are detected (never silently served), counters reconcile,
 * and the same seed reproduces the identical result.
 */

#include <gtest/gtest.h>

#include "storage/crash_campaign.hh"

using namespace contutto;
using namespace contutto::storage;

namespace
{

CrashRecoveryCampaign::Spec
smallSpec(std::uint64_t seed)
{
    CrashRecoveryCampaign::Spec s;
    s.seed = seed;
    s.powerCuts = 3;
    s.regionBlocks = 32;
    s.queueDepth = 4;
    // One long outage (full save->restore cycle) in the middle;
    // the 64 MiB save takes ~0.32 s, so keep the campaign to one.
    s.longOutageEvery = 2;
    s.brownouts = 2;
    return s;
}

TEST(CrashCampaign, DurableBlocksSurviveAndTearsAreDetected)
{
    CrashRecoveryCampaign camp(smallSpec(7));
    const auto r = camp.run();

    // Every cut recovered; the workload actually ran and fenced.
    EXPECT_EQ(r.recoveries, 3u);
    EXPECT_EQ(r.failedRecoveries, 0u);
    EXPECT_GE(r.cuts, 3u);
    EXPECT_GT(r.writesCompleted, 0u);
    EXPECT_GT(r.blocksFenced, 0u);
    EXPECT_GT(r.intact, 0u);

    // The acceptance bar: a block whose fence completed is never
    // damaged, and any damage that did occur was detected.
    EXPECT_EQ(r.durabilityViolations, 0u);
    EXPECT_EQ(r.torn + r.stale + r.lost,
              std::uint64_t(
                  camp.pmem().pmemStats().tornDetected.value()
                  + camp.pmem().pmemStats().staleDetected.value()
                  + camp.pmem().pmemStats().lostDetected.value()));

    // Counters reconcile exactly: every submitted write either
    // completed or was failed by the cut, ...
    EXPECT_EQ(r.writesSubmitted, r.writesCompleted + r.writesFailed);
    // ... the cut actually interrupted traffic at least once, ...
    EXPECT_GT(r.writesFailed, 0u);
    // ... and every verified block landed in exactly one bucket.
    const std::uint64_t verified = r.unwritten + r.intact + r.newer
        + r.torn + r.stale + r.lost;
    EXPECT_EQ(verified, 3u * 32u);
    EXPECT_EQ(verified,
              std::uint64_t(
                  camp.pmem().pmemStats().verifies.value()));
}

TEST(CrashCampaign, SameSeedIsBitIdentical)
{
    const auto a = CrashRecoveryCampaign(smallSpec(42)).run();
    const auto b = CrashRecoveryCampaign(smallSpec(42)).run();
    EXPECT_TRUE(a == b);
    // And a different seed explores a different schedule.
    const auto c = CrashRecoveryCampaign(smallSpec(43)).run();
    EXPECT_FALSE(a == c);
}

TEST(CrashCampaign, BrownoutsAreInjectedAndAccounted)
{
    auto spec = smallSpec(11);
    spec.brownouts = 3;
    // Long dips only: each one is a guaranteed early blackout.
    spec.brownoutMin = milliseconds(1);
    spec.brownoutMax = milliseconds(2);
    CrashRecoveryCampaign camp(spec);
    const auto r = camp.run();

    EXPECT_EQ(r.brownoutsInjected, 3u);
    EXPECT_GE(
        camp.domain().domainStats().brownoutOutages.value(), 1.0);
    EXPECT_EQ(r.durabilityViolations, 0u);
    EXPECT_EQ(r.recoveries, 3u);
}

TEST(CrashCampaign, ModuleLossIsReportedNeverSilent)
{
    // A supercap with one segment of charge: the first long outage
    // tears the save mid-stream and the module must say so.
    auto spec = smallSpec(5);
    spec.longOutageEvery = 1;
    spec.nvdimm.supercapJoules = 0.01;
    CrashRecoveryCampaign camp(spec);
    const auto r = camp.run();

    EXPECT_GE(r.moduleLossEvents, 1u);
    // The loss shows up in the FSP log against the DIMM ...
    EXPECT_GE(camp.errorLog().recoverableCount("dimm0"), 1u);
    // ... and at block level as detected damage, not as silently
    // served stale data: fenced-but-damaged blocks are all in
    // detectedLosses because the module owned up.
    EXPECT_EQ(r.durabilityViolations, 0u);
    EXPECT_GT(r.detectedLosses, 0u);
    EXPECT_GT(r.torn + r.stale + r.lost, 0u);
}

} // namespace
