/** @file Storage stack tests: devices, FIO, GPFS, pmem. */

#include <gtest/gtest.h>

#include "cpu/system.hh"
#include "storage/fio.hh"
#include "storage/gpfs.hh"
#include "storage/pcie_devices.hh"
#include "storage/pmem.hh"
#include "storage/sas_devices.hh"
#include "storage/slram.hh"

using namespace contutto;
using namespace contutto::cpu;
using namespace contutto::storage;

namespace
{

struct DevRig
{
    EventQueue eq;
    ClockDomain d{"d", 500};
    stats::StatGroup root{"root"};
};

Power8System::Params
mramSystem()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::sttMram, 256 * MiB,
                        mem::MramDevice::Junction::pMTJ, {}},
               DimmSpec{mem::MemTech::sttMram, 256 * MiB,
                        mem::MramDevice::Junction::pMTJ, {}}};
    return p;
}

TEST(Hdd, RandomWritesCostSeekPlusRotation)
{
    DevRig rig;
    HddDevice hdd("hdd", rig.eq, rig.d, &rig.root, {});
    FioEngine::Params fp;
    fp.ops = 50;
    fp.readFraction = 0.0;
    fp.softwareOverhead = microseconds(6);
    auto r = FioEngine(fp).run(rig.eq, hdd);
    // Random 4K writes on a 7.2K disk: order 10+ ms each.
    EXPECT_GT(r.meanWriteLatencyUs, 5000);
    EXPECT_LT(r.totalIops, 200);
}

TEST(Hdd, SequentialIsFarFasterThanRandom)
{
    DevRig rig;
    HddDevice hdd("hdd", rig.eq, rig.d, &rig.root, {});
    int done = 0;
    Tick t0 = rig.eq.curTick();
    std::function<void(int)> next = [&](int i) {
        if (i >= 200)
            return;
        BlockRequest req;
        req.lba = std::uint64_t(i); // purely sequential
        req.isWrite = true;
        req.onDone = [&, i](const BlockRequest &) {
            ++done;
            next(i + 1);
        };
        hdd.submit(std::move(req));
    };
    next(0);
    while (done < 200 && rig.eq.step()) {
    }
    double iops = 200.0 / ticksToSeconds(rig.eq.curTick() - t0);
    EXPECT_GT(iops, 2000); // no seeks: transfer + overhead only
    EXPECT_GT(hdd.ioStats().writeOps.value(), 199.0);
}

TEST(Ssd, HitsFifteenKIopsClass)
{
    DevRig rig;
    SsdDevice ssd("ssd", rig.eq, rig.d, &rig.root, {});
    FioEngine::Params fp;
    fp.ops = 500;
    fp.readFraction = 0.0;
    fp.softwareOverhead = microseconds(6);
    auto r = FioEngine(fp).run(rig.eq, ssd);
    EXPECT_GT(r.totalIops, 12000);
    EXPECT_LT(r.totalIops, 18000);
}

TEST(Pcie, ProtocolOverheadSetsLatencyFloor)
{
    DevRig rig;
    auto params = PcieDevice::mramOnPcie();
    PcieDevice dev("pcie", rig.eq, rig.d, &rig.root, params);
    FioEngine::Params fp;
    fp.ops = 200;
    fp.readFraction = 1.0;
    fp.softwareOverhead = 0;
    auto r = FioEngine(fp).run(rig.eq, dev);
    // Even with instant media, a PCIe op cannot beat the protocol.
    EXPECT_GT(r.meanReadLatencyUs,
              ticksToNs(params.protocolOverhead) / 1000.0);
}

TEST(Pcie, NvramFasterThanFlash)
{
    DevRig rig;
    PcieDevice nvram("nvram", rig.eq, rig.d, &rig.root,
                     PcieDevice::nvramOnPcie());
    PcieDevice flash("flash", rig.eq, rig.d, &rig.root,
                     PcieDevice::flashOnPcie());
    FioEngine::Params fp;
    fp.ops = 200;
    fp.softwareOverhead = microseconds(9);
    auto rn = FioEngine(fp).run(rig.eq, nvram);
    auto rf = FioEngine(fp).run(rig.eq, flash);
    EXPECT_GT(rn.totalIops, rf.totalIops * 1.5);
    EXPECT_LT(rn.meanReadLatencyUs, rf.meanReadLatencyUs);
}

TEST(Pmem, BlockOpsTraverseSimulatedChannel)
{
    Power8System sys(mramSystem());
    ASSERT_TRUE(sys.train());
    PmemBlockDevice dev("pmem", sys, &sys, {});

    auto mbs_reads_before =
        sys.card()->mbs().mbsStats().reads.value();
    bool done = false;
    BlockRequest req;
    req.lba = 7;
    req.isWrite = false;
    req.onDone = [&](const BlockRequest &) { done = true; };
    dev.submit(std::move(req));
    while (!done && sys.eventq().step()) {
    }
    ASSERT_TRUE(done);
    // A 4 KiB block is 32 cache-line reads through MBS.
    EXPECT_EQ(sys.card()->mbs().mbsStats().reads.value()
                  - mbs_reads_before,
              32.0);
}

TEST(Pmem, WritesArePersistedWithFlush)
{
    Power8System sys(mramSystem());
    ASSERT_TRUE(sys.train());
    PmemBlockDevice dev("pmem", sys, &sys, {});

    bool done = false;
    BlockRequest req;
    req.lba = 3;
    req.isWrite = true;
    req.onDone = [&](const BlockRequest &) { done = true; };
    dev.submit(std::move(req));
    while (!done && sys.eventq().step()) {
    }
    ASSERT_TRUE(done);
    EXPECT_EQ(sys.card()->mbs().mbsStats().flushes.value(), 1.0);
}

TEST(Pmem, DmiAttachBeatsPcieOnLatency)
{
    Power8System sys(mramSystem());
    ASSERT_TRUE(sys.train());
    PmemBlockDevice pmem("pmem", sys, &sys,
                         PmemBlockDevice::Params::forMram());
    FioEngine::Params fp;
    fp.ops = 300;
    fp.softwareOverhead = microseconds(4);
    auto r_dmi = FioEngine(fp).run(sys.eventq(), pmem);

    DevRig rig;
    PcieDevice mram_pcie("mp", rig.eq, rig.d, &rig.root,
                         PcieDevice::mramOnPcie());
    auto r_pcie = FioEngine(fp).run(rig.eq, mram_pcie);

    // Paper Figure 10: ~2.4x lower read, ~5x lower write latency.
    double read_ratio =
        r_pcie.meanReadLatencyUs / r_dmi.meanReadLatencyUs;
    double write_ratio =
        r_pcie.meanWriteLatencyUs / r_dmi.meanWriteLatencyUs;
    EXPECT_GT(read_ratio, 1.8);
    EXPECT_LT(read_ratio, 3.2);
    EXPECT_GT(write_ratio, 3.5);
    EXPECT_LT(write_ratio, 7.0);
}

TEST(Gpfs, DirectHddIsSeventyFiveIopsClass)
{
    DevRig rig;
    HddDevice hdd("hdd", rig.eq, rig.d, &rig.root, {});
    GpfsWriteCache gpfs("gpfs", rig.eq, rig.d, &rig.root, {},
                        nullptr, hdd);
    Rng rng(1);
    int done = 0;
    Tick t0 = rig.eq.curTick();
    std::function<void()> next = [&] {
        if (done >= 60)
            return;
        gpfs.appWrite(rng.below(hdd.capacityBlocks()), [&] {
            ++done;
            next();
        });
    };
    next();
    while (done < 60 && rig.eq.step()) {
    }
    double iops = 60.0 / ticksToSeconds(rig.eq.curTick() - t0);
    EXPECT_GT(iops, 50);
    EXPECT_LT(iops, 110);
}

TEST(Gpfs, CacheAggregatesIntoSequentialDestages)
{
    DevRig rig;
    HddDevice hdd("hdd", rig.eq, rig.d, &rig.root, {});
    SsdDevice ssd("ssd", rig.eq, rig.d, &rig.root, {});
    GpfsWriteCache gpfs("gpfs", rig.eq, rig.d, &rig.root, {}, &ssd,
                        hdd);
    Rng rng(2);
    int done = 0;
    std::function<void()> next = [&] {
        if (done >= 1000)
            return;
        gpfs.appWrite(rng.below(1000000), [&] {
            ++done;
            next();
        });
    };
    next();
    while (done < 1000 && rig.eq.step()) {
    }
    // Destages happened, each covering many app writes.
    double destages = gpfs.gpfsStats().destages.value();
    EXPECT_GT(destages, 1.0);
    EXPECT_LT(destages, 1000.0 / 32.0);
    // And the disk saw large sequential writes, not 4K randoms.
    EXPECT_GT(hdd.ioStats().writeOps.value(), 0.0);
}

TEST(Gpfs, MramCacheReachesTable4Class)
{
    Power8System sys(mramSystem());
    ASSERT_TRUE(sys.train());
    PmemBlockDevice pmem("pmem", sys, &sys, {});
    HddDevice hdd("hdd", sys.eventq(), sys.nestDomain(), &sys, {});
    GpfsWriteCache gpfs("gpfs", sys.eventq(), sys.nestDomain(), &sys,
                        {}, &pmem, hdd);
    Rng rng(3);
    int done = 0;
    Tick t0 = sys.eventq().curTick();
    std::function<void()> next = [&] {
        if (done >= 1500)
            return;
        gpfs.appWrite(rng.below(60000), [&] {
            ++done;
            next();
        });
    };
    next();
    while (done < 1500 && sys.eventq().step()) {
    }
    double iops = 1500.0 / ticksToSeconds(sys.eventq().curTick() - t0);
    // Table 4: 125K IOPS, 8.3x over the 15K SSD.
    EXPECT_GT(iops, 100000);
    EXPECT_LT(iops, 160000);
}

TEST(Slram, FasterThanPmemButNoFlush)
{
    Power8System sys(mramSystem());
    ASSERT_TRUE(sys.train());
    PmemBlockDevice pmem("pmem", sys, &sys, {});
    SlramBlockDevice slram("slram", sys, &sys, {});

    FioEngine::Params fp;
    fp.ops = 120;
    fp.readFraction = 0.0;
    fp.softwareOverhead = microseconds(1);
    auto rp = FioEngine(fp).run(sys.eventq(), pmem);
    auto rs = FioEngine(fp).run(sys.eventq(), slram);

    // The raw path skips the flush barrier and the thicker driver.
    EXPECT_LT(rs.meanWriteLatencyUs, rp.meanWriteLatencyUs);
    // And it issues no flush commands at all.
    EXPECT_EQ(sys.card()->mbs().mbsStats().flushes.value(),
              double(rp.writesDone));
}

TEST(Fio, ReadFractionRespected)
{
    DevRig rig;
    SsdDevice ssd("ssd", rig.eq, rig.d, &rig.root, {});
    FioEngine::Params fp;
    fp.ops = 1000;
    fp.readFraction = 0.7;
    auto r = FioEngine(fp).run(rig.eq, ssd);
    EXPECT_EQ(r.readsDone + r.writesDone, 1000u);
    EXPECT_NEAR(double(r.readsDone) / 1000.0, 0.7, 0.05);
}

TEST(Fio, QueueDepthRaisesThroughput)
{
    DevRig rig;
    SsdDevice ssd("ssd", rig.eq, rig.d, &rig.root, {});
    FioEngine::Params qd1;
    qd1.ops = 500;
    FioEngine::Params qd4 = qd1;
    qd4.queueDepth = 4;
    auto r1 = FioEngine(qd1).run(rig.eq, ssd);
    auto r4 = FioEngine(qd4).run(rig.eq, ssd);
    EXPECT_GT(r4.totalIops, r1.totalIops * 2);
}

} // namespace
