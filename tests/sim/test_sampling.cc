/** @file SamplingController unit tests: schedule, estimate, CI. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/sampling.hh"

using namespace contutto;
using namespace contutto::sim;

namespace
{

SamplingConfig
smallConfig()
{
    SamplingConfig cfg;
    cfg.enabled = true;
    cfg.warmupUnits = 2;
    cfg.windowUnits = 4;
    cfg.periodUnits = 16;
    return cfg;
}

TEST(SamplingConfig, Validity)
{
    SamplingConfig cfg = smallConfig();
    EXPECT_TRUE(cfg.valid());
    cfg.windowUnits = 0;
    EXPECT_FALSE(cfg.valid());
    cfg = smallConfig();
    cfg.warmupUnits = 20; // warmup+window > period
    EXPECT_FALSE(cfg.valid());
    cfg = smallConfig();
    cfg.periodUnits = cfg.warmupUnits + cfg.windowUnits; // abutting
    EXPECT_TRUE(cfg.valid());
}

TEST(SamplingConfig, FoldLeavesDetailedHashUntouched)
{
    SamplingConfig off;
    EXPECT_EQ(off.fold(0x1234u), 0x1234u);

    SamplingConfig on = smallConfig();
    EXPECT_NE(on.fold(0x1234u), 0x1234u);

    // Different knobs, different hashes; same knobs, same hash.
    SamplingConfig on2 = smallConfig();
    EXPECT_EQ(on.fold(7), on2.fold(7));
    on2.periodUnits = 32;
    EXPECT_NE(on.fold(7), on2.fold(7));
}

TEST(SamplingController, EnabledInvalidConfigIsFatal)
{
    SamplingConfig cfg = smallConfig();
    cfg.windowUnits = 0;
    EXPECT_THROW(SamplingController(cfg, 1), FatalError);
}

TEST(SamplingController, DisabledRunsEverythingDetailed)
{
    SamplingConfig cfg; // enabled = false
    SamplingController c(cfg, 1);
    for (unsigned i = 0; i < 100; ++i) {
        EXPECT_TRUE(c.beginMiss(i, Tick(i) * 100));
        EXPECT_FALSE(c.measuring());
    }
    EXPECT_EQ(c.detailedUnits(), 100u);
    EXPECT_EQ(c.fastForwardUnits(), 0u);
    c.finishRun(100, 10000, 100);
    EXPECT_FALSE(c.report().enabled);
}

TEST(SamplingController, BootstrapWindowIsPinnedAtMissZero)
{
    SamplingController c(smallConfig(), 9);
    // Misses 0-1: warmup (detailed, unmeasured). Misses 2-5: the
    // measured calibration body. Miss 6 onward: fast-forward.
    for (unsigned i = 0; i < 6; ++i) {
        EXPECT_TRUE(c.beginMiss(i * 10, Tick(i) * 1000)) << i;
        if (i < 2)
            EXPECT_FALSE(c.measuring()) << i;
        else
            EXPECT_TRUE(c.measuring()) << i;
        if (c.measuring())
            c.observeLatency(500);
    }
    EXPECT_FALSE(c.beginMiss(60, 6000));
    // The calibration window fed the estimate before the first
    // fast-forwarded miss was charged.
    EXPECT_EQ(c.chargedLatency(), 500u);
    EXPECT_EQ(c.windowsClosed(), 1u);
}

TEST(SamplingController, NextWindowLandsInsideItsPeriod)
{
    SamplingConfig cfg = smallConfig();
    SamplingController c(cfg, 3);
    std::vector<bool> detailed;
    for (unsigned i = 0; i < 32; ++i)
        detailed.push_back(c.beginMiss(i * 10, Tick(i) * 1000));

    // Window 1 occupies misses [0, 6); then fast-forward until the
    // second window opens somewhere in [16, 16 + slack], slack =
    // period - (warmup + window) = 10.
    unsigned second = 0;
    for (unsigned i = 6; i < 32; ++i)
        if (detailed[i]) {
            second = i;
            break;
        }
    EXPECT_GE(second, 16u);
    EXPECT_LE(second, 26u);
}

TEST(SamplingController, SameSeedSameSchedule)
{
    SamplingController a(smallConfig(), 42);
    SamplingController b(smallConfig(), 42);
    for (unsigned i = 0; i < 500; ++i)
        ASSERT_EQ(a.beginMiss(i, Tick(i) * 50),
                  b.beginMiss(i, Tick(i) * 50))
            << i;
}

TEST(SamplingController, IntegerMeanEstimate)
{
    SamplingController c(smallConfig(), 1);
    c.observeLatency(100);
    c.observeLatency(101);
    // Integer mean (truncating): exactly reproducible everywhere.
    EXPECT_EQ(c.chargedLatency(), 100u);
    c.observeLatency(105);
    EXPECT_EQ(c.chargedLatency(), 102u);
}

TEST(SamplingController, StitchedEstimateAndTightCi)
{
    // Drive a perfectly stationary run: 100 ticks of simulated time
    // per unit of work, everywhere. Every window then observes the
    // same time-per-work, the variance is zero, and the stitched
    // estimate must be exact with a zero-width CI.
    SamplingController c(smallConfig(), 5);
    const std::uint64_t misses = 400;
    for (std::uint64_t i = 0; i < misses; ++i) {
        if (c.beginMiss(i * 10, Tick(i) * 1000) && c.measuring())
            c.observeLatency(700);
    }
    c.finishRun(misses * 10, Tick(misses) * 1000, misses * 10);

    const SamplingReport &r = c.report();
    EXPECT_TRUE(r.enabled);
    EXPECT_GE(r.windows, 2u);
    EXPECT_DOUBLE_EQ(r.meanTimePerWork, 100.0);
    EXPECT_DOUBLE_EQ(r.stddevTimePerWork, 0.0);
    EXPECT_DOUBLE_EQ(r.estimatedRuntimeTicks,
                     100.0 * double(misses * 10));
    EXPECT_DOUBLE_EQ(r.ciHalfWidthTicks, 0.0);
    EXPECT_EQ(r.detailedUnits + r.fastForwardUnits, misses);
    EXPECT_GT(r.fastForwardUnits, r.detailedUnits);
}

TEST(SamplingController, FinishRunIsIdempotent)
{
    SamplingController c(smallConfig(), 5);
    for (std::uint64_t i = 0; i < 100; ++i)
        if (c.beginMiss(i * 10, Tick(i) * 1000) && c.measuring())
            c.observeLatency(700);
    c.finishRun(1000, 100000, 1000);
    SamplingReport first = c.report();
    c.finishRun(2000, 999999, 2000); // must be ignored
    EXPECT_DOUBLE_EQ(c.report().estimatedRuntimeTicks,
                     first.estimatedRuntimeTicks);
    EXPECT_EQ(c.report().windows, first.windows);
}

TEST(SamplingController, FunctionalWriteHookSeesFastForwardStores)
{
    SamplingController c(smallConfig(), 2);
    std::vector<Addr> warmed;
    c.setFunctionalWrite([&](Addr a, const dmi::CacheLine &) {
        warmed.push_back(a);
    });
    // No hook crash before set; warmWrite routes through.
    c.warmWrite(0x1000, dmi::CacheLine{});
    c.warmWrite(0x2000, dmi::CacheLine{});
    ASSERT_EQ(warmed.size(), 2u);
    EXPECT_EQ(warmed[0], 0x1000u);
    EXPECT_EQ(warmed[1], 0x2000u);
}

TEST(SamplingController, MidFlightWindowFoldsIntoTheEstimate)
{
    // End the run inside a measured window: the partial window's
    // observation must still be counted.
    SamplingConfig cfg = smallConfig();
    SamplingController c(cfg, 1);
    // Warmup misses 0-1, then 2 measured misses; stop mid-window.
    for (std::uint64_t i = 0; i < 4; ++i)
        c.beginMiss(i * 10, Tick(i) * 1000);
    c.finishRun(40, 4000, 40);
    EXPECT_EQ(c.report().windows, 1u);
    EXPECT_GT(c.report().estimatedRuntimeTicks, 0.0);
}

} // namespace
