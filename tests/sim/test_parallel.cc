/**
 * @file
 * Unit tests for the conservative sharded executor: mailbox
 * semantics, the window/barrier protocol, cross-shard message
 * ordering, and serial-vs-parallel bit-identity on a synthetic
 * message-heavy model. The full-stack differential lives in
 * tests/integration/test_parallel_differential.cc.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/parallel.hh"

using namespace contutto;
using namespace contutto::sim;

namespace
{

TEST(SpscMailbox, FifoAndEmpty)
{
    SpscMailbox box(8);
    EXPECT_TRUE(box.empty());
    int hits = 0;
    for (int i = 0; i < 5; ++i)
        box.push(SpscMailbox::Message{Tick(i), 0, std::uint64_t(i),
                                      [&hits] { ++hits; }});
    EXPECT_FALSE(box.empty());
    SpscMailbox::Message m;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(box.pop(m));
        EXPECT_EQ(m.when, Tick(i));
        EXPECT_EQ(m.seq, std::uint64_t(i));
        m.fn();
    }
    EXPECT_FALSE(box.pop(m));
    EXPECT_EQ(hits, 5);
}

TEST(SpscMailboxDeathTest, OverflowPanics)
{
    SpscMailbox box(4); // capacity-1 = 3 usable slots
    for (int i = 0; i < 3; ++i)
        box.push(SpscMailbox::Message{0, 0, 0, [] {}});
    EXPECT_DEATH(box.push(SpscMailbox::Message{0, 0, 0, [] {}}),
                 "mailbox overflow");
}

/** One run of a synthetic ping-pong model; the comparable record. */
struct PingLog
{
    std::vector<std::pair<unsigned, Tick>> hops;
    Tick endTick = 0;
    std::uint64_t messages = 0;
    std::uint64_t windows = 0;

    bool
    operator==(const PingLog &o) const
    {
        return hops == o.hops && endTick == o.endTick
            && messages == o.messages && windows == o.windows;
    }
};

/**
 * Shards pass a token round-robin: each hop records (shard, tick)
 * and posts the next hop 1000 ticks later. Every hop crosses shards,
 * so the whole trace is mailbox traffic.
 */
PingLog
runPingPong(unsigned shards, ShardedExecutor::Mode mode,
            unsigned hops)
{
    ShardedExecutor::Params p;
    p.shards = shards;
    p.mode = mode;
    p.window = 50000;
    ShardedExecutor exec(p);

    PingLog log;
    unsigned remaining = hops;
    std::function<void(unsigned)> hop = [&](unsigned s) {
        log.hops.emplace_back(s, exec.queue(s).curTick());
        if (--remaining == 0)
            return;
        unsigned nxt = (s + 1) % shards;
        exec.post(nxt, exec.queue(s).curTick() + 1000,
                  [&hop, nxt] { hop(nxt); });
    };
    exec.post(0, 0, [&hop] { hop(0); });
    log.endTick = exec.run();
    log.messages = exec.counters().messages;
    log.windows = exec.counters().windows;
    EXPECT_EQ(remaining, 0u);
    return log;
}

TEST(ShardedExecutor, ParallelMatchesSerialFallbackExactly)
{
    for (unsigned shards : {2u, 3u, 4u}) {
        PingLog serial = runPingPong(
            shards, ShardedExecutor::Mode::serial, 64);
        PingLog parallel = runPingPong(
            shards, ShardedExecutor::Mode::parallel, 64);
        EXPECT_TRUE(serial == parallel)
            << shards << " shards: parallel diverged from serial";
    }
}

TEST(ShardedExecutor, MergeOrderIsWhenFromSeq)
{
    // Two senders flood shard 2 in one window with interleaved
    // ticks; delivery must come out sorted by (when, from, seq) in
    // both modes.
    auto run = [](ShardedExecutor::Mode mode) {
        ShardedExecutor::Params p;
        p.shards = 3;
        p.mode = mode;
        p.window = 1000000;
        ShardedExecutor exec(p);
        std::vector<std::tuple<Tick, unsigned, int>> order;
        for (unsigned s : {0u, 1u}) {
            exec.post(s, 0, [&exec, &order, s] {
                for (int i = 0; i < 8; ++i) {
                    Tick when = Tick(((i * 7) % 5) * 100);
                    exec.post(2, when, [&order, when, s, i] {
                        order.emplace_back(when, s, i);
                    });
                }
            });
        }
        exec.run();
        return order;
    };
    auto serial = run(ShardedExecutor::Mode::serial);
    auto parallel = run(ShardedExecutor::Mode::parallel);
    ASSERT_EQ(serial.size(), 16u);
    EXPECT_EQ(serial, parallel);
    // Sorted: when ascending, sender id breaking ties, then seq
    // (i.e. emission order) within a sender.
    auto sorted = serial;
    std::stable_sort(sorted.begin(), sorted.end());
    EXPECT_EQ(serial, sorted);
}

TEST(ShardedExecutor, ConservativeDeliveryNeverLandsInsideWindow)
{
    // A message posted for "now" from another shard must not be
    // seen before the barrier that drains it.
    ShardedExecutor::Params p;
    p.shards = 2;
    p.mode = ShardedExecutor::Mode::serial;
    p.window = 10000;
    ShardedExecutor exec(p);
    Tick delivered = 0;
    exec.post(0, 500, [&exec, &delivered] {
        exec.post(1, 500, [&exec, &delivered] {
            delivered = exec.queue(1).curTick();
        });
    });
    exec.run();
    // Sent at 500 inside window [500, 10500); delivery clamps to
    // the barrier.
    EXPECT_GE(delivered, Tick(10500));
}

TEST(ShardedExecutor, IdleGapsAreSkippedNotWalked)
{
    ShardedExecutor::Params p;
    p.shards = 2;
    p.mode = ShardedExecutor::Mode::parallel;
    p.window = 1000;
    ShardedExecutor exec(p);
    int fired = 0;
    // Two events an enormous gap apart: windows must jump the gap.
    exec.post(0, 100, [&fired] { ++fired; });
    exec.post(1, seconds(1), [&fired] { ++fired; });
    Tick end = exec.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, seconds(1));
    // Far fewer windows than gap/window would take to walk.
    EXPECT_LE(exec.counters().windows, 4u);
    EXPECT_GE(exec.counters().idleSkips, 1u);
}

TEST(ShardedExecutor, RunHonoursLimit)
{
    ShardedExecutor::Params p;
    p.shards = 2;
    p.mode = ShardedExecutor::Mode::serial;
    ShardedExecutor exec(p);
    int fired = 0;
    exec.post(0, 1000, [&fired] { ++fired; });
    exec.post(1, 2000000000ULL, [&fired] { ++fired; });
    exec.run(5000);
    EXPECT_EQ(fired, 1);
    exec.run();
    EXPECT_EQ(fired, 2);
}

TEST(ShardedExecutor, RunUntilIdleStopsAtPredicate)
{
    ShardedExecutor::Params p;
    p.shards = 2;
    p.mode = ShardedExecutor::Mode::parallel;
    p.window = 1000;
    ShardedExecutor exec(p);
    bool done = false;
    exec.post(0, 500, [&done] { done = true; });
    // A periodic self-rescheduling nuisance on the other shard that
    // would run forever without the predicate stop.
    std::function<void()> nag = [&exec, &nag] {
        exec.post(1, exec.queue(1).curTick() + 100, nag);
    };
    exec.post(1, 100, nag);
    EXPECT_TRUE(exec.runUntilIdle([&done] { return done; },
                                  milliseconds(1)));
    EXPECT_TRUE(done);

    // And an unreachable predicate times out rather than hanging.
    EXPECT_FALSE(exec.runUntilIdle([] { return false; },
                                   microseconds(50)));
}

TEST(ShardedExecutor, TaskFarmIsModeInvariant)
{
    auto farm = [](ShardedExecutor::Mode mode, unsigned shards) {
        std::vector<std::uint64_t> out(12, 0);
        std::vector<std::function<void()>> tasks;
        for (unsigned i = 0; i < out.size(); ++i)
            tasks.push_back([&out, i] {
                // Each task owns its private queue: a miniature
                // self-contained simulation.
                EventQueue eq;
                std::uint64_t acc = i;
                for (int k = 0; k < 50; ++k)
                    OneShotEvent::schedule(eq, Tick(k) * 10,
                                           [&acc, k] {
                                               acc = acc * 31 + k;
                                           });
                eq.run();
                out[i] = acc;
            });
        ShardedExecutor::runTasks(shards, mode, tasks);
        return out;
    };
    auto serial = farm(ShardedExecutor::Mode::serial, 1);
    auto par2 = farm(ShardedExecutor::Mode::parallel, 2);
    auto par4 = farm(ShardedExecutor::Mode::parallel, 4);
    EXPECT_EQ(serial, par2);
    EXPECT_EQ(serial, par4);
}

TEST(ShardedExecutor, ThrowingTaskDoesNotAbortItsNeighbours)
{
    // Task 5 throws; every other task must still complete, in both
    // modes, and the caller sees task 5's exception afterwards.
    for (auto mode : {ShardedExecutor::Mode::serial,
                      ShardedExecutor::Mode::parallel}) {
        std::vector<int> done(12, 0);
        std::vector<std::function<void()>> tasks;
        for (unsigned i = 0; i < done.size(); ++i)
            tasks.push_back([&done, i] {
                if (i == 5)
                    throw std::runtime_error("task 5 failed");
                done[i] = 1;
            });
        bool threw = false;
        try {
            ShardedExecutor::runTasks(3, mode, tasks);
        } catch (const std::runtime_error &e) {
            threw = true;
            EXPECT_STREQ(e.what(), "task 5 failed");
        }
        EXPECT_TRUE(threw);
        for (unsigned i = 0; i < done.size(); ++i)
            EXPECT_EQ(done[i], i == 5 ? 0 : 1) << "task " << i;
    }
}

TEST(ShardedExecutor, LowestIndexExceptionWinsInBothModes)
{
    // Tasks 2 and 7 both throw; the caller must see task 2's
    // exception whichever shard finished first.
    for (auto mode : {ShardedExecutor::Mode::serial,
                      ShardedExecutor::Mode::parallel}) {
        std::vector<std::function<void()>> tasks;
        for (unsigned i = 0; i < 9; ++i)
            tasks.push_back([i] {
                if (i == 2 || i == 7)
                    throw std::runtime_error(
                        "task " + std::to_string(i));
            });
        try {
            ShardedExecutor::runTasks(4, mode, tasks);
            FAIL() << "expected a rethrow";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 2");
        }
    }
}

TEST(ShardedExecutor, RunUntilIdleReportsOutcome)
{
    using Outcome = ShardedExecutor::RunOutcome;
    ShardedExecutor::Params p;
    p.shards = 2;
    p.mode = ShardedExecutor::Mode::serial;
    p.window = 1000;

    {   // idle: the predicate flips mid-run.
        ShardedExecutor exec(p);
        bool done = false;
        exec.post(0, 500, [&done] { done = true; });
        EXPECT_EQ(exec.runUntilIdle([&done] { return done; },
                                    milliseconds(1),
                                    std::chrono::milliseconds(0)),
                  Outcome::idle);
    }
    {   // tickTimeout: pending work outlives the tick budget.
        ShardedExecutor exec(p);
        std::function<void()> nag = [&exec, &nag] {
            exec.post(0, exec.queue(0).curTick() + 100, nag);
        };
        exec.post(0, 100, nag);
        EXPECT_EQ(exec.runUntilIdle([] { return false; },
                                    microseconds(50),
                                    std::chrono::milliseconds(0)),
                  Outcome::tickTimeout);
    }
    {   // wallTimeout: unbounded simulated work, tiny wall budget.
        ShardedExecutor exec(p);
        std::function<void()> nag = [&exec, &nag] {
            exec.post(0, exec.queue(0).curTick() + 100, nag);
        };
        exec.post(0, 100, nag);
        EXPECT_EQ(exec.runUntilIdle([] { return false; }, maxTick / 2,
                                    std::chrono::milliseconds(1)),
                  Outcome::wallTimeout);
    }
    {   // cancelled: the flag is raised from inside the run.
        ShardedExecutor exec(p);
        std::atomic<bool> cancel{false};
        exec.setCancelFlag(&cancel);
        std::function<void()> nag = [&exec, &nag] {
            exec.post(0, exec.queue(0).curTick() + 100, nag);
        };
        exec.post(0, 100, nag);
        exec.post(1, microseconds(10), [&cancel] { cancel = true; });
        EXPECT_EQ(exec.runUntilIdle([] { return false; }, maxTick / 2,
                                    std::chrono::milliseconds(0)),
                  Outcome::cancelled);
        // The pre-checked fast path reports it too.
        EXPECT_EQ(exec.runUntilIdle([] { return false; },
                                    milliseconds(1),
                                    std::chrono::milliseconds(0)),
                  Outcome::cancelled);
    }
}

TEST(ShardedExecutor, CancelFlagStopsAParallelRun)
{
    ShardedExecutor::Params p;
    p.shards = 2;
    p.mode = ShardedExecutor::Mode::parallel;
    p.window = 1000;
    ShardedExecutor exec(p);
    std::atomic<bool> cancel{false};
    exec.setCancelFlag(&cancel);
    // Endless self-rescheduling work on both shards; shard 1 raises
    // the flag after a while. run() must return instead of walking
    // windows forever, leaving the remaining events queued.
    std::function<void()> nag0 = [&exec, &nag0] {
        exec.post(0, exec.queue(0).curTick() + 100, nag0);
    };
    exec.post(0, 100, nag0);
    exec.post(1, microseconds(10), [&cancel] { cancel = true; });
    Tick reached = exec.run();
    EXPECT_LT(reached, milliseconds(1));
    EXPECT_FALSE(exec.queue(0).empty());
}

} // namespace
