/**
 * @file
 * Checkpoint core tests: section round-trips, file format
 * validation (magic, version, checksums, truncation), stats-tree
 * capture, and EventQueue / Rng state round-trips including the
 * drain/refill protocol and counter freeze.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

using namespace contutto;

namespace
{

/** A self-cleaning temp file path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

TEST(CheckpointSection, PrimitivesRoundTrip)
{
    ckpt::Section s("t");
    s.putU8(0xab);
    s.putU32(0xdeadbeef);
    s.putU64(0x0123456789abcdefull);
    s.putF64(3.25);
    s.putStr("hello");
    std::uint8_t blob[3] = {1, 2, 3};
    s.putBytes(blob, sizeof(blob));

    EXPECT_EQ(s.getU8(), 0xab);
    EXPECT_EQ(s.getU32(), 0xdeadbeefu);
    EXPECT_EQ(s.getU64(), 0x0123456789abcdefull);
    EXPECT_EQ(s.getF64(), 3.25);
    EXPECT_EQ(s.getStr(), "hello");
    EXPECT_EQ(s.peekBytesLen(), 3u);
    std::uint8_t out[3] = {};
    s.getBytes(out, sizeof(out));
    EXPECT_EQ(out[2], 3);
    EXPECT_TRUE(s.atEnd());
}

TEST(CheckpointSection, ReadPastEndThrows)
{
    ckpt::Section s("t");
    s.putU32(7);
    (void)s.getU32();
    EXPECT_THROW(s.getU32(), ckpt::Error);
}

TEST(CheckpointSection, BlobLengthMismatchThrows)
{
    ckpt::Section s("t");
    std::uint8_t blob[4] = {};
    s.putBytes(blob, sizeof(blob));
    std::uint8_t out[8];
    EXPECT_THROW(s.getBytes(out, sizeof(out)), ckpt::Error);
}

TEST(CheckpointFile, RoundTripThroughDisk)
{
    TempPath p("ckpt_roundtrip.bin");
    {
        ckpt::Checkpoint ck;
        ckpt::Section &a = ck.add("alpha");
        a.putU64(42);
        a.putStr("state");
        ckpt::Section &b = ck.add("beta");
        b.putF64(1.5);
        ck.writeFile(p.str());
    }
    ckpt::Checkpoint ck = ckpt::Checkpoint::readFile(p.str());
    EXPECT_EQ(ck.numSections(), 2u);
    EXPECT_TRUE(ck.has("alpha"));
    EXPECT_FALSE(ck.has("gamma"));
    EXPECT_EQ(ck.section("alpha").getU64(), 42u);
    EXPECT_EQ(ck.section("alpha").getStr(), "state");
    EXPECT_EQ(ck.section("beta").getF64(), 1.5);
    EXPECT_THROW(ck.section("gamma"), ckpt::Error);
}

TEST(CheckpointFile, DuplicateSectionThrows)
{
    ckpt::Checkpoint ck;
    ck.add("x");
    EXPECT_THROW(ck.add("x"), ckpt::Error);
}

TEST(CheckpointFile, MissingFileThrows)
{
    EXPECT_THROW(
        ckpt::Checkpoint::readFile("/nonexistent/nowhere.ckpt"),
        ckpt::Error);
}

TEST(CheckpointFile, CorruptionIsDetected)
{
    ckpt::Checkpoint ck;
    ck.add("payload").putU64(0x1122334455667788ull);
    std::vector<std::uint8_t> raw = ck.serialize();

    // Flip one payload bit: both the section checksum and the file
    // checksum must miss nothing.
    for (std::size_t i = 0; i < raw.size(); ++i) {
        std::vector<std::uint8_t> bad = raw;
        bad[i] ^= 0x01;
        EXPECT_THROW(ckpt::Checkpoint::deserialize(bad), ckpt::Error)
            << "flipped byte " << i << " not detected";
    }
}

TEST(CheckpointFile, TruncationIsDetected)
{
    ckpt::Checkpoint ck;
    ck.add("payload").putU64(99);
    std::vector<std::uint8_t> raw = ck.serialize();
    for (std::size_t keep = 0; keep < raw.size(); ++keep) {
        std::vector<std::uint8_t> bad(raw.begin(),
                                      raw.begin() + keep);
        EXPECT_THROW(ckpt::Checkpoint::deserialize(bad), ckpt::Error)
            << "truncation to " << keep << " bytes not detected";
    }
}

TEST(CheckpointFile, ShortWriteNeverLeavesAPartialFile)
{
    // Atomicity under a failing disk: a write that cannot finish
    // must throw ckpt::Error and leave NO file behind — neither the
    // final path (rename never ran) nor the temp (unlinked), so a
    // reader can never observe a torn checkpoint.
    ckpt::Checkpoint ck;
    auto &s = ck.add("payload");
    for (int i = 0; i < 64; ++i)
        s.putU64(std::uint64_t(i) * 0x9e3779b97f4a7c15ull);

    TempPath p("short_write.ckpt");
    ckpt::testing::setShortWriteBudget(16);
    EXPECT_THROW(ck.writeFile(p.str()), ckpt::Error);
    ckpt::testing::setShortWriteBudget(-1);
    EXPECT_THROW(ckpt::Checkpoint::readFile(p.str()), ckpt::Error)
        << "a failed write must not leave the final file";
    std::ifstream tmp(p.str() + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good())
        << "a failed write must unlink its temp file";

    // And an overwrite that fails must keep the OLD file intact.
    ck.writeFile(p.str());
    ckpt::Checkpoint ck2;
    ck2.add("payload").putU64(7);
    ckpt::testing::setShortWriteBudget(4);
    EXPECT_THROW(ck2.writeFile(p.str()), ckpt::Error);
    ckpt::testing::setShortWriteBudget(-1);
    ckpt::Checkpoint back = ckpt::Checkpoint::readFile(p.str());
    EXPECT_EQ(back.section("payload").getU64(),
              0ull * 0x9e3779b97f4a7c15ull);
}

TEST(CheckpointFile, VersionMismatchThrows)
{
    ckpt::Checkpoint ck;
    ck.add("payload").putU64(1);
    std::vector<std::uint8_t> raw = ck.serialize();
    // Bump the version field (offset 8, after the magic) and re-seal
    // the file checksum so only the version check can complain.
    raw[8] += 1;
    std::uint64_t sum =
        ckpt::fnv1a(raw.data(), raw.size() - sizeof(std::uint64_t));
    std::memcpy(raw.data() + raw.size() - sizeof(sum), &sum,
                sizeof(sum));
    EXPECT_THROW(ckpt::Checkpoint::deserialize(raw), ckpt::Error);
}

TEST(CheckpointRng, StreamResumesExactly)
{
    Rng a(12345);
    for (int i = 0; i < 1000; ++i)
        (void)a.next();

    ckpt::Section s("rng");
    a.checkpointSave(s);

    Rng b(999); // deliberately different seed
    b.checkpointRestore(s);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next()) << "draw " << i;
}

TEST(CheckpointStats, TreeRoundTripsThroughSection)
{
    stats::StatGroup root("root");
    stats::Scalar sc(&root, "count", "a scalar");
    stats::Distribution dist(&root, "lat", "a distribution");
    stats::Histogram hist(&root, "hist", "a histogram", 10.0, 4);
    double shadow = 7;
    stats::Value val(&root, "live", "a live value",
                     [&shadow] { return shadow; });
    stats::StatGroup child("child", &root);
    stats::Scalar childSc(&child, "nested", "nested scalar");

    sc = 17;
    childSc = 3;
    for (double v : {1.0, 5.0, 25.0, 125.0}) {
        dist.sample(v);
        hist.sample(v);
    }

    ckpt::Section s("stats");
    ckpt::saveStats(root, s);

    // A structurally identical but freshly zeroed tree.
    stats::StatGroup root2("root");
    stats::Scalar sc2(&root2, "count", "a scalar");
    stats::Distribution dist2(&root2, "lat", "a distribution");
    stats::Histogram hist2(&root2, "hist", "a histogram", 10.0, 4);
    stats::Value val2(&root2, "live", "a live value",
                      [&shadow] { return shadow; });
    stats::StatGroup child2("child", &root2);
    stats::Scalar childSc2(&child2, "nested", "nested scalar");

    ckpt::restoreStats(root2, s);

    std::ostringstream ja, jb;
    stats::toJson(root, ja);
    stats::toJson(root2, jb);
    EXPECT_EQ(ja.str(), jb.str())
        << "restored stats tree must serialize identically";

    // The Welford accumulators must continue identically, not just
    // report the same summary.
    dist.sample(0.3);
    dist2.sample(0.3);
    EXPECT_EQ(dist.stddev(), dist2.stddev());
}

TEST(CheckpointStats, StructuralMismatchThrows)
{
    stats::StatGroup root("root");
    stats::Scalar sc(&root, "count", "a scalar");
    ckpt::Section s("stats");
    ckpt::saveStats(root, s);

    stats::StatGroup other("root");
    stats::Scalar otherSc(&other, "renamed", "a scalar");
    EXPECT_THROW(ckpt::restoreStats(other, s), ckpt::Error);
}

TEST(CheckpointEventQueue, DrainRefillRoundTrip)
{
    // Reference run: a periodic event that samples the rng, never
    // interrupted.
    auto makeRun = [](EventQueue &eq, Rng &rng,
                      std::vector<std::uint64_t> &trace,
                      EventFunctionWrapper *&ev) {
        ev = new EventFunctionWrapper(
            [&eq, &rng, &trace, &ev] {
                trace.push_back(eq.curTick() ^ rng.next());
                eq.schedule(ev, eq.curTick() + 100000);
            },
            "periodic");
    };

    std::vector<std::uint64_t> refTrace;
    EventQueue refEq;
    Rng refRng(7);
    EventFunctionWrapper *refEv = nullptr;
    makeRun(refEq, refRng, refTrace, refEv);
    refEq.schedule(refEv, 100000);
    refEq.run(1000000);
    refEq.run(2000000);
    refEq.deschedule(refEv);
    delete refEv;

    // Checkpointed run: stop at tick 1000000, snapshot, restore into
    // a brand-new queue/rng, finish there.
    std::vector<std::uint64_t> trace;
    ckpt::Checkpoint ck;
    Tick evWhen = 0;
    {
        EventQueue eq;
        Rng rng(7);
        EventFunctionWrapper *ev = nullptr;
        makeRun(eq, rng, trace, ev);
        eq.schedule(ev, 100000);
        eq.run(1000000);

        evWhen = ev->when();
        ck.add("when").putU64(evWhen);
        rng.checkpointSave(ck.add("rng"));
        eq.checkpointSave(ck.add("eq"));
        eq.deschedule(ev); // drain
        delete ev;
    }
    {
        EventQueue eq;
        Rng rng(31337);
        EventFunctionWrapper *ev = nullptr;
        makeRun(eq, rng, trace, ev);
        rng.checkpointRestore(ck.section("rng"));
        eq.checkpointRestore(ck.section("eq"));
        {
            EventQueue::CounterFreeze freeze(eq);
            eq.schedule(ev, ck.section("when").getU64()); // refill
        }
        eq.run(2000000);
        eq.deschedule(ev);
        delete ev;
    }
    EXPECT_EQ(trace, refTrace);
}

TEST(CheckpointEventQueue, CountersSurviveRoundTrip)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        OneShotEvent::schedule(eq, Tick(i) * 1000,
                               [&fired] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 10);
    EventQueue::Counters before = eq.counters();

    ckpt::Section s("eq");
    eq.checkpointSave(s);

    EventQueue eq2;
    eq2.checkpointRestore(s);
    EXPECT_EQ(eq2.curTick(), eq.curTick());
    EXPECT_EQ(eq2.counters().processed, before.processed);
    EXPECT_EQ(eq2.counters().schedules, before.schedules);
    EXPECT_EQ(eq2.counters().oneShotPoolMisses,
              before.oneShotPoolMisses);
}

TEST(CheckpointEventQueue, RestoreWithLiveEventsPanics)
{
    EventQueue eq;
    ckpt::Section s("eq");
    eq.checkpointSave(s);

    EventQueue eq2;
    EventFunctionWrapper ev([] {}, "live");
    eq2.schedule(&ev, 10);
    EXPECT_DEATH(eq2.checkpointRestore(s), "still live");
    eq2.deschedule(&ev);
}

TEST(CheckpointEventQueue, CancelFlagStopsRun)
{
    EventQueue eq;
    std::atomic<bool> cancel{false};
    std::uint64_t fired = 0;
    EventFunctionWrapper *ev = nullptr;
    EventFunctionWrapper periodic(
        [&] {
            if (++fired == 3 * EventQueue::cancelPollInterval)
                cancel.store(true, std::memory_order_relaxed);
            eq.schedule(ev, eq.curTick() + 1);
        },
        "periodic");
    ev = &periodic;
    eq.schedule(ev, 1);

    eq.setCancelFlag(&cancel);
    eq.run(maxTick);
    EXPECT_TRUE(eq.cancelRequested());
    // Cancellation lands at the next poll boundary after the flag
    // was raised — bounded, cooperative, with events left queued.
    EXPECT_GE(fired, 3 * EventQueue::cancelPollInterval);
    EXPECT_LE(fired, 4 * EventQueue::cancelPollInterval);
    EXPECT_FALSE(eq.empty());

    // Clearing the flag resumes normally.
    cancel.store(false);
    eq.deschedule(ev);
}

} // namespace
