/** @file Unit tests for the event queue. */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/event.hh"

using namespace contutto;

namespace
{

EventFunctionWrapper
record(std::vector<int> &log, int id)
{
    return EventFunctionWrapper([&log, id] { log.push_back(id); },
                                "record");
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    auto c = record(log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickUsesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    auto c = record(log, 3);
    eq.schedule(&a, 50);
    eq.schedule(&b, 50);
    eq.schedule(&c, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTiesBeforeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    EventFunctionWrapper low([&] { log.push_back(1); }, "low",
                             Event::statPriority);
    EventFunctionWrapper high([&] { log.push_back(2); }, "high",
                              Event::clockPriority);
    eq.schedule(&low, 10);
    eq.schedule(&high, 10);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, RunLimitStopsBeforeFutureEvents)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 100);
    eq.schedule(&b, 1000);
    Tick reached = eq.run(500);
    EXPECT_EQ(reached, 500u);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanRescheduleThemselves)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper *tickp = nullptr;
    EventFunctionWrapper tick(
        [&] {
            if (++count < 5)
                eq.schedule(tickp, eq.curTick() + 10);
        },
        "tick");
    tickp = &tick;
    eq.schedule(&tick, 0);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    EXPECT_TRUE(eq.empty());
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    EXPECT_EQ(eq.size(), 2u);
    eq.deschedule(&b);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.eventsProcessed(), 1u);
}

TEST(EventQueue, StepFiresExactlyOne)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 10);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(log.size(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, SameTickRescheduleIsOrderPreservingNoop)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 50);
    eq.schedule(&b, 50);
    // Rearming a at its own tick must NOT move it behind b.
    eq.reschedule(&a, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.counters().rescheduleNoops, 1u);
}

TEST(EventQueue, FarFutureEventsCrossTheWheelHorizon)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    auto c = record(log, 3);
    // b lands exactly on the horizon, c far past it; both take the
    // overflow path and must interleave correctly with near a.
    eq.schedule(&c, 5 * EventQueue::wheelSpan + 3);
    eq.schedule(&b, EventQueue::wheelSpan);
    eq.schedule(&a, EventQueue::wheelSpan - 1);
    EXPECT_EQ(eq.counters().overflowSpills, 2u);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 5 * EventQueue::wheelSpan + 3);
}

TEST(EventQueue, OverflowPullPreservesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> log;
    auto far = record(log, 1);
    auto near = record(log, 2);
    const Tick meet = EventQueue::wheelSpan + 100;
    // far is scheduled first (smaller order) from tick 0, beyond the
    // horizon. kick fires at 200 — inside the horizon of `meet` —
    // and schedules near at the same tick, into the bucket *before*
    // the queue pulls far across. The pull must place far (original
    // order) ahead of near despite arriving in the bucket second.
    EventFunctionWrapper kick(
        [&] {
            log.push_back(0);
            eq.schedule(&near, meet);
        },
        "kick");
    eq.schedule(&far, meet);
    eq.schedule(&kick, 200);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.counters().overflowPulls, 1u);
}

TEST(EventQueue, DeschedulingOverflowResidentIsLazy)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 2 * EventQueue::wheelSpan);
    eq.schedule(&b, 3 * EventQueue::wheelSpan);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
    EXPECT_EQ(eq.counters().stalePops, 1u);
}

TEST(EventQueue, RescheduleAcrossTheHorizon)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    eq.schedule(&a, 4 * EventQueue::wheelSpan);
    eq.reschedule(&a, 10); // overflow -> wheel
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(eq.curTick(), 10u);
    EXPECT_EQ(eq.counters().stalePops, 1u); // the abandoned entry
}

TEST(EventQueue, CountersTrackCoreActivity)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 10);
    eq.deschedule(&b);
    eq.run();
    const auto &c = eq.counters();
    EXPECT_EQ(c.schedules, 2u);
    EXPECT_EQ(c.deschedules, 1u);
    EXPECT_EQ(c.processed, 1u);
    EXPECT_EQ(c.liveHighWater, 2u);
    EXPECT_EQ(c.bucketHighWater, 2u);
}

TEST(EventQueue, OneShotPoolRecyclesSlots)
{
    EventQueue eq;
    int fired = 0;
    // A chain far longer than one pool chunk with one one-shot live
    // at a time: the first allocation misses and grows the pool, and
    // every subsequent one must reuse the freed slot.
    std::function<void()> next = [&] {
        if (++fired < 300)
            OneShotEvent::schedule(eq, eq.curTick() + 1, [&] {
                next();
            });
    };
    OneShotEvent::schedule(eq, 1, [&] { next(); });
    eq.run();
    EXPECT_EQ(fired, 300);
    const auto &c = eq.counters();
    EXPECT_EQ(c.oneShotPoolMisses, 1u);
    EXPECT_EQ(c.oneShotPoolHits, 299u);
}

TEST(EventQueue, OneShotCallbackCanScheduleOneShots)
{
    EventQueue eq;
    std::vector<int> log;
    OneShotEvent::schedule(eq, 10, [&] {
        log.push_back(1);
        OneShotEvent::schedule(eq, eq.curTick() + 5,
                               [&] { log.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(InplaceFunction, InvokesAndMoves)
{
    int calls = 0;
    InplaceFunction<void(), 32> f([&calls] { ++calls; });
    EXPECT_TRUE(static_cast<bool>(f));
    f();
    InplaceFunction<void(), 32> g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f));
    g();
    EXPECT_EQ(calls, 2);
    g.reset();
    EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InplaceFunction, DestroysCaptures)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    {
        InplaceFunction<int(), 32> f(
            [token] { return *token; });
        token.reset();
        EXPECT_EQ(f(), 7);
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(EventQueueDeath, SchedulingInPastPanics)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 100);
    eq.run();
    EXPECT_DEATH(eq.schedule(&b, 50), "in the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    eq.schedule(&a, 100);
    EXPECT_DEATH(eq.schedule(&a, 200), "twice");
    eq.deschedule(&a);
}

} // namespace
