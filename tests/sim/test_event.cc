/** @file Unit tests for the event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"

using namespace contutto;

namespace
{

EventFunctionWrapper
record(std::vector<int> &log, int id)
{
    return EventFunctionWrapper([&log, id] { log.push_back(id); },
                                "record");
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    auto c = record(log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickUsesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    auto c = record(log, 3);
    eq.schedule(&a, 50);
    eq.schedule(&b, 50);
    eq.schedule(&c, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTiesBeforeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    EventFunctionWrapper low([&] { log.push_back(1); }, "low",
                             Event::statPriority);
    EventFunctionWrapper high([&] { log.push_back(2); }, "high",
                              Event::clockPriority);
    eq.schedule(&low, 10);
    eq.schedule(&high, 10);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, RunLimitStopsBeforeFutureEvents)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 100);
    eq.schedule(&b, 1000);
    Tick reached = eq.run(500);
    EXPECT_EQ(reached, 500u);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanRescheduleThemselves)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper *tickp = nullptr;
    EventFunctionWrapper tick(
        [&] {
            if (++count < 5)
                eq.schedule(tickp, eq.curTick() + 10);
        },
        "tick");
    tickp = &tick;
    eq.schedule(&tick, 0);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    EXPECT_TRUE(eq.empty());
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    EXPECT_EQ(eq.size(), 2u);
    eq.deschedule(&b);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.eventsProcessed(), 1u);
}

TEST(EventQueue, StepFiresExactlyOne)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 10);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(log.size(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueDeath, SchedulingInPastPanics)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    auto b = record(log, 2);
    eq.schedule(&a, 100);
    eq.run();
    EXPECT_DEATH(eq.schedule(&b, 50), "in the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    auto a = record(log, 1);
    eq.schedule(&a, 100);
    EXPECT_DEATH(eq.schedule(&a, 200), "twice");
    eq.deschedule(&a);
}

} // namespace
