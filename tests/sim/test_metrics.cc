/**
 * @file
 * Unit tests for the live metrics registry (sim/metrics.hh): the
 * lock-cheap counters/gauges/histograms behind campaignd's health
 * endpoint. The concurrent hammer runs under the TSan CI job (the
 * whole point of the relaxed-atomic design is that it is clean
 * there), and the snapshot tests pin the monotonicity and
 * coherence properties the service reconciliation relies on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "sim/metrics.hh"

using namespace contutto::metrics;

TEST(Metrics, CounterGaugeBasics)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("requests_total", "requests");
    Gauge &g = reg.gauge("depth", "queue depth");

    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);

    g.set(7);
    g.add(3);
    g.sub(12);
    EXPECT_EQ(g.value(), -2);
}

TEST(Metrics, RegistrationInternsByName)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("hits_total", "hits");
    Counter &b = reg.counter("hits_total", "hits");
    EXPECT_EQ(&a, &b); // same metric, stable address

    Histogram &h1 = reg.histogram("lat_ms", "latency", {1, 10});
    Histogram &h2 = reg.histogram("lat_ms", "latency", {1, 10});
    EXPECT_EQ(&h1, &h2);
}

TEST(Metrics, HistogramBucketsAndInf)
{
    MetricsRegistry reg;
    Histogram &h =
        reg.histogram("lat_ms", "latency", {1, 5, 25});
    // Bounds are inclusive; above the last bound lands in +Inf.
    h.observe(0);
    h.observe(1);
    h.observe(2);
    h.observe(5);
    h.observe(25);
    h.observe(26);
    h.observe(1000);

    std::vector<std::uint64_t> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], 2u); // 0, 1
    EXPECT_EQ(buckets[1], 2u); // 2, 5
    EXPECT_EQ(buckets[2], 1u); // 25
    EXPECT_EQ(buckets[3], 2u); // 26, 1000 -> +Inf
    EXPECT_EQ(h.sum(), 0u + 1 + 2 + 5 + 25 + 26 + 1000);
}

TEST(Metrics, SnapshotCountMatchesBuckets)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("h", "h", {10});
    for (int i = 0; i < 9; ++i)
        h.observe(std::uint64_t(i));

    Snapshot snap = reg.snapshot();
    const HistogramSample *hs = snap.histogram("h");
    ASSERT_NE(hs, nullptr);
    std::uint64_t total = 0;
    for (std::uint64_t b : hs->buckets)
        total += b;
    // Coherence by construction: count is derived from the very
    // bucket values this snapshot read.
    EXPECT_EQ(hs->count, total);
    EXPECT_EQ(hs->count, 9u);
    ASSERT_EQ(hs->le.size(), 1u);
    EXPECT_EQ(hs->le[0], 10u);
    EXPECT_EQ(hs->buckets.size(), 2u);
}

TEST(Metrics, DeltaSubtractsCountersKeepsGauges)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("ops_total", "ops");
    Gauge &g = reg.gauge("level", "level");
    Histogram &h = reg.histogram("lat", "lat", {10, 100});

    c.inc(5);
    g.set(3);
    h.observe(7);
    Snapshot from = reg.snapshot();

    c.inc(2);
    g.set(11);
    h.observe(50);
    h.observe(5000);
    Snapshot to = reg.snapshot();

    Snapshot d = MetricsRegistry::delta(from, to);
    EXPECT_EQ(d.counterValue("ops_total"), 2u);
    ASSERT_NE(d.gauge("level"), nullptr);
    EXPECT_EQ(d.gauge("level")->value, 11); // gauges report `to`
    const HistogramSample *hs = d.histogram("lat");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, 2u);
    EXPECT_EQ(hs->buckets[0], 0u);
    EXPECT_EQ(hs->buckets[1], 1u); // the 50
    EXPECT_EQ(hs->buckets[2], 1u); // the 5000 -> +Inf
    EXPECT_EQ(hs->sum, 5050u);
}

TEST(Metrics, PrometheusTextFormat)
{
    MetricsRegistry reg;
    reg.counter("reqs_total", "requests served").inc(3);
    reg.gauge("depth", "queue depth").set(2);
    Histogram &h = reg.histogram("lat_ms", "latency", {1, 10});
    h.observe(1);
    h.observe(5);
    h.observe(100);

    std::string text = reg.prometheusText();

    EXPECT_NE(text.find("# HELP reqs_total requests served\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE reqs_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("reqs_total 3\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE depth gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("depth 2\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE lat_ms histogram\n"),
              std::string::npos);
    // Buckets are CUMULATIVE in the exposition.
    EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("lat_ms_bucket{le=\"10\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("lat_ms_sum 106\n"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_count 3\n"), std::string::npos);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
}

/**
 * The hammer: many threads bumping the same metrics while a reader
 * snapshots continuously. Run under TSan (the CI tsan job includes
 * test_sim) this proves the relaxed-atomic design is race-free;
 * under any build it proves per-metric snapshot monotonicity —
 * counters and histogram buckets never go backwards between
 * consecutive snapshots, and histogram count always equals the sum
 * of its buckets.
 */
TEST(Metrics, ConcurrentHammerSnapshotsStayMonotone)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("hammer_total", "hammered");
    Gauge &g = reg.gauge("hammer_level", "level");
    Histogram &h =
        reg.histogram("hammer_lat", "lat", {1, 4, 16, 64});

    constexpr unsigned kWriters = 4;
    constexpr std::uint64_t kOpsPerWriter = 20000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) {
                c.inc();
                g.set(std::int64_t(i));
                h.observe((i * 7 + w) % 100);
            }
        });
    }

    std::thread reader([&] {
        Snapshot prev = reg.snapshot();
        while (!stop.load(std::memory_order_acquire)) {
            Snapshot cur = reg.snapshot();
            const CounterSample *pc = prev.counter("hammer_total");
            const CounterSample *cc = cur.counter("hammer_total");
            ASSERT_NE(pc, nullptr);
            ASSERT_NE(cc, nullptr);
            EXPECT_GE(cc->value, pc->value);
            const HistogramSample *ph =
                prev.histogram("hammer_lat");
            const HistogramSample *ch =
                cur.histogram("hammer_lat");
            ASSERT_NE(ph, nullptr);
            ASSERT_NE(ch, nullptr);
            std::uint64_t total = 0;
            for (std::size_t i = 0; i < ch->buckets.size(); ++i) {
                EXPECT_GE(ch->buckets[i], ph->buckets[i]);
                total += ch->buckets[i];
            }
            EXPECT_EQ(ch->count, total);
            EXPECT_GE(ch->count, ph->count);
            EXPECT_GE(ch->sum, ph->sum);
            // delta() accepts any ordered pair of snapshots.
            Snapshot d = MetricsRegistry::delta(prev, cur);
            EXPECT_EQ(d.counterValue("hammer_total"),
                      cc->value - pc->value);
            prev = std::move(cur);
        }
    });

    for (std::thread &w : writers)
        w.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    Snapshot fin = reg.snapshot();
    EXPECT_EQ(fin.counterValue("hammer_total"),
              std::uint64_t(kWriters) * kOpsPerWriter);
    const HistogramSample *hs = fin.histogram("hammer_lat");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, std::uint64_t(kWriters) * kOpsPerWriter);
}
