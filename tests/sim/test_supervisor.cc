/**
 * @file
 * Campaign supervisor: every task gets exactly one verdict, failing
 * tasks climb the retry/degradation ladder, hung tasks are reeled
 * in by the deadline watchdog, and healthy simulations stay
 * bit-identical under supervision.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "sim/supervisor.hh"

using namespace contutto;
using namespace contutto::sim;
using Outcome = CampaignSupervisor::TaskOutcome;

namespace
{

CampaignSupervisor::Params
fastParams(unsigned shards, ShardedExecutor::Mode mode)
{
    CampaignSupervisor::Params p;
    p.shards = shards;
    p.mode = mode;
    p.watchdogInterval = std::chrono::milliseconds(2);
    p.backoffBase = std::chrono::milliseconds(0); // fast tests
    return p;
}

TEST(CampaignSupervisor, HealthyFarmAllOk)
{
    for (auto mode : {ShardedExecutor::Mode::serial,
                      ShardedExecutor::Mode::parallel}) {
        CampaignSupervisor sup(fastParams(3, mode));
        std::vector<int> ran(10, 0);
        std::vector<CampaignSupervisor::Task> tasks;
        for (unsigned i = 0; i < ran.size(); ++i)
            tasks.push_back(
                [&ran, i](const std::atomic<bool> &) { ran[i] = 1; });
        auto r = sup.run(tasks);
        EXPECT_TRUE(r.allAccounted(tasks.size()));
        EXPECT_TRUE(r.allOk());
        EXPECT_EQ(r.succeeded, 10u);
        EXPECT_EQ(r.retried, 0u);
        for (unsigned i = 0; i < ran.size(); ++i) {
            EXPECT_EQ(ran[i], 1);
            EXPECT_EQ(r.tasks[i].outcome, Outcome::ok);
            EXPECT_EQ(r.tasks[i].attempts, 1u);
        }
    }
}

TEST(CampaignSupervisor, FlakyTaskSucceedsOnRetry)
{
    CampaignSupervisor sup(
        fastParams(2, ShardedExecutor::Mode::parallel));
    // Task 3 fails once then succeeds; the farm retry absorbs it.
    std::atomic<int> tries{0};
    std::vector<CampaignSupervisor::Task> tasks(6);
    for (unsigned i = 0; i < tasks.size(); ++i)
        tasks[i] = [i, &tries](const std::atomic<bool> &) {
            if (i == 3 && tries.fetch_add(1) == 0)
                throw std::runtime_error("transient");
        };
    auto r = sup.run(tasks);
    EXPECT_TRUE(r.allAccounted(tasks.size()));
    EXPECT_TRUE(r.allOk());
    EXPECT_EQ(r.retried, 1u);
    EXPECT_EQ(r.degraded, 0u);
    EXPECT_EQ(r.tasks[3].outcome, Outcome::okRetried);
    EXPECT_EQ(r.tasks[3].attempts, 2u);
}

TEST(CampaignSupervisor, DegradationLadderEndsInQuarantine)
{
    CampaignSupervisor sup(
        fastParams(2, ShardedExecutor::Mode::parallel));
    // Task 1 succeeds only when run alone (the serial pass); task 4
    // never succeeds and must be quarantined with its error kept.
    std::atomic<int> concurrentOk{0};
    std::vector<CampaignSupervisor::Task> tasks(6);
    for (unsigned i = 0; i < tasks.size(); ++i)
        tasks[i] = [i, &concurrentOk](const std::atomic<bool> &) {
            if (i == 1 && concurrentOk.fetch_add(1) < 2)
                throw std::runtime_error("needs isolation");
            if (i == 4)
                throw std::runtime_error("hard failure");
        };
    auto r = sup.run(tasks);
    EXPECT_TRUE(r.allAccounted(tasks.size()));
    EXPECT_EQ(r.tasks[1].outcome, Outcome::okDegraded);
    EXPECT_EQ(r.tasks[1].attempts, 3u); // 2 farm + 1 serial
    EXPECT_EQ(r.degraded, 1u);
    EXPECT_EQ(r.tasks[4].outcome, Outcome::quarantined);
    EXPECT_EQ(r.tasks[4].error, "hard failure");
    EXPECT_EQ(r.quarantined, 1u);
    // The neighbours were never disturbed.
    EXPECT_EQ(r.succeeded, 5u);
}

TEST(CampaignSupervisor, HungTaskIsTimedOutByTheWatchdog)
{
    auto p = fastParams(2, ShardedExecutor::Mode::parallel);
    p.taskDeadline = std::chrono::milliseconds(20);
    CampaignSupervisor sup(p);
    std::vector<CampaignSupervisor::Task> tasks(4);
    for (unsigned i = 0; i < tasks.size(); ++i)
        tasks[i] = [i](const std::atomic<bool> &cancel) {
            if (i != 2)
                return;
            // A "hung" simulation: spins until cancelled, as a
            // cooperative event loop with the flag attached would.
            while (!cancel.load(std::memory_order_relaxed))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        };
    auto r = sup.run(tasks);
    EXPECT_TRUE(r.allAccounted(tasks.size()));
    EXPECT_EQ(r.tasks[2].outcome, Outcome::timedOut);
    EXPECT_FALSE(r.tasks[2].unresponsive);
    EXPECT_EQ(r.timedOut, 1u);
    EXPECT_EQ(r.succeeded, 3u);
}

TEST(CampaignSupervisor, UnresponsiveTaskIsFlaggedAsHung)
{
    auto p = fastParams(2, ShardedExecutor::Mode::parallel);
    p.taskDeadline = std::chrono::milliseconds(10);
    p.cancelGrace = std::chrono::milliseconds(20);
    CampaignSupervisor sup(p);
    std::vector<CampaignSupervisor::Task> tasks(2);
    tasks[0] = [](const std::atomic<bool> &) {};
    // Ignores its cancel token well past the grace period before
    // finally returning: a wedged shard the watchdog must report.
    tasks[1] = [](const std::atomic<bool> &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
    };
    auto r = sup.run(tasks);
    EXPECT_EQ(r.tasks[1].outcome, Outcome::timedOut);
    EXPECT_TRUE(r.tasks[1].unresponsive);
    EXPECT_EQ(r.unresponsive, 1u);
}

TEST(CampaignSupervisor, CancelAllDrainsTheCampaign)
{
    auto p = fastParams(2, ShardedExecutor::Mode::parallel);
    CampaignSupervisor sup(p);
    std::atomic<int> started{0};
    std::vector<CampaignSupervisor::Task> tasks(16);
    for (unsigned i = 0; i < tasks.size(); ++i)
        tasks[i] = [&sup, &started](const std::atomic<bool> &cancel) {
            if (started.fetch_add(1) == 3)
                sup.cancelAll();
            // Cooperative: wait out the cancellation if raised.
            for (int k = 0; k < 50; ++k) {
                if (cancel.load(std::memory_order_relaxed))
                    return;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        };
    auto r = sup.run(tasks);
    EXPECT_TRUE(r.allAccounted(tasks.size()));
    EXPECT_GT(r.cancelled, 0u);
    // Nothing is lost: every task is either done or cancelled.
    EXPECT_EQ(r.succeeded + r.cancelled + r.timedOut,
              unsigned(tasks.size()));
}

TEST(CampaignSupervisor, SupervisedSimulationStaysBitIdentical)
{
    // The determinism contract: a healthy simulation task computes
    // the same result under the supervisor (any mode) as bare.
    auto simulate = [](unsigned i) {
        EventQueue eq;
        std::uint64_t acc = i;
        for (int k = 0; k < 100; ++k)
            OneShotEvent::schedule(eq, Tick(k) * 7,
                                   [&acc, k] { acc = acc * 31 + k; });
        eq.run();
        return acc;
    };
    std::vector<std::uint64_t> bare(8);
    for (unsigned i = 0; i < 8; ++i)
        bare[i] = simulate(i);

    for (auto mode : {ShardedExecutor::Mode::serial,
                      ShardedExecutor::Mode::parallel}) {
        CampaignSupervisor sup(fastParams(4, mode));
        std::vector<std::uint64_t> out(8, 0);
        std::vector<CampaignSupervisor::Task> tasks;
        for (unsigned i = 0; i < 8; ++i)
            tasks.push_back([&out, &simulate, i](
                                const std::atomic<bool> &) {
                out[i] = simulate(i);
            });
        auto r = sup.run(tasks);
        EXPECT_TRUE(r.allOk());
        EXPECT_EQ(out, bare);
    }
}

TEST(CampaignSupervisor, BackoffScheduleIsSeeded)
{
    // Same seed, same schedule; the backoff must also respect the
    // cap. (White-box via timing would be flaky; instead check the
    // retry ladder is unaffected by a large base + tiny cap.)
    auto p = fastParams(2, ShardedExecutor::Mode::parallel);
    p.backoffBase = std::chrono::milliseconds(1000);
    p.backoffCap = std::chrono::milliseconds(1);
    p.parallelAttempts = 3;
    CampaignSupervisor sup(p);
    std::atomic<int> tries{0};
    std::vector<CampaignSupervisor::Task> tasks(1);
    tasks[0] = [&tries](const std::atomic<bool> &) {
        if (tries.fetch_add(1) < 2)
            throw std::runtime_error("transient");
    };
    const auto t0 = std::chrono::steady_clock::now();
    auto r = sup.run(tasks);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(r.tasks[0].outcome, Outcome::okRetried);
    EXPECT_EQ(r.tasks[0].attempts, 3u);
    // Two backoffs, each capped at 1 ms: nowhere near the 1 s base.
    EXPECT_LT(elapsed, std::chrono::milliseconds(500));
}

TEST(CampaignSupervisor, RetryExhaustionWithoutSerialPassQuarantines)
{
    // The campaign service configuration: parallel attempts only,
    // no serial degradation pass. Exhaustion must go straight to
    // quarantined — never a lost task, never a phantom retry.
    auto p = fastParams(1, ShardedExecutor::Mode::serial);
    p.parallelAttempts = 3;
    p.serialAttempts = 0;
    CampaignSupervisor sup(p);
    std::atomic<int> tries{0};
    std::vector<CampaignSupervisor::Task> tasks(1);
    tasks[0] = [&tries](const std::atomic<bool> &) {
        tries.fetch_add(1);
        throw std::runtime_error("always fails");
    };
    auto r = sup.run(tasks);
    EXPECT_TRUE(r.allAccounted(tasks.size()));
    EXPECT_EQ(r.tasks[0].outcome, Outcome::quarantined);
    EXPECT_EQ(r.tasks[0].attempts, 3u);
    EXPECT_EQ(tries.load(), 3);
    EXPECT_EQ(r.tasks[0].error, "always fails");
    EXPECT_EQ(r.quarantined, 1u);
    EXPECT_EQ(r.degraded, 0u);
}

TEST(CampaignSupervisor, CancelDuringGraceWindowIsNotUnresponsive)
{
    // A task that honours its token *within* the grace window must
    // be a plain timeout, not a hung-shard report: the grace scan
    // may only flag tasks that outlive the whole window.
    auto p = fastParams(1, ShardedExecutor::Mode::parallel);
    p.taskDeadline = std::chrono::milliseconds(10);
    p.cancelGrace = std::chrono::milliseconds(200);
    CampaignSupervisor sup(p);
    std::vector<CampaignSupervisor::Task> tasks(1);
    tasks[0] = [](const std::atomic<bool> &cancel) {
        while (!cancel.load(std::memory_order_relaxed))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        // Unwind "slowly" but well inside the grace budget.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    };
    auto r = sup.run(tasks);
    EXPECT_TRUE(r.allAccounted(tasks.size()));
    EXPECT_EQ(r.tasks[0].outcome, Outcome::timedOut);
    EXPECT_FALSE(r.tasks[0].unresponsive);
    EXPECT_EQ(r.unresponsive, 0u);
}

TEST(CampaignSupervisor, ZeroDeadlineMeansUnlimited)
{
    // deadline 0 at both levels (Params and TaskSpec) must mean
    // "no watchdog", not "instant timeout".
    auto p = fastParams(2, ShardedExecutor::Mode::parallel);
    p.taskDeadline = std::chrono::milliseconds(0);
    p.watchdogInterval = std::chrono::milliseconds(1);
    CampaignSupervisor sup(p);
    std::vector<CampaignSupervisor::TaskSpec> tasks(2);
    for (auto &t : tasks) {
        t.deadline = std::chrono::milliseconds(0);
        t.fn = [](const std::atomic<bool> &cancel) {
            // Long enough for many watchdog scans.
            for (int k = 0; k < 30; ++k) {
                EXPECT_FALSE(
                    cancel.load(std::memory_order_relaxed));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        };
    }
    auto r = sup.run(tasks);
    EXPECT_TRUE(r.allAccounted(tasks.size()));
    EXPECT_TRUE(r.allOk());
    EXPECT_EQ(r.timedOut, 0u);
}

TEST(CampaignSupervisor, PerTaskDeadlineOverridesCampaignDefault)
{
    // TaskSpec deadlines are per task: a short-deadline spinner
    // times out while its long-deadline twin finishes, under one
    // campaign whose default would have spared both.
    auto p = fastParams(2, ShardedExecutor::Mode::parallel);
    p.taskDeadline = std::chrono::milliseconds(0); // unlimited
    CampaignSupervisor sup(p);
    std::vector<CampaignSupervisor::TaskSpec> tasks(2);
    tasks[0].deadline = std::chrono::milliseconds(10);
    tasks[1].deadline = std::chrono::milliseconds(2000);
    for (auto &t : tasks)
        t.fn = [](const std::atomic<bool> &cancel) {
            // ~40 ms of cooperative work.
            for (int k = 0; k < 40; ++k) {
                if (cancel.load(std::memory_order_relaxed))
                    return;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        };
    auto r = sup.run(tasks);
    EXPECT_TRUE(r.allAccounted(tasks.size()));
    EXPECT_EQ(r.tasks[0].outcome, Outcome::timedOut);
    EXPECT_EQ(r.tasks[1].outcome, Outcome::ok);
    EXPECT_EQ(r.timedOut, 1u);
    EXPECT_EQ(r.succeeded, 1u);
}

} // namespace
