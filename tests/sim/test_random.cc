/** @file Unit and property tests for the RNG. */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace contutto;

namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngBoundSweep, MeanNearHalfBound)
{
    std::uint64_t bound = GetParam();
    Rng r(bound);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += double(r.below(bound));
    double expected = (double(bound) - 1) / 2.0;
    EXPECT_NEAR(sum / n, expected, double(bound) * 0.02 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 10, 100, 4096, 1000000));

} // namespace
