/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"

using namespace contutto::stats;

namespace
{

TEST(Scalar, CountsAndResets)
{
    StatGroup g("g");
    Scalar s(&g, "reads", "number of reads");
    ++s;
    s += 4;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Distribution, Moments)
{
    StatGroup g("g");
    Distribution d(&g, "lat", "latency");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(d.maximum(), 9.0);
    // Sample stddev of this classic set is ~2.138.
    EXPECT_NEAR(d.stddev(), 2.138, 0.01);
}

TEST(Distribution, StddevStableAtLargeMean)
{
    // The naive sum-of-squares formula catastrophically cancels
    // here; Welford's recurrence keeps full precision.
    StatGroup g("g");
    Distribution d(&g, "lat", "latency");
    const double base = 1e9;
    for (double off : {0.0, 1.0, 2.0})
        d.sample(base + off);
    EXPECT_NEAR(d.mean(), base + 1.0, 1e-6);
    EXPECT_NEAR(d.stddev(), 1.0, 1e-9);
}

TEST(Distribution, EmptyIsZero)
{
    StatGroup g("g");
    Distribution d(&g, "lat", "latency");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.minimum(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    StatGroup g("g");
    Histogram h(&g, "h", "test", 10.0, 4); // buckets [0,10) ... [30,40)
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(35);
    h.sample(1000); // overflow
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 1u); // overflow bucket
    EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, Quantiles)
{
    StatGroup g("g");
    Histogram h(&g, "h", "test", 1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(double(i) + 0.5);
    // p50: 50 samples lie at or below bucket 49's upper edge (50.0).
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, EmptyQuantileIsNaN)
{
    StatGroup g("g");
    Histogram h(&g, "h", "test", 10.0, 4);
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_TRUE(std::isnan(h.quantile(1.0)));
}

TEST(Histogram, HugeSampleLandsInOverflow)
{
    StatGroup g("g");
    Histogram h(&g, "h", "test", 10.0, 4);
    // Values far beyond any bucket index (would overflow a size_t
    // conversion if binned naively) count as overflow.
    h.sample(1e300);
    h.sample(-5.0); // negative: clamps into the first bucket
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(StatGroup, HierarchicalPrint)
{
    StatGroup root("system");
    StatGroup child("dmi", &root);
    Scalar s(&child, "frames", "frames sent");
    s += 3;
    std::ostringstream os;
    root.printStats(os);
    EXPECT_NE(os.str().find("system.dmi.frames 3"), std::string::npos);
}

TEST(StatGroup, ResetRecurses)
{
    StatGroup root("system");
    StatGroup child("dmi", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(StatGroup, FindStat)
{
    StatGroup g("g");
    Scalar s(&g, "hits", "");
    EXPECT_EQ(g.findStat("hits"), &s);
    EXPECT_EQ(g.findStat("misses"), nullptr);
}

} // namespace
