/** @file Unit tests for clock domains. */

#include <gtest/gtest.h>

#include "sim/clock.hh"
#include "sim/types.hh"

using namespace contutto;

namespace
{

TEST(ClockDomain, PeriodAndFrequency)
{
    ClockDomain fabric("fabric", picoseconds(4000)); // 250 MHz
    EXPECT_EQ(fabric.period(), 4000u);
    EXPECT_NEAR(fabric.frequency(), 250e6, 1.0);
}

TEST(ClockDomain, NextEdgeRoundsUp)
{
    ClockDomain d("d", 100);
    EXPECT_EQ(d.nextEdge(0), 0u);
    EXPECT_EQ(d.nextEdge(1), 100u);
    EXPECT_EQ(d.nextEdge(99), 100u);
    EXPECT_EQ(d.nextEdge(100), 100u);
    EXPECT_EQ(d.nextEdge(101), 200u);
}

TEST(ClockDomain, EdgeAfterAddsCycles)
{
    ClockDomain d("d", 100);
    EXPECT_EQ(d.edgeAfter(50, 0), 100u);
    EXPECT_EQ(d.edgeAfter(50, 3), 400u);
    EXPECT_EQ(d.edgeAfter(100, 2), 300u);
}

TEST(ClockDomain, CycleConversions)
{
    ClockDomain d("d", 250);
    EXPECT_EQ(d.cyclesToTicks(4), 1000u);
    EXPECT_EQ(d.ticksToCycles(1000), 4u);
    EXPECT_EQ(d.ticksToCycles(1001), 5u);
    EXPECT_EQ(d.cycleAt(0), 0u);
    EXPECT_EQ(d.cycleAt(249), 0u);
    EXPECT_EQ(d.cycleAt(250), 1u);
}

TEST(Clocked, SchedulesOnOwnEdges)
{
    EventQueue eq;
    ClockDomain d("d", 1000);
    Clocked c(eq, d);

    int fired_at = -1;
    EventFunctionWrapper ev(
        [&] { fired_at = int(eq.curTick()); }, "ev");

    // Advance time to a non-edge tick via a dummy event.
    EventFunctionWrapper dummy([] {}, "dummy");
    eq.schedule(&dummy, 1500);
    eq.run();
    EXPECT_EQ(eq.curTick(), 1500u);

    c.scheduleClocked(&ev, 2); // next edge 2000, +2 cycles -> 4000
    eq.run();
    EXPECT_EQ(fired_at, 4000);
    EXPECT_EQ(c.curCycle(), 4u);
}

TEST(ClockDomain, ModelledSystemClocksAreExact)
{
    // All the clocks in the modelled system must be exactly
    // representable in 1 ps ticks.
    EXPECT_EQ(periodFromFreq(8e9), 125u);    // DMI lane bit clock
    EXPECT_EQ(periodFromFreq(2e9), 500u);    // POWER8 nest
    EXPECT_EQ(periodFromFreq(250e6), 4000u); // FPGA fabric
}

} // namespace
