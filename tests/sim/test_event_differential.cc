/**
 * @file
 * Differential determinism test for the ladder event queue.
 *
 * Drives 1M+ randomized schedule/deschedule/reschedule/step ops
 * through the real EventQueue and, in lock-step, through a minimal
 * reference implementation (binary heap + lazy deletion — the
 * pre-ladder structure) that follows the same documented contract:
 * (tick, priority, insertion order) firing, and same-tick reschedule
 * as an order-preserving no-op. Any divergence in the fired
 * (tick, id, priority) sequence fails the test, covering the wheel,
 * the overflow heap, horizon crossings, and pull migration under
 * load far messier than the unit tests.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/event.hh"

using namespace contutto;

namespace
{

struct Fired
{
    Tick when;
    int id;
    int prio;

    bool
    operator==(const Fired &o) const
    {
        return when == o.when && id == o.id && prio == o.prio;
    }
};

class RecEvent : public Event
{
  public:
    RecEvent(std::vector<Fired> &log, EventQueue &eq, int id,
             int prio)
        : Event(prio), log_(&log), eq_(&eq), id_(id)
    {}

    void
    process() override
    {
        log_->push_back(Fired{eq_->curTick(), id_, priority()});
    }

    const char *name() const override { return "rec"; }

  private:
    std::vector<Fired> *log_;
    EventQueue *eq_;
    int id_;
};

/** The reference: a plain heap with generation-based lazy deletion. */
class RefQueue
{
  public:
    explicit RefQueue(std::size_t ids) : st_(ids) {}

    Tick cur() const { return cur_; }
    bool scheduled(int id) const { return st_[id].sched; }
    Tick when(int id) const { return st_[id].when; }

    void
    schedule(int id, Tick when, int prio)
    {
        St &s = st_[std::size_t(id)];
        ASSERT_FALSE(s.sched);
        s.sched = true;
        s.when = when;
        ++s.gen;
        heap_.push(Entry{when, prio, order_++, id, s.gen});
        ++live_;
    }

    void
    deschedule(int id)
    {
        St &s = st_[std::size_t(id)];
        ASSERT_TRUE(s.sched);
        s.sched = false;
        ++s.gen;
        --live_;
    }

    void
    reschedule(int id, Tick when, int prio)
    {
        St &s = st_[std::size_t(id)];
        if (s.sched) {
            if (s.when == when)
                return; // mirror the documented no-op fast path
            deschedule(id);
        }
        schedule(id, when, prio);
    }

    std::size_t size() const { return live_; }

    bool
    step(std::vector<Fired> &log)
    {
        skipStale();
        if (heap_.empty())
            return false;
        Entry e = heap_.top();
        heap_.pop();
        cur_ = e.when;
        st_[std::size_t(e.id)].sched = false;
        --live_;
        log.push_back(Fired{e.when, e.id, e.prio});
        return true;
    }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        std::uint64_t order;
        int id;
        std::uint64_t gen;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return order > o.order;
        }
    };

    struct St
    {
        bool sched = false;
        Tick when = 0;
        std::uint64_t gen = 0;
    };

    void
    skipStale()
    {
        while (!heap_.empty()) {
            const Entry &top = heap_.top();
            const St &s = st_[std::size_t(top.id)];
            if (s.sched && s.gen == top.gen)
                return;
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        heap_;
    std::vector<St> st_;
    Tick cur_ = 0;
    std::uint64_t order_ = 0;
    std::size_t live_ = 0;
};

TEST(EventQueueDifferential, MillionOpFuzzMatchesReferenceHeap)
{
    constexpr int kEvents = 512;
    constexpr std::uint64_t kOps = 1'200'000;
    constexpr Tick span = EventQueue::wheelSpan;

    EventQueue eq;
    RefQueue ref(kEvents);
    std::vector<Fired> logNew, logRef;
    logNew.reserve(kOps);
    logRef.reserve(kOps);

    // mt19937_64 output is fully specified by the standard, so the
    // op sequence is identical on every platform; raw modulo keeps
    // it free of implementation-defined distributions.
    std::mt19937_64 rng(0xC01170770ULL);

    static constexpr int prios[] = {Event::clockPriority,
                                    Event::defaultPriority,
                                    Event::statPriority};
    std::vector<std::unique_ptr<RecEvent>> evs;
    evs.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i)
        evs.push_back(std::make_unique<RecEvent>(
            logNew, eq, i, prios[std::size_t(rng() % 3)]));

    auto pickDelta = [&](std::uint64_t r) -> Tick {
        const std::uint64_t d = (r >> 16) & 0xFFFFFFFF;
        switch ((r >> 52) % 10) {
          case 8:
            return Tick(d % std::uint64_t(span)); // anywhere on wheel
          case 9: // far future: overflow heap
            return span + Tick(d % std::uint64_t(8 * span));
          default: // simulator-realistic near future
            return Tick(d % 4096);
        }
    };

    for (std::uint64_t i = 0; i < kOps; ++i) {
        const std::uint64_t r = rng();
        const int op = int(r % 100);
        const int id = int((r >> 8) % kEvents);
        RecEvent &ev = *evs[std::size_t(id)];

        if (op < 50) {
            if (!ev.scheduled()) {
                const Tick when = eq.curTick() + pickDelta(r);
                eq.schedule(&ev, when);
                ref.schedule(id, when, ev.priority());
            }
        } else if (op < 60) {
            if (ev.scheduled()) {
                eq.deschedule(&ev);
                ref.deschedule(id);
            }
        } else if (op < 78) {
            Tick when = eq.curTick() + pickDelta(r);
            if (ev.scheduled() && (r >> 32) % 4 == 0)
                when = ev.when(); // exercise the no-op fast path
            eq.reschedule(&ev, when);
            ref.reschedule(id, when, ev.priority());
        } else {
            const bool a = eq.step();
            const bool b = ref.step(logRef);
            ASSERT_EQ(a, b) << "step disagree at op " << i;
            if (a) {
                ASSERT_EQ(logNew.back(), logRef.back())
                    << "divergence at op " << i << ": new=("
                    << logNew.back().when << "," << logNew.back().id
                    << ") ref=(" << logRef.back().when << ","
                    << logRef.back().id << ")";
            }
        }
        ASSERT_EQ(eq.size(), ref.size());
    }

    // Drain both queues completely.
    for (;;) {
        const bool a = eq.step();
        const bool b = ref.step(logRef);
        ASSERT_EQ(a, b);
        if (!a)
            break;
    }

    ASSERT_EQ(logNew.size(), logRef.size());
    ASSERT_EQ(logNew, logRef);
    EXPECT_EQ(eq.curTick(), ref.cur());
    EXPECT_GT(logNew.size(), 100000u);
}

} // namespace
