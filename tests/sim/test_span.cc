/** @file Unit tests for the cross-layer span tracker. */

#include <gtest/gtest.h>

#include "sim/span.hh"

using namespace contutto;

namespace
{

/** Every test runs against a clean, enabled, unsampled tracker. */
class SpanTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        span::reset();
        span::setSampleInterval(1);
        span::setCapacity(65536);
        span::setEnabled(true);
    }

    void TearDown() override
    {
        span::setEnabled(false);
        span::setSampleInterval(1);
        span::setCapacity(65536);
        span::reset();
    }
};

TEST_F(SpanTest, OpenCloseRetiresOneSpan)
{
    TraceId id = span::acquireId();
    ASSERT_NE(id, noTraceId);
    span::open(id, "host", 100);
    EXPECT_EQ(span::openSpans(), 1u);
    span::close(id, "host", 250);
    EXPECT_EQ(span::openSpans(), 0u);

    auto spans = span::spansFor(id);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_STREQ(spans[0].stage, "host");
    EXPECT_EQ(spans[0].begin, Tick(100));
    EXPECT_EQ(spans[0].end, Tick(250));
}

TEST_F(SpanTest, OpenIsIdempotentWhileOpen)
{
    TraceId id = span::acquireId();
    span::open(id, "dmi.down", 100);
    // A write's eight data frames re-open the same stage; the span
    // keeps the first frame's departure time.
    span::open(id, "dmi.down", 140);
    span::open(id, "dmi.down", 180);
    span::close(id, "dmi.down", 200);
    auto spans = span::spansFor(id);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].begin, Tick(100));
    EXPECT_EQ(span::openSpans(), 0u);
}

TEST_F(SpanTest, NestingDepthRecorded)
{
    TraceId id = span::acquireId();
    span::open(id, "host", 0);
    span::open(id, "mbs", 10);
    span::open(id, "ddr", 20);
    span::close(id, "ddr", 30);
    span::close(id, "mbs", 40);
    span::close(id, "host", 50);
    auto spans = span::spansFor(id);
    ASSERT_EQ(spans.size(), 3u);
    // Retired deepest-first.
    EXPECT_STREQ(spans[0].stage, "ddr");
    EXPECT_EQ(spans[0].depth, 2u);
    EXPECT_STREQ(spans[1].stage, "mbs");
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_STREQ(spans[2].stage, "host");
    EXPECT_EQ(spans[2].depth, 0u);
}

TEST_F(SpanTest, OrphanCloseIsCountedNotRecorded)
{
    TraceId id = span::acquireId();
    EXPECT_EQ(span::orphanCloses(), 0u);
    span::close(id, "never-opened", 10);
    EXPECT_EQ(span::orphanCloses(), 1u);
    EXPECT_TRUE(span::spansFor(id).empty());
}

TEST_F(SpanTest, CloseIfOpenIsSilentWhenNotOpen)
{
    TraceId id = span::acquireId();
    span::closeIfOpen(id, "host.tagwait", 10);
    EXPECT_EQ(span::orphanCloses(), 0u);
    span::open(id, "host.tagwait", 20);
    span::closeIfOpen(id, "host.tagwait", 30);
    ASSERT_EQ(span::spansFor(id).size(), 1u);
}

TEST_F(SpanTest, EventRecordsInstantSpan)
{
    TraceId id = span::acquireId();
    span::event(id, "dmi.replay", 77);
    auto spans = span::spansFor(id);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].begin, spans[0].end);
    EXPECT_EQ(spans[0].begin, Tick(77));
}

TEST_F(SpanTest, CloseAllDrainsNestedOpens)
{
    TraceId id = span::acquireId();
    span::open(id, "host", 0);
    span::open(id, "mbs", 10);
    EXPECT_EQ(span::openSpans(), 2u);
    span::closeAll(id, 99);
    EXPECT_EQ(span::openSpans(), 0u);
    auto spans = span::spansFor(id);
    ASSERT_EQ(spans.size(), 2u);
    for (const auto &s : spans)
        EXPECT_EQ(s.end, Tick(99));
}

TEST_F(SpanTest, NoTraceIdIsANoOp)
{
    span::open(noTraceId, "host", 0);
    span::close(noTraceId, "host", 1);
    span::event(noTraceId, "x", 2);
    EXPECT_EQ(span::openSpans(), 0u);
    EXPECT_EQ(span::orphanCloses(), 0u);
    EXPECT_TRUE(span::snapshot().empty());
}

TEST_F(SpanTest, DisabledAcquireReturnsNoId)
{
    span::setEnabled(false);
    EXPECT_EQ(span::acquireId(), noTraceId);
}

TEST_F(SpanTest, SamplingHandsOutOneInN)
{
    span::setSampleInterval(3);
    unsigned real = 0;
    for (int i = 0; i < 9; ++i)
        if (span::acquireId() != noTraceId)
            ++real;
    EXPECT_EQ(real, 3u);
}

TEST_F(SpanTest, CapacityBoundsRetainedSpans)
{
    span::setCapacity(4);
    TraceId id = span::acquireId();
    for (Tick t = 0; t < 6; ++t) {
        span::open(id, "host", t * 10);
        span::close(id, "host", t * 10 + 5);
    }
    auto all = span::snapshot();
    EXPECT_EQ(all.size(), 4u);
    EXPECT_EQ(span::droppedSpans(), 2u);
    // Oldest dropped: the survivors start at t=20.
    EXPECT_EQ(all.front().begin, Tick(20));
}

TEST_F(SpanTest, BreakdownStagesSumExactlyToTotal)
{
    TraceId id = span::acquireId();
    span::open(id, "host", 0);
    span::open(id, "dmi.down", 10);
    span::close(id, "dmi.down", 30);
    span::open(id, "mbs", 30);
    span::open(id, "ddr", 40);
    span::close(id, "ddr", 80);
    span::close(id, "mbs", 90);
    span::open(id, "dmi.up", 90);
    span::close(id, "dmi.up", 120);
    span::close(id, "host", 150);

    auto b = span::breakdown(id);
    EXPECT_EQ(b.total, Tick(150));
    EXPECT_EQ(b.stageTime("dmi.down"), Tick(20));
    EXPECT_EQ(b.stageTime("mbs"), Tick(20)); // 60 wall minus ddr's 40
    EXPECT_EQ(b.stageTime("ddr"), Tick(40));
    EXPECT_EQ(b.stageTime("dmi.up"), Tick(30));
    EXPECT_EQ(b.stageTime("host"), Tick(40));
    Tick sum = 0;
    for (const auto &st : b.stages)
        sum += st.exclusive;
    EXPECT_EQ(sum, b.total);
}

TEST_F(SpanTest, BreakdownChargesGapsToUntracked)
{
    TraceId id = span::acquireId();
    span::open(id, "a", 0);
    span::close(id, "a", 10);
    span::open(id, "b", 20);
    span::close(id, "b", 30);
    auto b = span::breakdown(id);
    EXPECT_EQ(b.total, Tick(30));
    EXPECT_EQ(b.stageTime("a"), Tick(10));
    EXPECT_EQ(b.stageTime("b"), Tick(10));
    EXPECT_EQ(b.stageTime("(untracked)"), Tick(10));
}

TEST_F(SpanTest, BreakdownOfUnknownIdIsEmpty)
{
    auto b = span::breakdown(12345678);
    EXPECT_EQ(b.total, Tick(0));
    EXPECT_TRUE(b.stages.empty());
}

} // namespace
