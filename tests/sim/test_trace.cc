/** @file Trace facility tests. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "cpu/system.hh"
#include "sim/trace.hh"

using namespace contutto;

namespace
{

/** Per-test, per-process temp path: safe under `ctest -j`. */
std::string
uniqueTempPath(const char *ext)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = std::string(info->test_suite_name()) + "_"
        + info->name();
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return "/tmp/ct_" + name + "_" + std::to_string(getpid()) + ext;
}

class TraceTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        trace::disableAll();
        trace::setOutput(nullptr); // back to std::cerr
    }
};

TEST_F(TraceTest, FlagsGateOutput)
{
    std::ostringstream os;
    trace::setOutput(&os);
    auto before = trace::linesEmitted();

    trace::print(100, "obj", "not gated, always prints");
    EXPECT_EQ(trace::linesEmitted(), before + 1);

    EXPECT_FALSE(trace::anyEnabled());
    EXPECT_FALSE(trace::enabled("DMI"));
    trace::enable("DMI");
    EXPECT_TRUE(trace::anyEnabled());
    EXPECT_TRUE(trace::enabled("DMI"));
    EXPECT_FALSE(trace::enabled("MBS"));
    trace::enable("all");
    EXPECT_TRUE(trace::enabled("MBS"));
}

TEST_F(TraceTest, LineFormatCarriesTickAndName)
{
    std::ostringstream os;
    trace::setOutput(&os);
    trace::print(12345, "contutto.mbi", "replay from seq %u", 7u);
    EXPECT_EQ(os.str(), "12345: contutto.mbi: replay from seq 7\n");
}

TEST_F(TraceTest, InstrumentedComponentsEmitWhenEnabled)
{
    std::ostringstream os;
    trace::setOutput(&os);
    trace::enable("Training");
    trace::enable("MBS");

    cpu::Power8System::Params p;
    p.dimms = {cpu::DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}},
               cpu::DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}}};
    cpu::Power8System sys(p);
    ASSERT_TRUE(sys.train());
    sys.port().read(0x1000, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());

    std::string log = os.str();
    EXPECT_NE(log.find("trained"), std::string::npos);
    EXPECT_NE(log.find("dispatch tag"), std::string::npos);
    // DMI flag was not enabled: no replay/CRC lines.
    EXPECT_EQ(log.find("CRC drop"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentEmitAndReconfigure)
{
    // Ungated print() lines race against flag flips and output
    // swaps from this thread; the facility's lock must keep every
    // line intact and the emitted count exact.
    std::ostringstream a, b;
    trace::setOutput(&a);
    auto before = trace::linesEmitted();
    std::thread writer([] {
        for (int i = 0; i < 500; ++i)
            trace::print(Tick(i), "obj", "line %d", i);
    });
    for (int i = 0; i < 200; ++i) {
        trace::enable("DMI");
        trace::setOutput(i % 2 ? &a : &b);
        trace::disableAll();
    }
    writer.join();
    trace::setOutput(nullptr);
    EXPECT_EQ(trace::linesEmitted(), before + 500);
    // No torn lines: both sinks contain only whole "N: obj: ..."
    // records.
    for (const std::string &log : {a.str(), b.str()})
        for (std::size_t pos = 0; pos < log.size();) {
            std::size_t nl = log.find('\n', pos);
            ASSERT_NE(nl, std::string::npos);
            EXPECT_NE(log.find(": obj: line ", pos), std::string::npos);
            pos = nl + 1;
        }
}

TEST_F(TraceTest, FileSinkCapturesWholeLines)
{
    const std::string path = uniqueTempPath(".log");
    {
        std::ofstream out(path);
        ASSERT_TRUE(out.is_open()) << path;
        trace::setOutput(&out);
        trace::print(7, "obj", "first %d", 1);
        trace::print(8, "obj", "second %d", 2);
        trace::setOutput(nullptr);
    }
    std::ifstream in(path);
    std::string l1, l2;
    ASSERT_TRUE(std::getline(in, l1));
    ASSERT_TRUE(std::getline(in, l2));
    EXPECT_EQ(l1, "7: obj: first 1");
    EXPECT_EQ(l2, "8: obj: second 2");
    EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST_F(TraceTest, DisabledMeansSilent)
{
    std::ostringstream os;
    trace::setOutput(&os);
    // No flags enabled: an instrumented run emits nothing.
    cpu::Power8System::Params p;
    p.dimms = {cpu::DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}},
               cpu::DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}}};
    cpu::Power8System sys(p);
    ASSERT_TRUE(sys.train());
    EXPECT_TRUE(os.str().empty());
}

} // namespace
