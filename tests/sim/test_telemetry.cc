/** @file Tests for the machine-readable telemetry exporters. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/span.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"

using namespace contutto;

namespace
{

TEST(JsonLint, AcceptsValidValues)
{
    EXPECT_TRUE(telemetry::jsonLint("{}"));
    EXPECT_TRUE(telemetry::jsonLint("[]"));
    EXPECT_TRUE(telemetry::jsonLint("null"));
    EXPECT_TRUE(telemetry::jsonLint("-1.5e-3"));
    EXPECT_TRUE(telemetry::jsonLint("\"a \\\"quoted\\\" string\""));
    EXPECT_TRUE(telemetry::jsonLint(
        "{\"a\": [1, 2.5, true, false, null], \"b\": {\"c\": \"d\"}}"));
}

TEST(JsonLint, RejectsInvalidValues)
{
    EXPECT_FALSE(telemetry::jsonLint(""));
    EXPECT_FALSE(telemetry::jsonLint("{"));
    EXPECT_FALSE(telemetry::jsonLint("[1, 2,]"));
    EXPECT_FALSE(telemetry::jsonLint("{\"a\": }"));
    EXPECT_FALSE(telemetry::jsonLint("{'a': 1}"));
    EXPECT_FALSE(telemetry::jsonLint("{} trailing"));
    EXPECT_FALSE(telemetry::jsonLint("NaN"));
    EXPECT_FALSE(telemetry::jsonLint("01"));
}

TEST(PerfettoTrace, EmitsValidSortedJson)
{
    // Deliberately out of order: the exporter must sort by begin.
    std::vector<span::Span> spans;
    span::Span a;
    a.id = 1;
    a.stage = "ddr";
    a.begin = 3000000; // 3 us
    a.end = 5000000;
    a.seq = 2;
    span::Span b;
    b.id = 1;
    b.stage = "host";
    b.begin = 1000000; // 1 us
    b.end = 9000000;
    b.seq = 1;
    spans.push_back(a);
    spans.push_back(b);

    std::ostringstream os;
    telemetry::writePerfettoTrace(spans, os);
    std::string out = os.str();

    EXPECT_TRUE(telemetry::jsonLint(out));
    // "host" begins earlier, so it must be emitted first.
    EXPECT_LT(out.find("\"host\""), out.find("\"ddr\""));
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"traceId\":1"), std::string::npos);
}

TEST(PerfettoTrace, EmptyCaptureIsAnEmptyArray)
{
    std::ostringstream os;
    telemetry::writePerfettoTrace({}, os);
    EXPECT_TRUE(telemetry::jsonLint(os.str()));
    EXPECT_EQ(os.str().find('['), 0u);
}

TEST(StatsJson, SnapshotsTheWholeTree)
{
    stats::StatGroup root("system");
    stats::StatGroup child("dmi", &root);
    stats::Scalar frames(&child, "frames", "frames sent");
    frames += 3;
    stats::Distribution lat(&root, "lat", "latency");
    lat.sample(1.0);
    lat.sample(3.0);

    std::ostringstream os;
    stats::toJson(root, os);
    std::string out = os.str();

    EXPECT_TRUE(telemetry::jsonLint(out));
    EXPECT_NE(out.find("\"name\":\"system\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"dmi\""), std::string::npos);
    EXPECT_NE(out.find("\"frames\":{\"kind\":\"scalar\",\"value\":3}"),
              std::string::npos);
    // Distributions export their moments.
    EXPECT_NE(out.find("\"mean\":2"), std::string::npos);
}

TEST(StatsJson, NonFiniteValuesBecomeNull)
{
    stats::StatGroup g("g");
    stats::Histogram h(&g, "h", "empty histogram", 10.0, 4);
    std::ostringstream os;
    stats::toJson(g, os);
    // The empty histogram's quantiles are NaN -> null in JSON.
    EXPECT_TRUE(telemetry::jsonLint(os.str()));
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
}

TEST(IntervalDumper, CollectsPeriodicSnapshots)
{
    EventQueue eq;
    stats::StatGroup root("system");
    stats::Scalar ops(&root, "ops", "operations");

    telemetry::IntervalDumper dumper(eq, root, 100);
    dumper.start();
    OneShotEvent::schedule(eq, 250, [&] { ops += 7; });
    // The dumper reschedules itself forever; run with a limit.
    eq.run(550);

    EXPECT_GE(dumper.snapshots(), 2u);
    std::ostringstream os;
    dumper.write(os);
    std::string out = os.str();
    EXPECT_TRUE(telemetry::jsonLint(out));
    EXPECT_NE(out.find("\"period\":100"), std::string::npos);
    EXPECT_NE(out.find("\"tick\":100"), std::string::npos);
}

TEST(IntervalDumper, StopHaltsSampling)
{
    EventQueue eq;
    stats::StatGroup root("system");
    telemetry::IntervalDumper dumper(eq, root, 100);
    dumper.start();
    dumper.stop();
    OneShotEvent::schedule(eq, 500, [] {});
    eq.run();
    EXPECT_EQ(dumper.snapshots(), 0u);
}

} // namespace
