/** @file Tests for the machine-readable telemetry exporters. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/span.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"

using namespace contutto;

namespace
{

/**
 * A temp path unique per test *and* per process: ctest runs suites
 * with -j, so a fixed name would intermittently collide with a
 * parallel invocation of the same binary.
 */
std::string
uniqueTempPath(const char *ext)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = std::string(info->test_suite_name()) + "_"
        + info->name();
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return "/tmp/ct_" + name + "_" + std::to_string(getpid()) + ext;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(JsonLint, AcceptsValidValues)
{
    EXPECT_TRUE(telemetry::jsonLint("{}"));
    EXPECT_TRUE(telemetry::jsonLint("[]"));
    EXPECT_TRUE(telemetry::jsonLint("null"));
    EXPECT_TRUE(telemetry::jsonLint("-1.5e-3"));
    EXPECT_TRUE(telemetry::jsonLint("\"a \\\"quoted\\\" string\""));
    EXPECT_TRUE(telemetry::jsonLint(
        "{\"a\": [1, 2.5, true, false, null], \"b\": {\"c\": \"d\"}}"));
}

TEST(JsonLint, RejectsInvalidValues)
{
    EXPECT_FALSE(telemetry::jsonLint(""));
    EXPECT_FALSE(telemetry::jsonLint("{"));
    EXPECT_FALSE(telemetry::jsonLint("[1, 2,]"));
    EXPECT_FALSE(telemetry::jsonLint("{\"a\": }"));
    EXPECT_FALSE(telemetry::jsonLint("{'a': 1}"));
    EXPECT_FALSE(telemetry::jsonLint("{} trailing"));
    EXPECT_FALSE(telemetry::jsonLint("NaN"));
    EXPECT_FALSE(telemetry::jsonLint("01"));
}

TEST(PerfettoTrace, EmitsValidSortedJson)
{
    // Deliberately out of order: the exporter must sort by begin.
    std::vector<span::Span> spans;
    span::Span a;
    a.id = 1;
    a.stage = "ddr";
    a.begin = 3000000; // 3 us
    a.end = 5000000;
    a.seq = 2;
    span::Span b;
    b.id = 1;
    b.stage = "host";
    b.begin = 1000000; // 1 us
    b.end = 9000000;
    b.seq = 1;
    spans.push_back(a);
    spans.push_back(b);

    std::ostringstream os;
    telemetry::writePerfettoTrace(spans, os);
    std::string out = os.str();

    EXPECT_TRUE(telemetry::jsonLint(out));
    // "host" begins earlier, so it must be emitted first.
    EXPECT_LT(out.find("\"host\""), out.find("\"ddr\""));
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"traceId\":1"), std::string::npos);
}

TEST(PerfettoTrace, EmptyCaptureIsAnEmptyArray)
{
    std::ostringstream os;
    telemetry::writePerfettoTrace({}, os);
    EXPECT_TRUE(telemetry::jsonLint(os.str()));
    EXPECT_EQ(os.str().find('['), 0u);
}

TEST(StatsJson, SnapshotsTheWholeTree)
{
    stats::StatGroup root("system");
    stats::StatGroup child("dmi", &root);
    stats::Scalar frames(&child, "frames", "frames sent");
    frames += 3;
    stats::Distribution lat(&root, "lat", "latency");
    lat.sample(1.0);
    lat.sample(3.0);

    std::ostringstream os;
    stats::toJson(root, os);
    std::string out = os.str();

    EXPECT_TRUE(telemetry::jsonLint(out));
    EXPECT_NE(out.find("\"name\":\"system\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"dmi\""), std::string::npos);
    EXPECT_NE(out.find("\"frames\":{\"kind\":\"scalar\",\"value\":3}"),
              std::string::npos);
    // Distributions export their moments.
    EXPECT_NE(out.find("\"mean\":2"), std::string::npos);
}

TEST(StatsJson, HistogramCarriesExplicitLeEdges)
{
    stats::StatGroup g("g");
    stats::Histogram h(&g, "h", "latency", 10.0, 4);
    h.sample(5);
    h.sample(15);
    h.sample(1000); // overflow

    std::ostringstream os;
    stats::toJson(g, os);
    std::string out = os.str();

    EXPECT_TRUE(telemetry::jsonLint(out));
    // One explicit edge per bucket — no consumer should have to
    // re-derive boundaries from bucketWidth — and the overflow
    // bucket's edge is null, the +Inf marker.
    EXPECT_NE(out.find("\"le\":[10,20,30,40,null]"),
              std::string::npos);
    EXPECT_NE(out.find("\"buckets\":[1,1,0,0,1]"),
              std::string::npos);
}

TEST(StatsJson, NonFiniteValuesBecomeNull)
{
    stats::StatGroup g("g");
    stats::Histogram h(&g, "h", "empty histogram", 10.0, 4);
    std::ostringstream os;
    stats::toJson(g, os);
    // The empty histogram's quantiles are NaN -> null in JSON.
    EXPECT_TRUE(telemetry::jsonLint(os.str()));
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
}

TEST(IntervalDumper, CollectsPeriodicSnapshots)
{
    EventQueue eq;
    stats::StatGroup root("system");
    stats::Scalar ops(&root, "ops", "operations");

    telemetry::IntervalDumper dumper(eq, root, 100);
    dumper.start();
    OneShotEvent::schedule(eq, 250, [&] { ops += 7; });
    // The dumper reschedules itself forever; run with a limit.
    eq.run(550);

    EXPECT_GE(dumper.snapshots(), 2u);
    std::ostringstream os;
    dumper.write(os);
    std::string out = os.str();
    EXPECT_TRUE(telemetry::jsonLint(out));
    EXPECT_NE(out.find("\"period\":100"), std::string::npos);
    EXPECT_NE(out.find("\"tick\":100"), std::string::npos);
}

TEST(TelemetryFiles, PerfettoTraceRoundTripsThroughAFile)
{
    span::Span s;
    s.id = 9;
    s.stage = "mbs";
    s.begin = 2000;
    s.end = 4000;
    s.seq = 1;

    const std::string path = uniqueTempPath(".json");
    {
        std::ofstream out(path);
        ASSERT_TRUE(out.is_open()) << path;
        telemetry::writePerfettoTrace({s}, out);
    }
    const std::string back = slurp(path);
    EXPECT_TRUE(telemetry::jsonLint(back)) << back;
    EXPECT_NE(back.find("\"mbs\""), std::string::npos);
    EXPECT_NE(back.find("\"traceId\":9"), std::string::npos);
    EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(TelemetryFiles, StatsJsonRoundTripsThroughAFile)
{
    stats::StatGroup root("system");
    stats::Scalar ops(&root, "ops", "operations");
    ops += 11;

    const std::string path = uniqueTempPath(".json");
    {
        std::ofstream out(path);
        ASSERT_TRUE(out.is_open()) << path;
        stats::toJson(root, out);
    }
    const std::string back = slurp(path);
    EXPECT_TRUE(telemetry::jsonLint(back)) << back;
    EXPECT_NE(back.find("\"ops\":{\"kind\":\"scalar\",\"value\":11}"),
              std::string::npos);
    EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(TelemetryFiles, TempPathsEmbedTestNameAndPid)
{
    const std::string path = uniqueTempPath(".json");
    EXPECT_NE(path.find("TelemetryFiles"), std::string::npos);
    EXPECT_NE(path.find("TempPathsEmbedTestNameAndPid"),
              std::string::npos);
    EXPECT_NE(path.find(std::to_string(getpid())), std::string::npos);
}

TEST(IntervalDumper, StopHaltsSampling)
{
    EventQueue eq;
    stats::StatGroup root("system");
    telemetry::IntervalDumper dumper(eq, root, 100);
    dumper.start();
    dumper.stop();
    OneShotEvent::schedule(eq, 500, [] {});
    eq.run();
    EXPECT_EQ(dumper.snapshots(), 0u);
}

} // namespace
