/** @file Firmware layer tests: registers, FSI, power, memory map. */

#include <gtest/gtest.h>

#include "firmware/card_control.hh"
#include "firmware/error_log.hh"

using namespace contutto;
using namespace contutto::firmware;
using namespace contutto::mem;

namespace
{

TEST(RegisterFile, PlainAndHookedRegisters)
{
    RegisterFile rf;
    rf.define(regScratch, 0xAB);
    EXPECT_EQ(rf.read(regScratch), 0xABu);
    rf.write(regScratch, 7);
    EXPECT_EQ(rf.read(regScratch), 7u);

    std::uint32_t captured = 0;
    rf.defineHooked(regKnob, [] { return 3u; },
                    [&](std::uint32_t v) { captured = v; });
    EXPECT_EQ(rf.read(regKnob), 3u);
    rf.write(regKnob, 5);
    EXPECT_EQ(captured, 5u);

    // Holes read all-ones, writes dropped.
    EXPECT_EQ(rf.read(0xDEAD), 0xFFFFFFFFu);
    rf.write(0xDEAD, 1);
}

TEST(Fsi, IndirectPathIsSlowerThanDirect)
{
    EventQueue eq;
    ClockDomain d("d", 500);
    stats::StatGroup root("root");
    RegisterFile regs;
    regs.define(regScratch, 0x99);

    FsiSlave::Params direct;
    direct.i2cLatency = 0; // Centaur-style direct FSI
    FsiSlave fsiDirect("fsiDirect", eq, d, &root, direct, regs);

    FsiSlave::Params indirect; // ConTutto default: via I2C
    FsiSlave fsiIndirect("fsiIndirect", eq, d, &root, indirect, regs);

    Tick t_direct = 0, t_indirect = 0;
    Tick t0 = eq.curTick();
    fsiDirect.readReg(regScratch, [&](std::uint32_t v) {
        EXPECT_EQ(v, 0x99u);
        t_direct = eq.curTick() - t0;
    });
    eq.run();
    t0 = eq.curTick();
    fsiIndirect.readReg(regScratch, [&](std::uint32_t v) {
        EXPECT_EQ(v, 0x99u);
        t_indirect = eq.curTick() - t0;
    });
    eq.run();

    EXPECT_GT(t_indirect, t_direct * 10);
    EXPECT_GE(t_indirect, microseconds(100));
}

TEST(Power, SequencesRailsInOrder)
{
    EventQueue eq;
    ClockDomain d("d", 500);
    stats::StatGroup root("root");
    PowerSequencer seq("pwr", eq, d, &root, contuttoRails());

    bool ok = false;
    Tick t0 = eq.curTick();
    seq.powerUp([&](bool success) { ok = success; });
    eq.run();
    EXPECT_TRUE(ok);
    EXPECT_TRUE(seq.isOn());
    EXPECT_GE(eq.curTick() - t0, seq.powerUpTime());
}

TEST(Power, FaultedRailStopsSequence)
{
    EventQueue eq;
    ClockDomain d("d", 500);
    stats::StatGroup root("root");
    PowerSequencer seq("pwr", eq, d, &root, contuttoRails());
    seq.injectFault("VCCIO_1V5", true);

    bool result = true;
    seq.powerUp([&](bool success) { result = success; });
    eq.run();
    EXPECT_FALSE(result);
    EXPECT_EQ(seq.state(), PowerSequencer::State::fault);
    EXPECT_EQ(seq.faultedRail(), "VCCIO_1V5");

    // Clear the fault and recover.
    seq.injectFault("VCCIO_1V5", false);
    bool ok = false;
    seq.powerUp([&](bool success) { ok = success; });
    eq.run();
    EXPECT_TRUE(ok);
}

TEST(MemoryMap, DramContiguousFromZero)
{
    std::vector<ModuleInfo> mods = {
        {.tech = MemTech::dram, .actualSize = 4 * GiB,
         .contentPreserved = false, .moduleIndex = 0},
        {.tech = MemTech::dram, .actualSize = 8 * GiB,
         .contentPreserved = false, .moduleIndex = 1},
    };
    auto map = buildMemoryMap(mods);
    ASSERT_TRUE(map.valid);
    ASSERT_EQ(map.entries.size(), 2u);
    // Largest first, starting at zero, contiguous.
    EXPECT_EQ(map.entries[0].base, 0u);
    EXPECT_EQ(map.entries[0].osVisibleSize, 8 * GiB);
    EXPECT_EQ(map.entries[1].base, 8 * GiB);
    EXPECT_EQ(map.dramBytes(), 12 * GiB);
}

TEST(MemoryMap, NonVolatileAtTopWithFlags)
{
    std::vector<ModuleInfo> mods = {
        {.tech = MemTech::dram, .actualSize = 4 * GiB,
         .contentPreserved = false, .moduleIndex = 0},
        {.tech = MemTech::sttMram, .actualSize = 256 * MiB,
         .contentPreserved = true, .moduleIndex = 1},
        {.tech = MemTech::nvdimmN, .actualSize = 8 * GiB,
         .contentPreserved = true, .moduleIndex = 2},
    };
    auto map = buildMemoryMap(mods);
    ASSERT_TRUE(map.valid);

    const MemoryMapEntry *mram = nullptr;
    const MemoryMapEntry *nvdimm = nullptr;
    for (const auto &e : map.entries) {
        if (e.tech == MemTech::sttMram)
            mram = &e;
        if (e.tech == MemTech::nvdimmN)
            nvdimm = &e;
    }
    ASSERT_NE(mram, nullptr);
    ASSERT_NE(nvdimm, nullptr);
    // Non-volatile regions sit above all DRAM.
    EXPECT_GT(mram->base, map.dramBytes());
    EXPECT_GT(nvdimm->base, map.dramBytes());
    EXPECT_TRUE(mram->contentPreserved);
    EXPECT_TRUE(nvdimm->contentPreserved);
}

TEST(MemoryMap, MramSizeLie)
{
    std::vector<ModuleInfo> mods = {
        {.tech = MemTech::dram, .actualSize = 4 * GiB,
         .contentPreserved = false, .moduleIndex = 0},
        {.tech = MemTech::sttMram, .actualSize = 256 * MiB,
         .contentPreserved = true, .moduleIndex = 1},
    };
    auto map = buildMemoryMap(mods);
    ASSERT_TRUE(map.valid);
    const auto *mram = &map.entries.back();
    // Hardware sees the 4 GiB minimum window; the OS only the true
    // 256 MiB.
    EXPECT_EQ(mram->hwWindowSize, 4 * GiB);
    EXPECT_EQ(mram->osVisibleSize, 256 * MiB);
}

TEST(MemoryMap, RequiresDramAtZero)
{
    std::vector<ModuleInfo> mods = {
        {.tech = MemTech::sttMram, .actualSize = 256 * MiB,
         .contentPreserved = true, .moduleIndex = 0},
    };
    auto map = buildMemoryMap(mods);
    EXPECT_FALSE(map.valid);
    EXPECT_NE(map.error.find("DRAM"), std::string::npos);
}

TEST(MemoryMap, EntryLookup)
{
    std::vector<ModuleInfo> mods = {
        {.tech = MemTech::dram, .actualSize = 4 * GiB,
         .contentPreserved = false, .moduleIndex = 0},
        {.tech = MemTech::sttMram, .actualSize = 256 * MiB,
         .contentPreserved = true, .moduleIndex = 1},
    };
    auto map = buildMemoryMap(mods);
    ASSERT_TRUE(map.valid);
    EXPECT_EQ(map.entryFor(0)->tech, MemTech::dram);
    EXPECT_EQ(map.entryFor(4 * GiB), nullptr); // hole above DRAM
    const auto *mram = &map.entries.back();
    EXPECT_EQ(map.entryFor(mram->base)->tech, MemTech::sttMram);
}

TEST(ErrorLog, DeconfiguresAfterThreshold)
{
    ErrorLog log(3);
    log.record(0, "contutto.link", Severity::recoverable, "x");
    log.record(1, "contutto.link", Severity::recoverable, "x");
    EXPECT_FALSE(log.isDeconfigured("contutto.link"));
    log.record(2, "contutto.link", Severity::recoverable, "x");
    EXPECT_TRUE(log.isDeconfigured("contutto.link"));
    EXPECT_EQ(log.size(), 3u);
}

TEST(ErrorLog, UnrecoverableDeconfiguresImmediately)
{
    ErrorLog log;
    log.record(0, "contutto.power", Severity::unrecoverable, "rail");
    EXPECT_TRUE(log.isDeconfigured("contutto.power"));
    EXPECT_FALSE(log.isDeconfigured("contutto.link"));
}

TEST(ErrorLog, QueryFiltersBySeverity)
{
    ErrorLog log;
    log.record(10, "a", Severity::info, "i1");
    log.record(20, "b", Severity::recoverable, "r1");
    log.record(30, "c", Severity::info, "i2");
    log.record(40, "d", Severity::unrecoverable, "u1");

    EXPECT_EQ(log.query(Severity::info).size(), 4u);
    auto recov = log.query(Severity::recoverable);
    ASSERT_EQ(recov.size(), 2u);
    // Oldest first.
    EXPECT_EQ(recov[0].component, "b");
    EXPECT_EQ(recov[1].component, "d");
    auto unrec = log.query(Severity::unrecoverable);
    ASSERT_EQ(unrec.size(), 1u);
    EXPECT_EQ(unrec[0].message, "u1");
    EXPECT_EQ(log.countAtLeast(Severity::recoverable), 2u);
    EXPECT_EQ(log.countAtLeast(Severity::unrecoverable), 1u);
}

TEST(ErrorLog, BoundedCapacityEvictsOldestAndCounts)
{
    ErrorLog log(/*deconfig_threshold=*/100, /*capacity=*/4);
    EXPECT_EQ(log.capacity(), 4u);
    for (int i = 0; i < 10; ++i)
        log.record(Tick(i), "comp" + std::to_string(i),
                   Severity::info, "m");

    EXPECT_EQ(log.size(), 4u) << "log must stay at capacity";
    EXPECT_EQ(log.overflowCount(), 6u);
    // The survivors are the newest four, oldest first.
    ASSERT_EQ(log.entries().size(), 4u);
    EXPECT_EQ(log.entries().front().component, "comp6");
    EXPECT_EQ(log.entries().back().component, "comp9");
}

TEST(ErrorLog, DeconfigurationSurvivesEviction)
{
    // Two recoverable errors deconfigure; capacity one means the
    // first entry is long evicted when the second arrives — the
    // per-component count must not be forgotten with it.
    ErrorLog log(/*deconfig_threshold=*/2, /*capacity=*/1);
    log.record(0, "contutto.link", Severity::recoverable, "x");
    log.record(1, "other", Severity::info, "y"); // evicts the first
    EXPECT_EQ(log.overflowCount(), 1u);
    EXPECT_FALSE(log.isDeconfigured("contutto.link"));
    log.record(2, "contutto.link", Severity::recoverable, "x");
    EXPECT_TRUE(log.isDeconfigured("contutto.link"));
    EXPECT_EQ(log.recoverableCount("contutto.link"), 2u);
}

} // namespace
