/** @file Boot sequencer tests over a live simulated system. */

#include <gtest/gtest.h>

#include "firmware/card_control.hh"

using namespace contutto;
using namespace contutto::cpu;
using namespace contutto::firmware;

namespace
{

Power8System::Params
mixedSystem(double lock_probability = 1.0)
{
    Power8System::Params p;
    p.buffer = BufferKind::contutto;
    p.dimms = {
        DimmSpec{mem::MemTech::dram, 4 * GiB, {}, {}},
        DimmSpec{mem::MemTech::sttMram, 256 * MiB,
                 mem::MramDevice::Junction::pMTJ, {}},
    };
    p.training.lockProbability = lock_probability;
    return p;
}

struct BootRig
{
    Power8System sys;
    SystemCardControl control;
    ErrorLog log;
    BootSequencer boot;

    explicit BootRig(Power8System::Params p,
                     BootSequencer::Params bp = {})
        : sys(p), control(sys), log(),
          boot("boot", sys.eventq(), sys.nestDomain(), &sys, bp,
               control, log)
    {}

    BootReport
    run()
    {
        BootReport report;
        bool finished = false;
        boot.start([&](const BootReport &r) {
            report = r;
            finished = true;
        });
        while (!finished && sys.eventq().step()) {
        }
        EXPECT_TRUE(finished);
        return report;
    }
};

TEST(Boot, FullSequenceSucceeds)
{
    BootRig rig(mixedSystem());
    auto report = rig.run();
    ASSERT_TRUE(report.success) << report.failReason;
    EXPECT_EQ(report.trainingAttempts, 1u);
    EXPECT_EQ(report.cardId, contuttoIdMagic);
    EXPECT_TRUE(report.training.success);
    ASSERT_TRUE(report.map.valid);
    EXPECT_EQ(report.map.dramBytes(), 4 * GiB);
    EXPECT_EQ(report.map.nonVolatileBytes(), 256 * MiB);
    // Boot time dominated by FPGA configuration + power sequencing.
    EXPECT_GT(report.bootTime, milliseconds(40));
}

TEST(Boot, FlakyLinkRetriesWithFpgaReset)
{
    // 45% per-phase lock chance: expect a few whole-training retries
    // before everything aligns.
    auto p = mixedSystem(0.45);
    p.training.maxAttemptsPerPhase = 1; // fail fast per attempt
    p.training.responseTimeout = microseconds(2);
    BootRig rig(p);
    auto report = rig.run();
    ASSERT_TRUE(report.success) << report.failReason;
    EXPECT_GT(report.trainingAttempts, 1u);
    EXPECT_GE(rig.log.recoverableCount("contutto.link"), 1u);
}

TEST(Boot, DeadLinkEventuallyGivesUp)
{
    auto p = mixedSystem(0.0);
    p.training.maxAttemptsPerPhase = 2;
    p.training.responseTimeout = microseconds(2);
    BootSequencer::Params bp;
    bp.maxTrainingAttempts = 3;
    BootRig rig(p, bp);
    auto report = rig.run();
    EXPECT_FALSE(report.success);
    EXPECT_EQ(report.trainingAttempts, 3u);
    EXPECT_GE(rig.log.recoverableCount("contutto.link"), 3u);
}

TEST(Boot, PowerFaultAbortsBoot)
{
    BootRig rig(mixedSystem());
    rig.control.power().injectFault("VCCAUX_2V5", true);
    auto report = rig.run();
    EXPECT_FALSE(report.success);
    EXPECT_NE(report.failReason.find("power"), std::string::npos);
    EXPECT_TRUE(rig.log.isDeconfigured("contutto.power"));
}

TEST(Boot, KnobControllableThroughRegisterPath)
{
    BootRig rig(mixedSystem());
    auto report = rig.run();
    ASSERT_TRUE(report.success);

    // Software moves the latency knob via FSI -> I2C -> CSR.
    bool wrote = false;
    rig.control.fsi().writeReg(regKnob, 6, [&] { wrote = true; });
    while (!wrote && rig.sys.eventq().step()) {
    }
    EXPECT_TRUE(wrote);
    EXPECT_EQ(rig.sys.card()->mbs().knobPosition(), 6u);

    std::uint32_t readback = 0;
    bool read_done = false;
    rig.control.fsi().readReg(regKnob, [&](std::uint32_t v) {
        readback = v;
        read_done = true;
    });
    while (!read_done && rig.sys.eventq().step()) {
    }
    EXPECT_EQ(readback, 6u);
}

// ---- Warm reboot across a power fault ------------------------------

Power8System::Params
nvdimmSystem(mem::NvdimmDevice::Params nv = {})
{
    Power8System::Params p;
    p.buffer = BufferKind::contutto;
    p.dimms = {
        DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}},
        DimmSpec{.tech = mem::MemTech::nvdimmN,
                 .capacity = 64 * MiB,
                 .nvdimm = nv},
    };
    return p;
}

struct WarmRig : BootRig
{
    PowerDomain domain;

    explicit WarmRig(Power8System::Params p)
        : BootRig(p),
          domain("domain", sys.eventq(), sys.nestDomain(), &sys,
                 control.power(), PowerDomain::Params{})
    {
        domain.attachDevice(&sys.dimm(0));
        domain.attachDevice(&sys.dimm(1));
        domain.addCutHook([this] { sys.port().abortInFlight(); });
        domain.addCutHook([this] { sys.hostLink().resetLink(); });
        domain.addCutHook([this] { sys.card()->powerReset(); });
    }

    mem::NvdimmDevice &
    nv()
    {
        auto *d = dynamic_cast<mem::NvdimmDevice *>(&sys.dimm(1));
        EXPECT_NE(d, nullptr);
        return *d;
    }

    /** Cut power and let the module's save (or loss) play out. */
    void
    cutAndSettle()
    {
        domain.powerCut();
        sys.eventq().run(sys.eventq().curTick() + nv().saveDuration()
                         + control.power().powerDownTime()
                         + milliseconds(10));
    }

    BootReport
    warmRun()
    {
        BootReport report;
        bool finished = false;
        boot.warmReboot(domain, [&](const BootReport &r) {
            report = r;
            finished = true;
        });
        while (!finished && sys.eventq().step()) {
        }
        EXPECT_TRUE(finished);
        return report;
    }
};

TEST(Boot, WarmRebootRestoresCleanNvdimm)
{
    WarmRig rig(nvdimmSystem());
    auto cold = rig.run();
    ASSERT_TRUE(cold.success) << cold.failReason;
    EXPECT_FALSE(cold.warm);
    rig.nv().image().write64(0x4000, 0xC0FFEEu);

    rig.cutAndSettle();
    EXPECT_EQ(rig.nv().state(), mem::NvdimmDevice::State::saved);

    auto report = rig.warmRun();
    ASSERT_TRUE(report.success) << report.failReason;
    EXPECT_TRUE(report.warm);
    ASSERT_EQ(report.slotOutcomes.size(), 2u);
    EXPECT_EQ(report.slotOutcomes[0], mem::RestoreOutcome::none);
    EXPECT_EQ(report.slotOutcomes[1], mem::RestoreOutcome::clean);
    EXPECT_EQ(report.modulesLost, 0u);
    EXPECT_EQ(rig.nv().image().read64(0x4000), 0xC0FFEEu);
    EXPECT_EQ(rig.log.recoverableCount("dimm1"), 0u);

    // The rebuilt map still advertises the NVDIMM's contents.
    const MemoryMapEntry *nv_entry = nullptr;
    for (const auto &e : report.map.entries)
        if (e.tech == mem::MemTech::nvdimmN)
            nv_entry = &e;
    ASSERT_NE(nv_entry, nullptr);
    EXPECT_TRUE(nv_entry->contentPreserved);
    EXPECT_EQ(nv_entry->outcome, mem::RestoreOutcome::clean);
}

TEST(Boot, WarmRebootReportsTornSave)
{
    // One segment of supercap charge: the save tears mid-stream.
    mem::NvdimmDevice::Params nv;
    nv.supercapJoules = 0.01;
    WarmRig rig(nvdimmSystem(nv));
    ASSERT_TRUE(rig.run().success);

    rig.cutAndSettle();
    EXPECT_EQ(rig.nv().state(), mem::NvdimmDevice::State::partial);

    auto report = rig.warmRun();
    // The machine boots — with the loss on the record, not papered
    // over as preserved content.
    ASSERT_TRUE(report.success) << report.failReason;
    EXPECT_EQ(report.slotOutcomes[1], mem::RestoreOutcome::torn);
    EXPECT_EQ(report.modulesLost, 1u);
    EXPECT_GE(rig.log.recoverableCount("dimm1"), 1u);

    const MemoryMapEntry *nv_entry = nullptr;
    for (const auto &e : report.map.entries)
        if (e.tech == mem::MemTech::nvdimmN)
            nv_entry = &e;
    ASSERT_NE(nv_entry, nullptr);
    EXPECT_FALSE(nv_entry->contentPreserved);
    EXPECT_EQ(nv_entry->outcome, mem::RestoreOutcome::torn);
}

TEST(Boot, WarmRebootReportsSupercapLoss)
{
    mem::NvdimmDevice::Params nv;
    nv.charged = false;
    WarmRig rig(nvdimmSystem(nv));
    ASSERT_TRUE(rig.run().success);

    rig.cutAndSettle();
    EXPECT_EQ(rig.nv().state(), mem::NvdimmDevice::State::lost);

    auto report = rig.warmRun();
    ASSERT_TRUE(report.success) << report.failReason;
    EXPECT_EQ(report.slotOutcomes[1], mem::RestoreOutcome::lost);
    EXPECT_EQ(report.modulesLost, 1u);
    EXPECT_GE(rig.log.recoverableCount("dimm1"), 1u);
    EXPECT_FALSE(rig.nv().contentIntact());
}

TEST(Boot, SpdsIdentifyMixedModules)
{
    BootRig rig(mixedSystem());
    auto report = rig.run();
    ASSERT_TRUE(report.success);
    // The MRAM region carries the right flags for the pmem driver.
    const MemoryMapEntry *mram = nullptr;
    for (const auto &e : report.map.entries)
        if (e.tech == mem::MemTech::sttMram)
            mram = &e;
    ASSERT_NE(mram, nullptr);
    EXPECT_TRUE(mram->contentPreserved);
    EXPECT_EQ(mram->hwWindowSize, 4 * GiB);
}

} // namespace
