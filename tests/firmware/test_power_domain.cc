/**
 * @file
 * PowerSequencer re-entrancy and PowerDomain fan-out tests: cut
 * ordering, brownout ride-through/outage, and restore sequencing.
 */

#include <gtest/gtest.h>

#include "firmware/power_domain.hh"

using namespace contutto;
using namespace contutto::firmware;

namespace
{

struct SeqRig
{
    EventQueue eq;
    ClockDomain nest{"nest", 500};
    stats::StatGroup root{"root"};
    PowerSequencer seq;

    SeqRig() : seq("seq", eq, nest, &root, contuttoRails()) {}
};

TEST(PowerSequencer, PowerDownDuringPowerUpAbortsTheUp)
{
    SeqRig rig;
    bool up_done = false, up_ok = true;
    rig.seq.powerUp([&](bool ok) {
        up_done = true;
        up_ok = ok;
    });
    rig.eq.run(rig.eq.curTick() + rig.seq.powerUpTime() / 2);
    ASSERT_EQ(rig.seq.state(), PowerSequencer::State::rampingUp);

    bool down_done = false;
    rig.seq.powerDown([&] { down_done = true; });
    // The interrupted up request fails synchronously — aborted, not
    // faulted — before the discharge begins.
    EXPECT_TRUE(up_done);
    EXPECT_FALSE(up_ok);
    EXPECT_TRUE(rig.seq.faultedRail().empty());
    EXPECT_EQ(rig.seq.abortedRamps(), 1u);

    rig.eq.run(rig.eq.curTick() + rig.seq.powerDownTime() + 1000);
    EXPECT_TRUE(down_done);
    EXPECT_EQ(rig.seq.state(), PowerSequencer::State::off);
}

TEST(PowerSequencer, PowerUpDuringPowerDownRestartsBringUp)
{
    SeqRig rig;
    rig.seq.powerUp(nullptr);
    rig.eq.run(rig.eq.curTick() + rig.seq.powerUpTime() + 1000);
    ASSERT_TRUE(rig.seq.isOn());

    bool down_done = false;
    rig.seq.powerDown([&] { down_done = true; });
    rig.eq.run(rig.eq.curTick() + rig.seq.powerDownTime() / 2);
    ASSERT_EQ(rig.seq.state(), PowerSequencer::State::rampingDown);

    bool up_done = false, up_ok = false;
    rig.seq.powerUp([&](bool ok) {
        up_done = true;
        up_ok = ok;
    });
    // The discharge completes logically before the restart.
    EXPECT_TRUE(down_done);
    EXPECT_EQ(rig.seq.state(), PowerSequencer::State::rampingUp);

    rig.eq.run(rig.eq.curTick() + rig.seq.powerUpTime() + 1000);
    EXPECT_TRUE(up_done);
    EXPECT_TRUE(up_ok);
    EXPECT_TRUE(rig.seq.isOn());
}

struct DomainRig
{
    EventQueue eq;
    ClockDomain nest{"nest", 500};
    ClockDomain ddr{"ddr", 1500};
    stats::StatGroup root{"root"};
    PowerSequencer seq;
    PowerDomain domain;
    mem::NvdimmDevice nv; // 1 MiB: saves in ~5 ms.

    DomainRig()
        : seq("seq", eq, nest, &root, contuttoRails()),
          domain("domain", eq, nest, &root, seq,
                 PowerDomain::Params{}),
          nv("nv", eq, ddr, &root, 1 * MiB, {})
    {
        domain.attachDevice(&nv);
    }

    void
    settle(Tick extra = 0)
    {
        eq.run(eq.curTick() + seq.powerUpTime()
               + seq.powerDownTime() + 2 * nv.saveDuration()
               + milliseconds(10) + extra);
    }
};

TEST(PowerDomain, CutRunsHooksThenDevicesThenRails)
{
    DomainRig rig;
    bool hook_ran = false;
    rig.domain.addCutHook([&] {
        hook_ran = true;
        // At hook time nothing downstream has been told yet: the
        // module is still serving and the rails still hold.
        EXPECT_EQ(rig.nv.state(), mem::NvdimmDevice::State::normal);
        EXPECT_NE(rig.seq.state(),
                  PowerSequencer::State::rampingDown);
    });
    rig.domain.powerCut();
    EXPECT_TRUE(hook_ran);
    EXPECT_FALSE(rig.domain.powered());
    // The module got its early-warning and is streaming to flash
    // while the rails discharge.
    EXPECT_EQ(rig.nv.state(), mem::NvdimmDevice::State::saving);
    EXPECT_EQ(rig.seq.state(), PowerSequencer::State::rampingDown);

    // A second cut while dark is a no-op.
    rig.domain.powerCut();
    EXPECT_EQ(rig.domain.domainStats().cuts.value(), 1.0);
}

TEST(PowerDomain, RestoreRampsRailsThenDevicesThenReady)
{
    DomainRig rig;
    rig.nv.image().write64(0x80, 0xABCDu);
    rig.domain.powerCut();
    rig.settle(); // save completes, rails down

    bool done = false, ok = false;
    rig.domain.powerRestore([&](bool k) {
        done = true;
        ok = k;
    });
    EXPECT_TRUE(rig.domain.restoring());
    rig.settle();
    EXPECT_TRUE(done);
    EXPECT_TRUE(ok);
    EXPECT_TRUE(rig.domain.powered());
    EXPECT_TRUE(rig.seq.isOn());
    // The module finished its restore before the domain reported
    // ready, and the contents came back.
    EXPECT_EQ(rig.nv.state(), mem::NvdimmDevice::State::normal);
    EXPECT_EQ(rig.nv.restoreOutcome(), mem::RestoreOutcome::clean);
    EXPECT_EQ(rig.nv.image().read64(0x80), 0xABCDu);
    EXPECT_EQ(rig.domain.domainStats().restores.value(), 1.0);
}

TEST(PowerDomain, ShortBrownoutRidesThroughOnHoldup)
{
    DomainRig rig;
    ASSERT_TRUE(rig.seq.ridesThrough(rig.seq.holdupTime()));
    rig.domain.brownout(rig.seq.holdupTime());
    EXPECT_TRUE(rig.domain.powered());
    EXPECT_EQ(rig.nv.state(), mem::NvdimmDevice::State::normal);
    EXPECT_EQ(rig.domain.domainStats().brownoutsRidden.value(), 1.0);
    EXPECT_EQ(rig.domain.domainStats().cuts.value(), 0.0);
}

TEST(PowerDomain, LongBrownoutIsAnOutageAndDelaysRestore)
{
    DomainRig rig;
    const Tick dip = rig.seq.holdupTime() * 4;
    const Tick dark_until = rig.eq.curTick() + dip;
    rig.domain.brownout(dip);
    EXPECT_FALSE(rig.domain.powered());
    EXPECT_EQ(rig.domain.domainStats().brownoutOutages.value(), 1.0);
    EXPECT_EQ(rig.domain.inputGoodAt(), dark_until);

    // Ask for power back immediately: the domain must wait for the
    // input before it even starts ramping.
    Tick done_at = 0;
    rig.domain.powerRestore([&](bool ok) {
        EXPECT_TRUE(ok);
        done_at = rig.eq.curTick();
    });
    rig.settle(dip);
    EXPECT_GE(done_at, dark_until + rig.seq.powerUpTime());
}

TEST(PowerDomain, CutDuringRestoreFailsItThenRetrySucceeds)
{
    DomainRig rig;
    rig.domain.powerCut();
    rig.settle();

    bool done = false, ok = true;
    rig.domain.powerRestore([&](bool k) {
        done = true;
        ok = k;
    });
    // Let the ramp get underway, then pull the plug again.
    rig.eq.run(rig.eq.curTick() + rig.seq.powerUpTime() / 2);
    rig.domain.powerCut();
    rig.eq.run(rig.eq.curTick() + 1000);
    EXPECT_TRUE(done);
    EXPECT_FALSE(ok);
    EXPECT_GE(rig.domain.domainStats().failedRestores.value(), 1.0);
    rig.settle();

    bool done2 = false, ok2 = false;
    rig.domain.powerRestore([&](bool k) {
        done2 = true;
        ok2 = k;
    });
    rig.settle();
    EXPECT_TRUE(done2);
    EXPECT_TRUE(ok2);
    EXPECT_TRUE(rig.domain.powered());
}

} // namespace
