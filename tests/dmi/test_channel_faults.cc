/**
 * @file
 * Channel fault-edge tests: bursts spanning a frame boundary,
 * scrambler desync recovery, drop semantics, and BER determinism.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dmi/channel.hh"
#include "dmi/link.hh"

using namespace contutto;
using namespace contutto::dmi;

namespace
{

/** Same fixture shape as test_link.cc. */
struct LinkPair
{
    EventQueue eq;
    ClockDomain nest{"nest", 500};
    ClockDomain fabric{"fabric", 4000};
    stats::StatGroup root{"root"};
    DmiChannel down;
    DmiChannel up;
    HostLink host;
    BufferLink buffer;

    explicit LinkPair(double error_rate = 0.0,
                      std::uint64_t seed_base = 100)
        : down("down", eq, fabric, &root,
               DmiChannel::Params{14, 125, nanoseconds(1), error_rate,
                                  seed_base + 1}),
          up("up", eq, fabric, &root,
             DmiChannel::Params{21, 125, nanoseconds(1), error_rate,
                                seed_base + 2}),
          host("host", eq, nest, &root, {}, down, up),
          buffer("buffer", eq, fabric, &root, {}, up, down)
    {}

    void
    sendCommands(unsigned n)
    {
        for (unsigned t = 0; t < n; ++t) {
            DownFrame f;
            f.type = FrameType::command;
            f.cmdType = CmdType::read128;
            f.tag = std::uint8_t(t);
            f.addr = Addr(t) * 128;
            host.sendFrame(f);
        }
    }
};

TEST(ChannelFaults, BurstInsideOneFrameCorruptsOneFrame)
{
    LinkPair lp;
    std::vector<std::uint8_t> tags;
    lp.buffer.onFrame =
        [&](const DownFrame &f) { tags.push_back(f.tag); };

    // 24-bit burst at bit 100 of a 224-bit down frame: one frame.
    lp.down.corruptBurst(100, 24);
    lp.sendCommands(3);
    lp.eq.run(microseconds(50));

    ASSERT_EQ(tags.size(), 3u);
    EXPECT_EQ(lp.down.channelStats().framesCorrupted.value(), 1.0);
    EXPECT_GE(lp.host.linkStats().replaysTriggered.value(), 1.0);
}

TEST(ChannelFaults, BurstSpansFrameBoundary)
{
    LinkPair lp;
    std::vector<std::uint8_t> tags;
    lp.buffer.onFrame =
        [&](const DownFrame &f) { tags.push_back(f.tag); };

    // Down frames are 224 bits. Starting 8 bits before the end with
    // a 20-bit burst damages the first frame's tail and carries 12
    // bits into the next frame's head: two corrupted frames.
    lp.down.corruptBurst(216, 20);
    lp.sendCommands(4);
    lp.eq.run(microseconds(50));

    // Replay still delivers everything exactly once, in order.
    ASSERT_EQ(tags.size(), 4u);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(tags[t], t);
    EXPECT_EQ(lp.down.channelStats().framesCorrupted.value(), 2.0)
        << "the burst must touch exactly two frames";
    EXPECT_GE(lp.buffer.linkStats().rxCrcErrors.value(), 2.0);
    EXPECT_EQ(lp.host.unackedFrames(), 0u);
}

TEST(ChannelFaults, DroppedFrameIsRecoveredByAckTimeout)
{
    LinkPair lp;
    std::vector<std::uint8_t> tags;
    lp.buffer.onFrame =
        [&](const DownFrame &f) { tags.push_back(f.tag); };

    lp.down.dropNext(1);
    lp.sendCommands(3);
    lp.eq.run(microseconds(50));

    ASSERT_EQ(tags.size(), 3u);
    for (unsigned t = 0; t < 3; ++t)
        EXPECT_EQ(tags[t], t);
    EXPECT_EQ(lp.down.channelStats().framesDropped.value(), 1.0);
    // A dropped frame never reaches the CRC checker; recovery comes
    // from the missing ACK, not an error indication.
    EXPECT_GE(lp.host.linkStats().replaysTriggered.value(), 1.0);
    EXPECT_EQ(lp.host.unackedFrames(), 0u);
}

TEST(ChannelFaults, ScramblerDesyncRecoversAfterReseed)
{
    LinkPair lp;
    std::vector<std::uint8_t> tags;
    lp.buffer.onFrame =
        [&](const DownFrame &f) { tags.push_back(f.tag); };

    // A desynced descrambler mangles every frame; the link replays
    // fruitlessly (this is what forces a retrain on real hardware).
    lp.down.desyncRxScrambler();
    lp.sendCommands(1);
    lp.eq.run(microseconds(20));
    EXPECT_TRUE(tags.empty());
    EXPECT_GE(lp.buffer.linkStats().rxCrcErrors.value(), 2.0);

    // Retrain-equivalent repair: reseed both scramblers to a common
    // state. The still-pending replay now gets through.
    lp.down.reseedScramblers();
    lp.eq.run(microseconds(50));
    ASSERT_EQ(tags.size(), 1u);
    EXPECT_EQ(tags[0], 0);
    EXPECT_EQ(lp.host.unackedFrames(), 0u);
}

TEST(ChannelFaults, ZeroBerIsDeterministicAcrossIdenticalSeeds)
{
    // With BER = 0 no random corruption may occur, whatever the
    // seed; and two identically-seeded runs are tick-for-tick
    // reproducible in their stats.
    auto run = [](std::uint64_t seed) {
        LinkPair lp(0.0, seed);
        unsigned got = 0;
        lp.buffer.onFrame = [&](const DownFrame &) { ++got; };
        lp.sendCommands(32);
        lp.eq.run(microseconds(100));
        EXPECT_EQ(got, 32u);
        EXPECT_EQ(lp.down.channelStats().framesCorrupted.value(), 0.0);
        EXPECT_EQ(lp.down.channelStats().framesDropped.value(), 0.0);
        EXPECT_EQ(lp.host.linkStats().replaysTriggered.value(), 0.0);
        return std::make_tuple(
            lp.down.channelStats().framesCarried.value(),
            lp.down.channelStats().bytesCarried.value(),
            lp.eq.curTick());
    };
    EXPECT_EQ(run(500), run(500));
    // A different seed changes nothing either at BER = 0.
    EXPECT_EQ(run(500), run(900));
}

TEST(ChannelFaults, RandomBerIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        LinkPair lp(0.05, seed);
        unsigned got = 0;
        lp.buffer.onFrame = [&](const DownFrame &) { ++got; };
        lp.sendCommands(64);
        lp.eq.run(milliseconds(1));
        EXPECT_EQ(got, 64u);
        return std::make_tuple(
            lp.down.channelStats().framesCorrupted.value(),
            lp.host.linkStats().replaysTriggered.value(),
            lp.host.linkStats().framesReplayed.value());
    };
    auto a = run(321), b = run(321);
    EXPECT_EQ(a, b) << "same seed, same error pattern";
    EXPECT_GT(std::get<0>(a), 0.0) << "5% BER must corrupt something";
}

} // namespace
