/** @file Lane sparing tests (paper §2.2's sparing signals). */

#include <gtest/gtest.h>

#include "cpu/system.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

Power8System::Params
smallCard()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}}};
    return p;
}

TEST(LaneSparing, FirstFailureIsAbsorbedBySpare)
{
    Power8System sys(smallCard());
    ASSERT_TRUE(sys.train());

    LogControl::warnings() = false;
    sys.downChannel().failLane(5);
    LogControl::warnings() = true;

    EXPECT_TRUE(sys.downChannel().spareInUse());
    EXPECT_FALSE(sys.downChannel().degraded());
    EXPECT_EQ(sys.downChannel().channelStats()
                  .spareActivations.value(), 1.0);

    // Traffic is completely unaffected.
    int ok = 0;
    for (int i = 0; i < 20; ++i)
        sys.port().read(Addr(i) * 128, [&](const HostOpResult &) {
            ++ok;
        });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_EQ(ok, 20);
    EXPECT_EQ(sys.card()->mbi().linkStats().rxCrcErrors.value(),
              0.0);
}

TEST(LaneSparing, SecondFailureDegradesTheBundle)
{
    Power8System sys(smallCard());
    ASSERT_TRUE(sys.train());
    LogControl::warnings() = false;
    sys.downChannel().failLane(3);
    sys.downChannel().failLane(9);
    LogControl::warnings() = true;

    EXPECT_TRUE(sys.downChannel().degraded());

    // Every downstream frame is now damaged: commands never arrive,
    // replays keep failing (bounded run, then give up).
    int done = 0;
    sys.port().read(0, [&](const HostOpResult &) { ++done; });
    EXPECT_FALSE(sys.runUntilIdle(microseconds(400)));
    EXPECT_EQ(done, 0);
    EXPECT_GT(sys.card()->mbi().linkStats().rxCrcErrors.value(),
              1.0);

    // Repair (a card swap in real life): the OS fails the stuck
    // operation, firmware retrains, service returns.
    sys.downChannel().repairAllLanes();
    int aborted = 0;
    sys.port().read(0, [&](const HostOpResult &r) {
        if (r.failed)
            ++aborted;
    }); // note: this read also gets aborted below
    sys.port().abortInFlight();
    EXPECT_GE(aborted, 1);
    EXPECT_EQ(sys.port().inFlight(), 0u);
    bool retrained = false;
    sys.trainAsync([&](const dmi::TrainingResult &r) {
        retrained = r.success;
    });
    while (!retrained && sys.eventq().step()) {
    }
    ASSERT_TRUE(retrained);
    // New traffic flows after the reset.
    int ok = 0;
    sys.port().read(128, [&](const HostOpResult &) { ++ok; });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_EQ(ok, 1);
}

TEST(LaneSparing, DegradedLinkFailsTraining)
{
    auto p = smallCard();
    Power8System sys(p);
    LogControl::warnings() = false;
    sys.downChannel().failLane(0);
    sys.downChannel().failLane(1);
    LogControl::warnings() = true;
    // Training patterns never get through.
    auto tp = sys.params().training;
    (void)tp;
    EXPECT_FALSE(sys.train());
    EXPECT_FALSE(sys.trainingResult().success);
}

} // namespace
