/** @file Channel and link-layer tests: timing, ACKs, replay. */

#include <gtest/gtest.h>

#include <vector>

#include "dmi/channel.hh"
#include "dmi/codec.hh"
#include "dmi/link.hh"
#include "sim/random.hh"

using namespace contutto;
using namespace contutto::dmi;

namespace
{

/** A host and buffer endpoint wired through two channels. */
struct LinkPair
{
    EventQueue eq;
    ClockDomain nest{"nest", 500};     // 2 GHz
    ClockDomain fabric{"fabric", 4000}; // 250 MHz
    stats::StatGroup root{"root"};
    DmiChannel down;
    DmiChannel up;
    HostLink host;
    BufferLink buffer;

    explicit LinkPair(double error_rate = 0.0,
                      HostLink::Params host_params = {},
                      BufferLink::Params buffer_params = {})
        : down("down", eq, fabric, &root,
               DmiChannel::Params{14, 125, nanoseconds(1), error_rate,
                                  101}),
          up("up", eq, fabric, &root,
             DmiChannel::Params{21, 125, nanoseconds(1), error_rate,
                                202}),
          host("host", eq, nest, &root, host_params, down, up),
          buffer("buffer", eq, fabric, &root, buffer_params, up, down)
    {}
};

TEST(Channel, SerializationTimeMatchesLaneMath)
{
    LinkPair lp;
    // 224 bits on 14 lanes = 16 UI at 125 ps = 2 ns.
    EXPECT_EQ(lp.down.serializationTime(downFrameBytes), 2000u);
    // 336 bits on 21 lanes = 16 UI = 2 ns.
    EXPECT_EQ(lp.up.serializationTime(upFrameBytes), 2000u);
}

TEST(Channel, RawBandwidthMatchesPaperAggregate)
{
    LinkPair lp;
    // 14 lanes at 8 Gb/s = 14 GB/s down; 21 lanes = 21 GB/s up.
    // Aggregate 35 GB/s per channel: the paper's headline number.
    EXPECT_NEAR(lp.down.rawBandwidth(), 14e9, 1e6);
    EXPECT_NEAR(lp.up.rawBandwidth(), 21e9, 1e6);
    EXPECT_NEAR(lp.down.rawBandwidth() + lp.up.rawBandwidth(), 35e9,
                2e6);
}

TEST(Link, DeliversCommandFrameDownstream)
{
    LinkPair lp;
    std::vector<DownFrame> got;
    lp.buffer.onFrame = [&](const DownFrame &f) { got.push_back(f); };

    DownFrame f;
    f.type = FrameType::command;
    f.cmdType = CmdType::read128;
    f.tag = 4;
    f.addr = 0x1000;
    lp.host.sendFrame(f);
    lp.eq.run(microseconds(10));

    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].tag, 4);
    EXPECT_EQ(got[0].addr, 0x1000u);
    EXPECT_EQ(lp.host.unackedFrames(), 0u) << "idle ACK should return";
}

TEST(Link, DeliversResponseFramesUpstream)
{
    LinkPair lp;
    std::vector<UpFrame> got;
    lp.host.onFrame = [&](const UpFrame &f) { got.push_back(f); };

    MemResponse resp;
    resp.type = RespType::readData;
    resp.tag = 7;
    for (auto &b : resp.data)
        b = 0x5A;
    for (auto &f : encodeResponse(resp))
        lp.buffer.sendFrame(f);
    lp.eq.run(microseconds(10));

    ASSERT_EQ(got.size(), upFramesPerLine);
    EXPECT_EQ(lp.buffer.unackedFrames(), 0u);
}

TEST(Link, PiggybacksAcksOnReversePayload)
{
    LinkPair lp;
    lp.buffer.onFrame = [&](const DownFrame &) {
        UpFrame u;
        u.type = FrameType::done;
        u.doneCount = 1;
        u.doneTags[0] = 1;
        lp.buffer.sendFrame(u);
    };
    int host_got = 0;
    lp.host.onFrame = [&](const UpFrame &) { ++host_got; };

    DownFrame f;
    f.type = FrameType::command;
    f.cmdType = CmdType::read128;
    f.tag = 1;
    lp.host.sendFrame(f);
    lp.eq.run(microseconds(10));

    EXPECT_EQ(host_got, 1);
    EXPECT_EQ(lp.host.unackedFrames(), 0u);
    EXPECT_EQ(lp.buffer.unackedFrames(), 0u);
}

TEST(Link, SingleCorruptionRecoversViaReplay)
{
    LinkPair lp;
    std::vector<std::uint8_t> tags;
    lp.buffer.onFrame =
        [&](const DownFrame &f) { tags.push_back(f.tag); };

    lp.down.corruptNext(1);
    for (std::uint8_t t = 0; t < 5; ++t) {
        DownFrame f;
        f.type = FrameType::command;
        f.cmdType = CmdType::read128;
        f.tag = t;
        f.addr = Addr(t) * 128;
        lp.host.sendFrame(f);
    }
    lp.eq.run(microseconds(20));

    // All five frames delivered exactly once, in order.
    ASSERT_EQ(tags.size(), 5u);
    for (std::uint8_t t = 0; t < 5; ++t)
        EXPECT_EQ(tags[t], t);
    EXPECT_GE(lp.host.linkStats().replaysTriggered.value(), 1.0);
    EXPECT_GE(lp.buffer.linkStats().rxCrcErrors.value(), 1.0);
    EXPECT_EQ(lp.host.unackedFrames(), 0u);
}

TEST(Link, CorruptedReplayRetriesAgain)
{
    LinkPair lp;
    std::vector<std::uint8_t> tags;
    lp.buffer.onFrame =
        [&](const DownFrame &f) { tags.push_back(f.tag); };

    // Corrupt the original and the first replayed copy too.
    lp.down.corruptNext(2);
    DownFrame f;
    f.type = FrameType::command;
    f.cmdType = CmdType::read128;
    f.tag = 21;
    lp.host.sendFrame(f);
    lp.eq.run(microseconds(50));

    ASSERT_EQ(tags.size(), 1u);
    EXPECT_EQ(tags[0], 21);
    EXPECT_GE(lp.host.linkStats().replaysTriggered.value(), 2.0);
}

TEST(Link, FreezeWorkaroundRepeatsLastFrameBeforeReplay)
{
    BufferLink::Params bp;
    bp.freezeRepeats = 4; // ConTutto's replay-switch cover frames
    LinkPair lp(0.0, {}, bp);

    int host_frames = 0;
    lp.host.onFrame = [&](const UpFrame &) { ++host_frames; };

    // Buffer sends 6 upstream frames; corrupt the second so the host
    // stalls and the buffer must replay.
    lp.up.corruptNext(0); // no-op, keep explicit
    bool first = true;
    for (int i = 0; i < 6; ++i) {
        UpFrame u;
        u.type = FrameType::done;
        u.doneCount = 1;
        u.doneTags[0] = std::uint8_t(i);
        lp.buffer.sendFrame(u);
        if (first) {
            lp.up.corruptNext(1); // corrupt frame #2 on the wire
            first = false;
        }
    }
    lp.eq.run(microseconds(50));

    EXPECT_EQ(host_frames, 6);
    EXPECT_GE(lp.buffer.linkStats().replaysTriggered.value(), 1.0);
    // The freeze duplicates must have been dropped by seq check.
    EXPECT_GE(lp.host.linkStats().rxSeqDrops.value(), 4.0);
    EXPECT_EQ(lp.buffer.unackedFrames(), 0u);
}

TEST(Link, InOrderExactlyOnceUnderRandomErrors)
{
    // Property: whatever the error pattern, payload frames are
    // delivered to the upper layer exactly once and in order.
    LinkPair lp(0.02); // 2% frame error rate on both channels
    std::vector<std::uint8_t> down_tags;
    std::vector<std::uint8_t> up_tags;
    lp.buffer.onFrame =
        [&](const DownFrame &f) { down_tags.push_back(f.tag); };
    lp.host.onFrame =
        [&](const UpFrame &f) { up_tags.push_back(f.doneTags[0]); };

    const int n = 400;
    for (int i = 0; i < n; ++i) {
        DownFrame f;
        f.type = FrameType::command;
        f.cmdType = CmdType::read128;
        f.tag = std::uint8_t(i % 32);
        f.addr = Addr(i) * 128;
        lp.host.sendFrame(f);
        UpFrame u;
        u.type = FrameType::done;
        u.doneCount = 1;
        u.doneTags[0] = std::uint8_t(i % 32);
        lp.buffer.sendFrame(u);
    }
    lp.eq.run(milliseconds(20));

    ASSERT_EQ(down_tags.size(), std::size_t(n));
    ASSERT_EQ(up_tags.size(), std::size_t(n));
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(down_tags[i], i % 32);
        EXPECT_EQ(up_tags[i], i % 32);
    }
    EXPECT_EQ(lp.host.unackedFrames(), 0u);
    EXPECT_EQ(lp.buffer.unackedFrames(), 0u);
    EXPECT_GE(lp.host.linkStats().replaysTriggered.value()
                  + lp.buffer.linkStats().replaysTriggered.value(),
              1.0);
}

TEST(Link, WindowLimitQueuesWithoutLoss)
{
    HostLink::Params hp;
    hp.windowLimit = 8; // tiny window forces internal queueing
    LinkPair lp(0.0, hp);
    std::vector<std::uint8_t> tags;
    lp.buffer.onFrame =
        [&](const DownFrame &f) { tags.push_back(f.tag); };

    for (int i = 0; i < 100; ++i) {
        DownFrame f;
        f.type = FrameType::command;
        f.cmdType = CmdType::read128;
        f.tag = std::uint8_t(i % 32);
        lp.host.sendFrame(f);
    }
    lp.eq.run(milliseconds(1));
    ASSERT_EQ(tags.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(tags[i], i % 32);
}

TEST(Link, ScramblerDesyncIsDetectedByCrc)
{
    LinkPair lp;
    int delivered = 0;
    lp.buffer.onFrame = [&](const DownFrame &) { ++delivered; };

    lp.down.desyncRxScrambler();
    DownFrame f;
    f.type = FrameType::command;
    f.cmdType = CmdType::read128;
    lp.host.sendFrame(f);
    lp.eq.run(microseconds(5));

    // Every frame is mangled by the desynced descrambler; CRC drops
    // them all (replays keep failing too: a desynced scrambler kills
    // the link, as on real hardware, until retraining).
    EXPECT_EQ(delivered, 0);
    EXPECT_GE(lp.buffer.linkStats().rxCrcErrors.value(), 1.0);
}

} // namespace
