/**
 * @file
 * Replay accounting under repeated injected errors: exact
 * replay-per-error bookkeeping, the onReplay observation hook the
 * RAS watchdog subscribes to, and the ConTutto freeze-repeat to
 * replay-buffer transition.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dmi/channel.hh"
#include "dmi/link.hh"

using namespace contutto;
using namespace contutto::dmi;

namespace
{

struct LinkPair
{
    EventQueue eq;
    ClockDomain nest{"nest", 500};
    ClockDomain fabric{"fabric", 4000};
    stats::StatGroup root{"root"};
    DmiChannel down;
    DmiChannel up;
    HostLink host;
    BufferLink buffer;

    explicit LinkPair(HostLink::Params host_params = {},
                      BufferLink::Params buffer_params = {})
        : down("down", eq, fabric, &root,
               DmiChannel::Params{14, 125, nanoseconds(1), 0.0, 31}),
          up("up", eq, fabric, &root,
             DmiChannel::Params{21, 125, nanoseconds(1), 0.0, 32}),
          host("host", eq, nest, &root, host_params, down, up),
          buffer("buffer", eq, fabric, &root, buffer_params, up, down)
    {}
};

TEST(ReplayExhaustion, ReplaysMatchInjectedErrorCountExactly)
{
    LinkPair lp;
    unsigned delivered = 0;
    lp.buffer.onFrame = [&](const DownFrame &) { ++delivered; };

    // One frame at a time, each corrupted exactly once: every error
    // produces exactly one replay, no more.
    const unsigned errors = 5;
    for (unsigned i = 0; i < errors; ++i) {
        lp.down.corruptNext(1);
        DownFrame f;
        f.type = FrameType::command;
        f.cmdType = CmdType::read128;
        f.tag = std::uint8_t(i);
        lp.host.sendFrame(f);
        lp.eq.run(lp.eq.curTick() + microseconds(10));
    }

    EXPECT_EQ(delivered, errors);
    EXPECT_EQ(lp.host.linkStats().replaysTriggered.value(),
              double(errors));
    EXPECT_EQ(lp.buffer.linkStats().rxCrcErrors.value(),
              double(errors));
    EXPECT_EQ(lp.host.unackedFrames(), 0u);
}

TEST(ReplayExhaustion, OnReplayHookSeesEveryReplay)
{
    LinkPair lp;
    unsigned hook_calls = 0;
    lp.host.onReplay = [&] { ++hook_calls; };
    lp.buffer.onFrame = [](const DownFrame &) {};

    lp.down.corruptNext(3); // original + two corrupted replays
    DownFrame f;
    f.type = FrameType::command;
    f.cmdType = CmdType::read128;
    f.tag = 9;
    lp.host.sendFrame(f);
    lp.eq.run(microseconds(100));

    EXPECT_EQ(double(hook_calls),
              lp.host.linkStats().replaysTriggered.value())
        << "the watchdog hook must fire once per replay";
    EXPECT_GE(hook_calls, 3u);
}

TEST(ReplayExhaustion, FreezeRepeatsPrecedeReplayBufferTransition)
{
    // ConTutto's workaround (§3.3(ii)): on a missing ACK the MBI
    // first re-sends its last frame freezeRepeats times to cover the
    // switch onto the replay buffer; the receiver discards the
    // repeats by sequence number and only then sees the replayed
    // stream.
    BufferLink::Params bp;
    bp.freezeRepeats = 4;
    LinkPair lp({}, bp);

    unsigned delivered = 0;
    lp.host.onFrame = [&](const UpFrame &) { ++delivered; };

    lp.up.corruptNext(1);
    for (unsigned i = 0; i < 3; ++i) {
        UpFrame u;
        u.type = FrameType::done;
        u.doneCount = 1;
        u.doneTags[0] = std::uint8_t(i);
        lp.buffer.sendFrame(u);
    }
    lp.eq.run(microseconds(100));

    EXPECT_EQ(delivered, 3u);
    EXPECT_EQ(lp.buffer.linkStats().replaysTriggered.value(), 1.0);
    // Every freeze cover frame is a stale seq the host must drop.
    EXPECT_GE(lp.host.linkStats().rxSeqDrops.value(), 4.0);
    // The replay retransmitted the unacked frames on top of the
    // freeze repeats.
    EXPECT_GE(lp.buffer.linkStats().framesReplayed.value(), 1.0);
    EXPECT_EQ(lp.buffer.unackedFrames(), 0u);
}

TEST(ReplayExhaustion, BackToBackErrorsEachTriggerTheirOwnReplay)
{
    LinkPair lp;
    std::vector<std::uint8_t> tags;
    lp.buffer.onFrame =
        [&](const DownFrame &f) { tags.push_back(f.tag); };
    unsigned hook_calls = 0;
    lp.host.onReplay = [&] { ++hook_calls; };

    // A window full of frames with three spaced corruptions: the
    // link must not conflate them into one recovery.
    lp.down.corruptNext(1);
    for (unsigned i = 0; i < 12; ++i) {
        DownFrame f;
        f.type = FrameType::command;
        f.cmdType = CmdType::read128;
        f.tag = std::uint8_t(i);
        lp.host.sendFrame(f);
        if (i == 4 || i == 8)
            lp.down.corruptNext(1);
    }
    lp.eq.run(microseconds(200));

    ASSERT_EQ(tags.size(), 12u);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(tags[i], i);
    EXPECT_EQ(double(hook_calls),
              lp.host.linkStats().replaysTriggered.value());
    EXPECT_GE(hook_calls, 1u);
    EXPECT_EQ(lp.host.unackedFrames(), 0u);
}

} // namespace
