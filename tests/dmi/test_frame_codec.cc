/** @file Frame serialization and command/response codec tests. */

#include <gtest/gtest.h>

#include <algorithm>

#include "dmi/codec.hh"
#include "dmi/frame.hh"
#include "sim/random.hh"

using namespace contutto;
using namespace contutto::dmi;

namespace
{

CacheLine
randomLine(Rng &r)
{
    CacheLine line;
    for (auto &b : line)
        b = std::uint8_t(r.next());
    return line;
}

TEST(Frame, DownCommandRoundTrip)
{
    DownFrame f;
    f.type = FrameType::command;
    f.seq = 42;
    f.seqValid = true;
    f.ackValid = true;
    f.ackSeq = 17;
    f.cmdType = CmdType::partialWrite;
    f.tag = 9;
    f.addr = 0x123456780ull & ~Addr(127);

    WireFrame w = f.serialize();
    EXPECT_EQ(w.len, downFrameBytes);
    DownFrame g;
    ASSERT_TRUE(DownFrame::deserialize(w, g));
    EXPECT_EQ(g.type, f.type);
    EXPECT_EQ(g.seq, f.seq);
    EXPECT_TRUE(g.seqValid);
    EXPECT_TRUE(g.ackValid);
    EXPECT_EQ(g.ackSeq, f.ackSeq);
    EXPECT_EQ(g.cmdType, f.cmdType);
    EXPECT_EQ(g.tag, f.tag);
    EXPECT_EQ(g.addr, f.addr);
}

TEST(Frame, DownWriteDataRoundTrip)
{
    Rng r(1);
    DownFrame f;
    f.type = FrameType::writeData;
    f.tag = 31;
    f.subIndex = 5;
    for (auto &b : f.data)
        b = std::uint8_t(r.next());
    WireFrame w = f.serialize();
    DownFrame g;
    ASSERT_TRUE(DownFrame::deserialize(w, g));
    EXPECT_EQ(g.data, f.data);
    EXPECT_EQ(g.subIndex, 5);
}

TEST(Frame, UpReadDataRoundTrip)
{
    Rng r(2);
    UpFrame f;
    f.type = FrameType::readData;
    f.tag = 7;
    f.subIndex = 3;
    for (auto &b : f.data)
        b = std::uint8_t(r.next());
    WireFrame w = f.serialize();
    EXPECT_EQ(w.len, upFrameBytes);
    UpFrame g;
    ASSERT_TRUE(UpFrame::deserialize(w, g));
    EXPECT_EQ(g.data, f.data);
    EXPECT_EQ(g.tag, 7);
}

TEST(Frame, UpDoneCarriesMultipleTags)
{
    UpFrame f;
    f.type = FrameType::done;
    f.doneCount = 3;
    f.doneTags = {4, 8, 15, 0};
    WireFrame w = f.serialize();
    UpFrame g;
    ASSERT_TRUE(UpFrame::deserialize(w, g));
    EXPECT_EQ(g.doneCount, 3);
    EXPECT_EQ(g.doneTags[0], 4);
    EXPECT_EQ(g.doneTags[2], 15);
}

TEST(Frame, CorruptionFailsCrc)
{
    DownFrame f;
    f.type = FrameType::command;
    f.cmdType = CmdType::read128;
    f.addr = 0x1000;
    WireFrame w = f.serialize();
    w.bytes[6] ^= 0x40;
    DownFrame g;
    EXPECT_FALSE(DownFrame::deserialize(w, g));
}

TEST(Codec, ReadEncodesToSingleFrame)
{
    MemCommand cmd;
    cmd.type = CmdType::read128;
    cmd.addr = 0x2000;
    cmd.tag = 3;
    auto frames = encodeCommand(cmd);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, FrameType::command);
}

TEST(Codec, WriteEncodesHeaderPlusEightChunks)
{
    Rng r(3);
    MemCommand cmd;
    cmd.type = CmdType::write128;
    cmd.addr = 0x4000;
    cmd.tag = 5;
    cmd.data = randomLine(r);
    auto frames = encodeCommand(cmd);
    ASSERT_EQ(frames.size(), 1u + downFramesPerLine);
}

TEST(Codec, PartialWriteAddsEnableMapFrame)
{
    Rng r(4);
    MemCommand cmd;
    cmd.type = CmdType::partialWrite;
    cmd.addr = 0x6000;
    cmd.tag = 6;
    cmd.data = randomLine(r);
    cmd.enables.set(3);
    cmd.enables.set(77);
    auto frames = encodeCommand(cmd);
    ASSERT_EQ(frames.size(), 2u + downFramesPerLine);
    EXPECT_EQ(frames[1].subIndex, enableMapSubIndex);
}

TEST(Codec, WriteCommandReassembles)
{
    Rng r(5);
    MemCommand cmd;
    cmd.type = CmdType::write128;
    cmd.addr = 0x8000;
    cmd.tag = 11;
    cmd.data = randomLine(r);

    CommandAssembler asmb;
    auto frames = encodeCommand(cmd);
    std::optional<MemCommand> out;
    for (const auto &f : frames) {
        EXPECT_FALSE(out.has_value());
        out = asmb.feed(f);
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->type, CmdType::write128);
    EXPECT_EQ(out->addr, cmd.addr);
    EXPECT_EQ(out->tag, cmd.tag);
    EXPECT_EQ(out->data, cmd.data);
    EXPECT_TRUE(asmb.idle());
}

TEST(Codec, PartialWriteReassemblesEnables)
{
    Rng r(6);
    MemCommand cmd;
    cmd.type = CmdType::partialWrite;
    cmd.addr = 0xA000;
    cmd.tag = 12;
    cmd.data = randomLine(r);
    for (int i = 0; i < 128; i += 3)
        cmd.enables.set(i);

    CommandAssembler asmb;
    std::optional<MemCommand> out;
    for (const auto &f : encodeCommand(cmd))
        out = asmb.feed(f);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->enables, cmd.enables);
}

TEST(Codec, InterleavedWritesReassembleIndependently)
{
    // Paper §3.3(iii): "write data for multiple downstream commands
    // can be interleaved".
    Rng r(7);
    MemCommand a, b;
    a.type = b.type = CmdType::write128;
    a.addr = 0x1000;
    b.addr = 0x2000;
    a.tag = 1;
    b.tag = 2;
    a.data = randomLine(r);
    b.data = randomLine(r);

    auto fa = encodeCommand(a);
    auto fb = encodeCommand(b);
    CommandAssembler asmb;
    std::vector<MemCommand> done;
    // Interleave frame-by-frame.
    for (std::size_t i = 0; i < fa.size(); ++i) {
        if (auto c = asmb.feed(fa[i]))
            done.push_back(*c);
        if (auto c = asmb.feed(fb[i]))
            done.push_back(*c);
    }
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].data, a.data);
    EXPECT_EQ(done[1].data, b.data);
}

TEST(Codec, ReadResponseReassembles)
{
    Rng r(8);
    MemResponse resp;
    resp.type = RespType::readData;
    resp.tag = 19;
    resp.data = randomLine(r);

    auto frames = encodeResponse(resp);
    ASSERT_EQ(frames.size(), upFramesPerLine);
    ResponseAssembler asmb;
    std::vector<MemResponse> out;
    for (const auto &f : frames)
        for (auto &m : asmb.feed(f))
            out.push_back(m);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].data, resp.data);
    EXPECT_EQ(out[0].tag, 19);
}

TEST(Codec, DoneFanoutProducesOneResponsePerTag)
{
    UpFrame f;
    f.type = FrameType::done;
    f.doneCount = 4;
    f.doneTags = {1, 2, 3, 4};
    ResponseAssembler asmb;
    auto out = asmb.feed(f);
    ASSERT_EQ(out.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(out[i].type, RespType::done);
        EXPECT_EQ(out[i].tag, i + 1);
    }
}

// Property sweep: random command streams survive encode->interleave->
// reassemble for all command types.
class CodecFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CodecFuzz, RandomInterleavedStreams)
{
    Rng r(GetParam());
    std::vector<MemCommand> cmds;
    std::vector<std::vector<DownFrame>> encoded;
    for (unsigned tag = 0; tag < numTags; ++tag) {
        MemCommand c;
        switch (r.below(3)) {
          case 0: c.type = CmdType::read128; break;
          case 1: c.type = CmdType::write128; break;
          default: c.type = CmdType::partialWrite; break;
        }
        c.addr = Addr(r.below(1u << 20)) * cacheLineSize;
        c.tag = std::uint8_t(tag);
        c.data = randomLine(r);
        if (c.type == CmdType::partialWrite)
            for (int i = 0; i < 128; ++i)
                if (r.chance(0.5))
                    c.enables.set(i);
        cmds.push_back(c);
        encoded.push_back(encodeCommand(c));
    }

    // Round-robin random interleave.
    CommandAssembler asmb;
    std::vector<MemCommand> out;
    std::vector<std::size_t> pos(encoded.size(), 0);
    std::size_t remaining = 0;
    for (auto &v : encoded)
        remaining += v.size();
    while (remaining > 0) {
        std::size_t k = r.below(encoded.size());
        if (pos[k] >= encoded[k].size())
            continue;
        if (auto c = asmb.feed(encoded[k][pos[k]++]))
            out.push_back(*c);
        --remaining;
    }
    ASSERT_EQ(out.size(), cmds.size());
    std::sort(out.begin(), out.end(),
              [](const MemCommand &x, const MemCommand &y) {
                  return x.tag < y.tag;
              });
    for (unsigned i = 0; i < cmds.size(); ++i) {
        EXPECT_EQ(out[i].addr, cmds[i].addr);
        EXPECT_EQ(out[i].type, cmds[i].type);
        if (hasWriteData(cmds[i].type))
            EXPECT_EQ(out[i].data, cmds[i].data);
    }
    EXPECT_TRUE(asmb.idle());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                           88));

} // namespace
