/** @file CRC and scrambler unit + property tests. */

#include <gtest/gtest.h>

#include <vector>

#include "dmi/crc.hh"
#include "dmi/frame.hh"
#include "dmi/scrambler.hh"
#include "sim/random.hh"

using namespace contutto;
using namespace contutto::dmi;

namespace
{

TEST(Crc16, KnownVector)
{
    // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
    const char *s = "123456789";
    EXPECT_EQ(crc16(reinterpret_cast<const std::uint8_t *>(s), 9),
              0x29B1);
}

TEST(Crc16, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> buf(100);
    Rng r(3);
    for (auto &b : buf)
        b = std::uint8_t(r.next());
    Crc16 inc;
    inc.update(buf.data(), 40);
    inc.update(buf.data() + 40, 60);
    EXPECT_EQ(inc.value(), crc16(buf.data(), buf.size()));
}

// Property: every single-bit error in a frame-sized block is caught.
TEST(Crc16, DetectsAllSingleBitErrors)
{
    std::vector<std::uint8_t> buf(upFrameBytes);
    Rng r(4);
    for (auto &b : buf)
        b = std::uint8_t(r.next());
    std::uint16_t good = crc16(buf.data(), buf.size());
    for (std::size_t bit = 0; bit < buf.size() * 8; ++bit) {
        buf[bit / 8] ^= std::uint8_t(1u << (bit % 8));
        EXPECT_NE(crc16(buf.data(), buf.size()), good)
            << "missed flip at bit " << bit;
        buf[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    }
}

// Property: all double-bit errors in a frame are caught (sampled
// exhaustively for one byte pair stride, randomly otherwise).
TEST(Crc16, DetectsDoubleBitErrors)
{
    std::vector<std::uint8_t> buf(downFrameBytes);
    Rng r(5);
    for (auto &b : buf)
        b = std::uint8_t(r.next());
    std::uint16_t good = crc16(buf.data(), buf.size());
    const std::size_t nbits = buf.size() * 8;
    for (int trial = 0; trial < 5000; ++trial) {
        std::size_t b1 = r.below(nbits);
        std::size_t b2 = r.below(nbits);
        if (b1 == b2)
            continue;
        buf[b1 / 8] ^= std::uint8_t(1u << (b1 % 8));
        buf[b2 / 8] ^= std::uint8_t(1u << (b2 % 8));
        EXPECT_NE(crc16(buf.data(), buf.size()), good);
        buf[b1 / 8] ^= std::uint8_t(1u << (b1 % 8));
        buf[b2 / 8] ^= std::uint8_t(1u << (b2 % 8));
    }
}

// Property: odd-weight errors are always caught (poly divisible by
// x+1).
TEST(Crc16, DetectsTripleBitErrors)
{
    std::vector<std::uint8_t> buf(downFrameBytes);
    Rng r(6);
    for (auto &b : buf)
        b = std::uint8_t(r.next());
    std::uint16_t good = crc16(buf.data(), buf.size());
    const std::size_t nbits = buf.size() * 8;
    for (int trial = 0; trial < 5000; ++trial) {
        std::size_t bits[3];
        bits[0] = r.below(nbits);
        bits[1] = r.below(nbits);
        bits[2] = r.below(nbits);
        if (bits[0] == bits[1] || bits[1] == bits[2]
            || bits[0] == bits[2])
            continue;
        for (auto b : bits)
            buf[b / 8] ^= std::uint8_t(1u << (b % 8));
        EXPECT_NE(crc16(buf.data(), buf.size()), good);
        for (auto b : bits)
            buf[b / 8] ^= std::uint8_t(1u << (b % 8));
    }
}

TEST(Scrambler, RoundTripsWithSyncedPeers)
{
    Scrambler tx(0x1234), rx(0x1234);
    std::vector<std::uint8_t> data(200);
    Rng r(7);
    for (auto &b : data)
        b = std::uint8_t(r.next());
    auto orig = data;
    tx.apply(data.data(), data.size());
    EXPECT_NE(data, orig); // scrambling changed the bytes
    rx.apply(data.data(), data.size());
    EXPECT_EQ(data, orig);
}

TEST(Scrambler, DesyncCorrupts)
{
    Scrambler tx(0xFFFF), rx(0xFFFF);
    rx.skip(1); // one byte of keystream slip
    std::vector<std::uint8_t> data(64, 0xAB);
    auto orig = data;
    tx.apply(data.data(), data.size());
    rx.apply(data.data(), data.size());
    EXPECT_NE(data, orig);
}

// The production scrambler steps a byte at a time through lookup
// tables; this is the bit-serial Galois reference it must match.
struct BitSerialScrambler
{
    std::uint16_t lfsr;

    std::uint8_t
    nextByte()
    {
        std::uint8_t out = 0;
        for (int b = 0; b < 8; ++b) {
            std::uint16_t bit = lfsr & 1;
            lfsr >>= 1;
            if (bit)
                lfsr ^= 0xB400;
            out = std::uint8_t((out << 1) | bit);
        }
        return out;
    }
};

TEST(Scrambler, ByteStepMatchesBitSerialReferenceExhaustively)
{
    // Every possible LFSR state, several bytes deep so the table
    // walk exercises state transitions, not just the first output.
    for (unsigned seed = 0; seed < 0x10000; ++seed) {
        Scrambler fast{std::uint16_t(seed)};
        BitSerialScrambler ref{std::uint16_t(seed)};
        for (int i = 0; i < 4; ++i) {
            std::uint8_t byte = 0;
            fast.apply(&byte, 1);
            ASSERT_EQ(byte, ref.nextByte())
                << "seed " << seed << " byte " << i;
            ASSERT_EQ(fast.state(), ref.lfsr)
                << "seed " << seed << " byte " << i;
        }
    }
}

TEST(Scrambler, KeystreamHasTransitions)
{
    // The whole point of scrambling: long runs of identical payload
    // bytes must produce varied wire bytes.
    Scrambler s(0xFFFF);
    std::vector<std::uint8_t> data(256, 0x00);
    s.apply(data.data(), data.size());
    int distinct = 0;
    std::vector<bool> seen(256, false);
    for (auto b : data)
        if (!seen[b]) {
            seen[b] = true;
            ++distinct;
        }
    EXPECT_GT(distinct, 100);
}

} // namespace
