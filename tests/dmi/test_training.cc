/** @file Link training and FRTL measurement tests. */

#include <gtest/gtest.h>

#include "dmi/training.hh"

using namespace contutto;
using namespace contutto::dmi;

namespace
{

struct TrainRig
{
    EventQueue eq;
    ClockDomain nest{"nest", 500};
    ClockDomain fabric{"fabric", 4000};
    stats::StatGroup root{"root"};
    DmiChannel down;
    DmiChannel up;
    HostLink host;
    BufferLink buffer;

    explicit TrainRig(BufferLink::Params buffer_params = {})
        : down("down", eq, fabric, &root,
               DmiChannel::Params{14, 125, nanoseconds(1), 0.0, 1}),
          up("up", eq, fabric, &root,
             DmiChannel::Params{21, 125, nanoseconds(1), 0.0, 2}),
          host("host", eq, nest, &root, {}, down, up),
          buffer("buffer", eq, fabric, &root, buffer_params, up, down)
    {}

    TrainingResult
    train(LinkTrainer::Params p)
    {
        LinkTrainer trainer("trainer", eq, nest, &root, p, host, buffer,
                            down, up);
        TrainingResult result;
        bool finished = false;
        trainer.start([&](const TrainingResult &r) {
            result = r;
            finished = true;
        });
        eq.run(milliseconds(10));
        EXPECT_TRUE(finished);
        return result;
    }
};

TEST(Training, SucceedsWithPerfectLink)
{
    TrainRig rig;
    auto r = rig.train({});
    EXPECT_TRUE(r.success);
    EXPECT_GT(r.frtl, 0u);
    EXPECT_LE(r.frtl, nanoseconds(120));
}

TEST(Training, FrtlReflectsBufferPipelineDepth)
{
    BufferLink::Params shallow;
    shallow.rxProcCycles = 2;
    shallow.txProcCycles = 1;
    BufferLink::Params deep;
    deep.rxProcCycles = 10;
    deep.txProcCycles = 6;

    TrainRig a(shallow), b(deep);
    auto ra = a.train({});
    auto rb = b.train({});
    ASSERT_TRUE(ra.success);
    ASSERT_TRUE(rb.success);
    // 13 extra fabric cycles at 4 ns = 52 ns more round trip.
    EXPECT_GT(rb.frtl, ra.frtl + nanoseconds(40));
}

TEST(Training, FailsWhenFrtlExceedsProcessorLimit)
{
    BufferLink::Params deep;
    deep.rxProcCycles = 30; // hopelessly deep pipeline
    TrainRig rig(deep);
    LinkTrainer::Params p;
    p.maxFrtl = nanoseconds(100);
    auto r = rig.train(p);
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.failReason.find("FRTL"), std::string::npos);
    EXPECT_GT(r.frtl, p.maxFrtl);
}

TEST(Training, RetriesFlakyAlignment)
{
    TrainRig rig;
    LinkTrainer::Params p;
    p.lockProbability = 0.3;
    p.seed = 7;
    auto r = rig.train(p);
    EXPECT_TRUE(r.success);
    // Three alignment phases with p=0.3 should need several attempts.
    EXPECT_GT(r.attempts, 3u);
}

TEST(Training, GivesUpWhenLinkNeverLocks)
{
    TrainRig rig;
    LinkTrainer::Params p;
    p.lockProbability = 0.0;
    p.maxAttemptsPerPhase = 5;
    p.responseTimeout = microseconds(1);
    auto r = rig.train(p);
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.failReason.find("alignment"), std::string::npos);
}

TEST(Training, LinkCarriesTrafficAfterTraining)
{
    TrainRig rig;
    auto r = rig.train({});
    ASSERT_TRUE(r.success);

    int delivered = 0;
    rig.buffer.onFrame = [&](const DownFrame &) { ++delivered; };
    DownFrame f;
    f.type = FrameType::command;
    f.cmdType = CmdType::read128;
    rig.host.sendFrame(f);
    rig.eq.run(milliseconds(11));
    EXPECT_EQ(delivered, 1);
}

} // namespace
