/** @file Access-processor execution tests: scalar ops, maps. */

#include <gtest/gtest.h>

#include "accel/complex.hh"
#include "accel/driver.hh"
#include "cpu/system.hh"

using namespace contutto;
using namespace contutto::accel;
using namespace contutto::cpu;

namespace
{

struct ApRig
{
    Power8System sys;
    std::unique_ptr<AccelComplex> complex;

    ApRig() : sys(makeParams())
    {
        bool trained = sys.train();
        ct_assert(trained);
        complex = std::make_unique<AccelComplex>(
            "accel", sys.eventq(), sys.fabricDomain(), &sys,
            AccelComplex::Params{}, *sys.card(), 2ull * GiB);
    }

    static Power8System::Params
    makeParams()
    {
        Power8System::Params p;
        p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
                   DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
        return p;
    }

    /** Stage a program and run it with the given control block. */
    ControlBlock
    run(const std::string &source, ControlBlock cb)
    {
        Program prog = assemble(source);
        auto image = prog.encode();
        const Addr prog_addr = 64 * MiB;
        sys.functionalWrite(prog_addr, image.size(), image.data());
        cb.programAddr = prog_addr;
        cb.programBytes = image.size();
        if (cb.opcode == AccelOp::idle)
            cb.opcode = AccelOp::minMaxScan; // any unit works

        bool done = false;
        ControlBlock result;
        complex->accessProcessor().launch(
            cb, complex->fftUnit(), [&](const ControlBlock &r) {
                result = r;
                done = true;
            });
        while (!done && sys.eventq().step()) {
        }
        return result;
    }
};

TEST(AccessProcessor, ScalarLoadComputeStore)
{
    ApRig rig;
    // mem[0x1000] = 40, mem[0x1008] = 2; program stores the sum at
    // the destination address (r2).
    std::uint64_t a = 40, b = 2;
    rig.sys.functionalWrite(0x1000, 8,
                            reinterpret_cast<std::uint8_t *>(&a));
    rig.sys.functionalWrite(0x1008, 8,
                            reinterpret_cast<std::uint8_t *>(&b));

    ControlBlock cb;
    cb.src = 0x1000;
    cb.dst = 0x2000;
    cb.lengthBytes = 128;
    cb.threads = 1;
    auto result = rig.run(R"(
        ldScalar r5, r1, 0
        ldScalar r6, r1, 8
        add r7, r5, r6
        stScalar r2, r7, 0
        halt
    )", cb);
    EXPECT_EQ(result.status, AccelStatus::done);

    std::uint64_t sum = 0;
    rig.sys.functionalRead(0x2000, 8,
                           reinterpret_cast<std::uint8_t *>(&sum));
    EXPECT_EQ(sum, 42u);
}

TEST(AccessProcessor, ScalarLoopComputesFibonacci)
{
    ApRig rig;
    ControlBlock cb;
    cb.dst = 0x3000;
    cb.lengthBytes = 128;
    cb.threads = 1;
    // fib(12) = 144 with a register loop, stored via stScalar.
    auto result = rig.run(R"(
        li r5, 0          ; fib(0)
        li r6, 1          ; fib(1)
        li r7, 12         ; n
loop:   beq r7, r14, end  ; r14 is always zero
        add r8, r5, r6
        add r5, r6, r14
        add r6, r8, r14
        addi r7, r7, -1
        jmp loop
end:    stScalar r2, r5, 0
        halt
    )", cb);
    EXPECT_EQ(result.status, AccelStatus::done);

    std::uint64_t fib = 0;
    rig.sys.functionalRead(0x3000, 8,
                           reinterpret_cast<std::uint8_t *>(&fib));
    EXPECT_EQ(fib, 144u);
}

TEST(AccessProcessor, SetMapRedirectsLineStreams)
{
    ApRig rig;
    // Stage data at logical address 0 under the port0-linear map.
    std::vector<std::uint8_t> blob(256);
    for (std::size_t i = 0; i < blob.size(); ++i)
        blob[i] = std::uint8_t(i + 1);
    AccelDriver driver(rig.sys, *rig.complex,
                       AccelDriver::Params{128 * MiB,
                                           microseconds(1)});
    driver.stageMapped(MapMode::port0Linear, 0, blob.size(),
                       blob.data());

    // Program: select src map port0Linear (value 1) via setMap,
    // stream 2 lines in, write them out under the (default)
    // interleaved map at dst.
    ControlBlock cb;
    cb.src = 0;
    cb.dst = 8 * MiB;
    cb.lengthBytes = 256;
    cb.threads = 1;
    Program prog = assemble(R"(
        li r10, 1         ; srcMap = port0Linear, dstMap = interleaved
        setMap r10
        add r8, r1, r14
        add r9, r2, r14
        lineRead r8
        addi r8, r8, 128
        lineRead r8
        lineWrite r9
        addi r9, r9, 128
        lineWrite r9
        halt
    )");
    auto image = prog.encode();
    rig.sys.functionalWrite(64 * MiB, image.size(), image.data());
    cb.programAddr = 64 * MiB;
    cb.programBytes = image.size();

    MemcpyUnit unit("copyUnit", rig.sys.eventq(),
                    rig.sys.fabricDomain(), &rig.sys);
    bool done = false;
    rig.complex->accessProcessor().launch(
        cb, unit, [&](const ControlBlock &) { done = true; });
    while (!done && rig.sys.eventq().step()) {
    }
    ASSERT_TRUE(done);

    // The interleaved destination must now hold the port0-linear
    // source bytes.
    std::vector<std::uint8_t> out(blob.size());
    rig.sys.functionalRead(8 * MiB, out.size(), out.data());
    EXPECT_EQ(out, blob);
}

} // namespace
