/** @file Ternary CAM tests: matching semantics and the MMIO path. */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/tcam.hh"
#include "cpu/system.hh"

using namespace contutto;
using namespace contutto::accel;
using namespace contutto::cpu;

namespace
{

TEST(Tcam, ExactMatch)
{
    Tcam cam(16);
    cam.write(3, {true, 0xABCD, ~0ull, 42});
    auto hit = cam.lookup(0xABCD);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->index, 3u);
    EXPECT_EQ(hit->result, 42u);
    EXPECT_FALSE(cam.lookup(0xABCE).has_value());
}

TEST(Tcam, TernaryDontCareBits)
{
    Tcam cam(16);
    // Match any key whose top 8 bits of the low 16 are 0x12.
    cam.write(0, {true, 0x1200, 0xFF00, 7});
    EXPECT_TRUE(cam.lookup(0x1200).has_value());
    EXPECT_TRUE(cam.lookup(0x12FF).has_value());
    EXPECT_TRUE(cam.lookup(0x1234).has_value());
    EXPECT_FALSE(cam.lookup(0x1300).has_value());
}

TEST(Tcam, LowestIndexWins)
{
    Tcam cam(16);
    // Longest-prefix-match style: more specific entry at lower
    // index.
    cam.write(0, {true, 0x1234, 0xFFFF, 100}); // /16 exact
    cam.write(1, {true, 0x1200, 0xFF00, 200}); // /8 prefix
    cam.write(2, {true, 0x0000, 0x0000, 300}); // default route
    EXPECT_EQ(cam.lookup(0x1234)->result, 100u);
    EXPECT_EQ(cam.lookup(0x12AA)->result, 200u);
    EXPECT_EQ(cam.lookup(0x9999)->result, 300u);
}

TEST(Tcam, InvalidateRemovesEntry)
{
    Tcam cam(4);
    cam.write(0, {true, 5, ~0ull, 1});
    ASSERT_TRUE(cam.lookup(5).has_value());
    cam.invalidate(0);
    EXPECT_FALSE(cam.lookup(5).has_value());
}

TEST(Tcam, RandomizedAgainstLinearReference)
{
    Tcam cam(64);
    std::vector<Tcam::Entry> ref(64);
    Rng rng(99);
    for (int round = 0; round < 500; ++round) {
        if (rng.chance(0.3)) {
            unsigned idx = unsigned(rng.below(64));
            Tcam::Entry e;
            e.valid = rng.chance(0.9);
            e.value = rng.next() & 0xFFFF;
            e.mask = rng.next() & 0xFFFF;
            e.result = rng.next();
            cam.write(idx, e);
            ref[idx] = e;
        }
        std::uint64_t key = rng.next() & 0xFFFF;
        auto hit = cam.lookup(key);
        // Reference: first valid masked match.
        std::optional<unsigned> expect;
        for (unsigned i = 0; i < 64 && !expect; ++i)
            if (ref[i].valid
                && ((key ^ ref[i].value) & ref[i].mask) == 0)
                expect = i;
        ASSERT_EQ(hit.has_value(), expect.has_value());
        if (hit)
            ASSERT_EQ(hit->index, *expect);
    }
}

TEST(TcamMmio, HostDrivenRouteLookup)
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    Power8System sys(p);
    ASSERT_TRUE(sys.train());

    TcamMmio tcam("tcam", sys.eventq(), sys.fabricDomain(), &sys,
                  {}, sys.card()->avalon(), 3ull * GiB);

    auto command = [&](std::uint64_t op, std::uint64_t index,
                       std::uint64_t value, std::uint64_t mask,
                       std::uint64_t result, std::uint64_t key) {
        dmi::CacheLine line{};
        std::memcpy(line.data() + 0, &op, 8);
        std::memcpy(line.data() + 8, &index, 8);
        std::memcpy(line.data() + 16, &value, 8);
        std::memcpy(line.data() + 24, &mask, 8);
        std::memcpy(line.data() + 32, &result, 8);
        std::memcpy(line.data() + 40, &key, 8);
        sys.port().write(tcam.mmioBase(), line, nullptr);
        EXPECT_TRUE(sys.runUntilIdle());
    };

    // Program a little routing table through the memory channel.
    command(TcamMmio::opWriteEntry, 0, 0x0A000000, 0xFFFFFF00, 11, 0);
    command(TcamMmio::opWriteEntry, 1, 0x0A000000, 0xFF000000, 22, 0);
    command(TcamMmio::opWriteEntry, 2, 0, 0, 33, 0); // default

    auto lookup = [&](std::uint64_t key) {
        command(TcamMmio::opLookup, 0, 0, 0, 0, key);
        std::uint64_t result = 0;
        sys.port().read(tcam.mmioBase() + 128,
                        [&](const HostOpResult &r) {
                            std::uint64_t valid;
                            std::memcpy(&valid, r.data.data(), 8);
                            EXPECT_EQ(valid, 1u);
                            std::memcpy(&result,
                                        r.data.data() + 16, 8);
                        });
        EXPECT_TRUE(sys.runUntilIdle());
        return result;
    };

    EXPECT_EQ(lookup(0x0A000042), 11u); // /24 match
    EXPECT_EQ(lookup(0x0A123456), 22u); // /8 match
    EXPECT_EQ(lookup(0xC0A80001), 33u); // default route
    EXPECT_EQ(tcam.tcamStats().lookups.value(), 3.0);
    EXPECT_EQ(tcam.tcamStats().hits.value(), 3.0);
}

} // namespace
