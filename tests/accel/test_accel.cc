/** @file Near-memory acceleration end-to-end tests. */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/driver.hh"

using namespace contutto;
using namespace contutto::accel;
using namespace contutto::cpu;

namespace
{

struct AccelRig
{
    Power8System sys;
    std::unique_ptr<AccelComplex> complexPtr;
    std::unique_ptr<AccelDriver> driverPtr;
    AccelComplex &complex;
    AccelDriver &driver;

    AccelRig()
        : sys(makeParams()), complexPtr(makeComplex(sys)),
          driverPtr(std::make_unique<AccelDriver>(
              sys, *complexPtr,
              AccelDriver::Params{256 * MiB, microseconds(1)})),
          complex(*complexPtr), driver(*driverPtr)
    {}

    static std::unique_ptr<AccelComplex>
    makeComplex(Power8System &sys)
    {
        bool trained = sys.train();
        ct_assert(trained);
        return std::make_unique<AccelComplex>(
            "accel", sys.eventq(), sys.fabricDomain(), &sys,
            AccelComplex::Params{}, *sys.card(), 2ull * GiB);
    }

    static Power8System::Params
    makeParams()
    {
        Power8System::Params p;
        p.dimms = {DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}},
                   DimmSpec{mem::MemTech::dram, 512 * MiB, {}, {}}};
        return p;
    }

    ControlBlock
    run(std::function<void(AccelDriver::Callback)> launch,
        double *seconds = nullptr)
    {
        bool done = false;
        ControlBlock result;
        Tick t0 = sys.eventq().curTick();
        launch([&](const ControlBlock &cb) {
            result = cb;
            done = true;
        });
        while (!done && sys.eventq().step()) {
        }
        EXPECT_TRUE(done);
        if (seconds)
            *seconds = ticksToSeconds(sys.eventq().curTick() - t0);
        return result;
    }
};

TEST(Accel, MemcpyMovesDataCorrectly)
{
    AccelRig rig;
    std::vector<std::uint8_t> blob(64 * 1024);
    Rng rng(5);
    for (auto &b : blob)
        b = std::uint8_t(rng.next());
    rig.sys.functionalWrite(0, blob.size(), blob.data());

    auto cb = rig.run([&](AccelDriver::Callback done) {
        rig.driver.memcpyAsync(0, 16 * MiB, blob.size(), done);
    });
    EXPECT_EQ(cb.status, AccelStatus::done);

    std::vector<std::uint8_t> out(blob.size());
    rig.sys.functionalRead(16 * MiB, out.size(), out.data());
    EXPECT_EQ(out, blob);
}

TEST(Accel, MemcpyThroughputIsTable5Class)
{
    AccelRig rig;
    const std::uint64_t bytes = 8 * MiB;
    double secs = 0;
    rig.run(
        [&](AccelDriver::Callback done) {
            rig.driver.memcpyAsync(0, 64 * MiB, bytes, done);
        },
        &secs);
    double gbps = double(bytes) / secs / 1e9;
    // Paper Table 5: 6 GB/s with two DIMM ports.
    EXPECT_GT(gbps, 5.0);
    EXPECT_LT(gbps, 8.0);
}

TEST(Accel, MinMaxFindsExtremes)
{
    AccelRig rig;
    const unsigned n = 32 * 1024; // int32 values
    std::vector<std::int32_t> values(n);
    Rng rng(6);
    for (auto &v : values)
        v = std::int32_t(rng.next());
    values[n / 3] = std::numeric_limits<std::int32_t>::min() + 5;
    values[2 * n / 3] = std::numeric_limits<std::int32_t>::max() - 5;
    rig.sys.functionalWrite(
        0, values.size() * 4,
        reinterpret_cast<const std::uint8_t *>(values.data()));

    auto cb = rig.run([&](AccelDriver::Callback done) {
        rig.driver.minMaxAsync(0, values.size() * 4, done);
    });
    EXPECT_EQ(cb.status, AccelStatus::done);
    EXPECT_EQ(cb.resultMin,
              std::numeric_limits<std::int32_t>::min() + 5);
    EXPECT_EQ(cb.resultMax,
              std::numeric_limits<std::int32_t>::max() - 5);
}

TEST(Accel, MinMaxThroughputIsTable5Class)
{
    AccelRig rig;
    const std::uint64_t bytes = 8 * MiB;
    double secs = 0;
    rig.run(
        [&](AccelDriver::Callback done) {
            rig.driver.minMaxAsync(0, bytes, done);
        },
        &secs);
    double gbps = double(bytes) / secs / 1e9;
    // Paper Table 5: 10.5 GB/s (read-only stream at DIMM rate).
    EXPECT_GT(gbps, 9.0);
    EXPECT_LT(gbps, 11.5);
}

TEST(Accel, FftUnitComputesCorrectTransform)
{
    // Impulse at t=0 -> flat spectrum of ones.
    std::vector<std::complex<float>> data(1024, {0.0f, 0.0f});
    data[0] = {1.0f, 0.0f};
    FftUnit::fft(data);
    for (int k = 0; k < 1024; k += 111) {
        EXPECT_NEAR(data[k].real(), 1.0f, 1e-4);
        EXPECT_NEAR(data[k].imag(), 0.0f, 1e-4);
    }

    // Single complex tone at bin 7 -> delta at k=7 of height N.
    std::vector<std::complex<float>> tone(1024);
    for (int t = 0; t < 1024; ++t) {
        double ph = 2.0 * 3.14159265358979 * 7 * t / 1024.0;
        tone[t] = {float(std::cos(ph)), float(std::sin(ph))};
    }
    FftUnit::fft(tone);
    EXPECT_NEAR(std::abs(tone[7]), 1024.0, 1.0);
    EXPECT_LT(std::abs(tone[8]), 1.0);
    EXPECT_LT(std::abs(tone[500]), 1.0);
}

TEST(Accel, FftOffloadEndToEnd)
{
    AccelRig rig;
    const unsigned batches = 4;
    const std::uint64_t bytes = batches * 1024 * 8;

    // Stage a tone at bin 3 in every batch, in port0-linear layout.
    std::vector<std::complex<float>> samples(batches * 1024);
    for (unsigned b = 0; b < batches; ++b)
        for (int t = 0; t < 1024; ++t) {
            double ph = 2.0 * 3.14159265358979 * 3 * t / 1024.0;
            samples[b * 1024 + t] = {float(std::cos(ph)),
                                     float(std::sin(ph))};
        }
    rig.driver.stageMapped(
        MapMode::port0Linear, 0, bytes,
        reinterpret_cast<const std::uint8_t *>(samples.data()));

    double secs = 0;
    auto cb = rig.run(
        [&](AccelDriver::Callback done) {
            rig.driver.fftAsync(0, 0, bytes, done);
        },
        &secs);
    EXPECT_EQ(cb.status, AccelStatus::done);

    // Read the port1-linear output back and verify the spectrum.
    std::vector<std::complex<float>> out(batches * 1024);
    rig.driver.fetchMapped(
        MapMode::port1Linear, 0, bytes,
        reinterpret_cast<std::uint8_t *>(out.data()));
    for (unsigned b = 0; b < batches; ++b) {
        EXPECT_NEAR(std::abs(out[b * 1024 + 3]), 1024.0, 1.0)
            << "batch " << b;
        EXPECT_LT(std::abs(out[b * 1024 + 4]), 1.0);
    }
}

TEST(Accel, FftThroughputIsTable5Class)
{
    AccelRig rig;
    const std::uint64_t bytes = 4 * MiB; // 512 batches
    double secs = 0;
    rig.run(
        [&](AccelDriver::Callback done) {
            rig.driver.fftAsync(0, 0, bytes, done);
        },
        &secs);
    double gsamples = double(bytes) / 8.0 / secs / 1e9;
    // Paper Table 5: 1.3 Gsamples/s.
    EXPECT_GT(gsamples, 1.0);
    EXPECT_LT(gsamples, 1.5);
}

TEST(Accel, DoorbellWhileBusyReportsError)
{
    AccelRig rig;
    LogControl::warnings() = false;
    bool first_done = false;
    rig.driver.memcpyAsync(0, 64 * MiB, 4 * MiB,
                           [&](const ControlBlock &) {
                               first_done = true;
                           });
    // Run a little so the first task is in flight, then ring again.
    rig.sys.runFor(microseconds(50));
    ControlBlock second;
    bool second_done = false;
    rig.driver.minMaxAsync(0, 1 * MiB, [&](const ControlBlock &cb) {
        second = cb;
        second_done = true;
    });
    while (!(first_done && second_done) && rig.sys.eventq().step()) {
    }
    LogControl::warnings() = true;
    EXPECT_TRUE(second_done);
    EXPECT_EQ(second.status, AccelStatus::error);
}

TEST(Accel, AccessProcessorStatsTrackWork)
{
    AccelRig rig;
    rig.run([&](AccelDriver::Callback done) {
        rig.driver.memcpyAsync(0, 64 * MiB, 1 * MiB, done);
    });
    const auto &s = rig.complex.accessProcessor().apStats();
    EXPECT_EQ(s.linesRead.value(), 8192.0);
    EXPECT_EQ(s.linesWritten.value(), 8192.0);
    EXPECT_GT(s.instructions.value(), 8192.0 * 2);
    EXPECT_EQ(s.programsLoaded.value(), 1.0);
}

} // namespace
