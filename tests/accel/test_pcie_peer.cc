/** @file Card-to-card PCIe peer transfer tests. */

#include <gtest/gtest.h>

#include "accel/pcie_peer.hh"
#include "cpu/multi_slot.hh"

using namespace contutto;
using namespace contutto::accel;
using namespace contutto::cpu;

namespace
{

/** Two ConTutto cards in the paper's 2-card configuration. */
struct TwoCardRig
{
    MultiSlotSystem socket;
    fpga::ContuttoCard *cardA;
    fpga::ContuttoCard *cardB;
    PciePeerLink link;

    TwoCardRig()
        : socket(makeParams()),
          cardA(socket.channelInSlot(0)->card()),
          cardB(socket.channelInSlot(2)->card()),
          link("pcie", socket.eventq(),
               socket.channelInSlot(0)->card()->clockDomain(),
               &socket, {}, *cardA, *cardB)
    {}

    static MultiSlotSystem::Params
    makeParams()
    {
        MultiSlotSystem::Params p;
        ChannelParams ch;
        ch.dimms = {DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}},
                    DimmSpec{mem::MemTech::dram, 128 * MiB, {}, {}}};
        p.slots[0] = SlotSpec{SlotKind::contutto, ch};
        p.slots[1] = SlotSpec{SlotKind::empty, {}};
        p.slots[2] = SlotSpec{SlotKind::contutto, ch};
        p.slots[3] = SlotSpec{SlotKind::empty, {}};
        for (unsigned s = 4; s < 8; ++s)
            p.slots[s] = SlotSpec{SlotKind::empty, {}};
        return p;
    }

    bool
    runTransfer(unsigned src_card, Addr src, Addr dst,
                std::uint64_t bytes)
    {
        bool done = false;
        link.transfer(src_card, src, dst, bytes,
                      [&] { done = true; });
        while (!done && socket.eventq().step()) {
        }
        return done;
    }
};

TEST(PciePeer, MovesDataBetweenCards)
{
    TwoCardRig rig;
    ASSERT_TRUE(rig.socket.trainAll());

    std::vector<std::uint8_t> blob(32 * 1024);
    Rng rng(7);
    for (auto &b : blob)
        b = std::uint8_t(rng.next());
    rig.socket.channelInSlot(0)->functionalWrite(0x4000, blob.size(),
                                                 blob.data());

    ASSERT_TRUE(rig.runTransfer(0, 0x4000, 0x9000, blob.size()));

    std::vector<std::uint8_t> out(blob.size());
    rig.socket.channelInSlot(2)->functionalRead(0x9000, out.size(),
                                                out.data());
    EXPECT_EQ(out, blob);
    EXPECT_EQ(rig.link.peerStats().transfers.value(), 1.0);
}

TEST(PciePeer, ReverseDirectionWorks)
{
    TwoCardRig rig;
    ASSERT_TRUE(rig.socket.trainAll());
    std::vector<std::uint8_t> blob(4096, 0xEE);
    rig.socket.channelInSlot(2)->functionalWrite(0, blob.size(),
                                                 blob.data());
    ASSERT_TRUE(rig.runTransfer(1, 0, 0x2000, blob.size()));
    std::vector<std::uint8_t> out(blob.size());
    rig.socket.channelInSlot(0)->functionalRead(0x2000, out.size(),
                                                out.data());
    EXPECT_EQ(out, blob);
}

TEST(PciePeer, DoesNotBurdenTheMemoryBus)
{
    // The paper's point: the transfer must not produce DMI frames.
    TwoCardRig rig;
    ASSERT_TRUE(rig.socket.trainAll());

    auto frames_before =
        rig.socket.channelInSlot(0)->upChannel().channelStats()
            .framesCarried.value()
        + rig.socket.channelInSlot(2)->upChannel().channelStats()
              .framesCarried.value();

    ASSERT_TRUE(rig.runTransfer(0, 0, 0x8000, 64 * 1024));

    auto frames_after =
        rig.socket.channelInSlot(0)->upChannel().channelStats()
            .framesCarried.value()
        + rig.socket.channelInSlot(2)->upChannel().channelStats()
              .framesCarried.value();
    EXPECT_EQ(frames_after, frames_before);
}

TEST(PciePeer, ThroughputBoundByPcieBandwidth)
{
    TwoCardRig rig;
    ASSERT_TRUE(rig.socket.trainAll());
    const std::uint64_t bytes = 4 * MiB;
    Tick t0 = rig.socket.eventq().curTick();
    ASSERT_TRUE(rig.runTransfer(0, 0, 0, bytes));
    double secs =
        ticksToSeconds(rig.socket.eventq().curTick() - t0);
    double gbps = double(bytes) / secs / 1e9;
    // Gen3 x8 class: most of 6.4 GB/s, never more.
    EXPECT_GT(gbps, 4.5);
    EXPECT_LT(gbps, 6.5);
}

/** The two-card rig on a sharded socket, link split across shards. */
struct ShardedTwoCardRig
{
    MultiSlotSystem socket;
    fpga::ContuttoCard *cardA;
    fpga::ContuttoCard *cardB;
    PciePeerLink link;

    ShardedTwoCardRig(unsigned shards, bool parallel)
        : socket(makeParams(shards, parallel)),
          cardA(socket.channelInSlot(0)->card()),
          cardB(socket.channelInSlot(2)->card()),
          link("pcie", socket.channelQueue(0),
               cardA->clockDomain(), &socket, {}, *cardA, *cardB)
    {
        link.bindShards(socket.executor(),
                        socket.shardOfChannel(0),
                        socket.shardOfChannel(1));
    }

    static MultiSlotSystem::Params
    makeParams(unsigned shards, bool parallel)
    {
        MultiSlotSystem::Params p = TwoCardRig::makeParams();
        p.shards = shards;
        p.parallelExec = parallel;
        return p;
    }

    /** Transfer to completion; returns the completion tick as seen
     *  by the done callback on the engine's shard. */
    Tick
    runTransfer(unsigned src_card, Addr src, Addr dst,
                std::uint64_t bytes)
    {
        bool done = false;
        Tick done_at = 0;
        const unsigned eng =
            socket.shardOfChannel(src_card == 0 ? 0 : 1);
        link.transfer(src_card, src, dst, bytes, [&] {
            done = true;
            done_at = socket.executor()->queue(eng).curTick();
        });
        EXPECT_TRUE(socket.executor()->runUntilIdle(
            [&done] { return done; }, milliseconds(100)));
        return done_at;
    }
};

TEST(PciePeerSharded, SplitLinkMovesDataAndStaysDeterministic)
{
    std::vector<std::uint8_t> blob(32 * 1024);
    Rng rng(7);
    for (auto &b : blob)
        b = std::uint8_t(rng.next());

    // The same transfer on the serial fallback and on 2 worker
    // threads must complete at the same tick with the same executor
    // message trace — the link's cross-shard hops are part of the
    // deterministic protocol, not a source of timing noise.
    struct Run
    {
        Tick doneAt;
        std::uint64_t messages;
        std::vector<std::uint8_t> out;
        double transfers;
    };
    auto once = [&](bool parallel) {
        ShardedTwoCardRig rig(2, parallel);
        EXPECT_TRUE(rig.socket.trainAll());
        rig.socket.channelInSlot(0)->functionalWrite(
            0x4000, blob.size(), blob.data());
        Run r;
        r.doneAt = rig.runTransfer(0, 0x4000, 0x9000, blob.size());
        r.messages = rig.socket.executor()->counters().messages;
        r.out.resize(blob.size());
        rig.socket.channelInSlot(2)->functionalRead(
            0x9000, r.out.size(), r.out.data());
        r.transfers = rig.link.peerStats().transfers.value();
        return r;
    };

    const Run serial = once(false);
    const Run parallel = once(true);

    EXPECT_EQ(serial.out, blob);
    EXPECT_EQ(parallel.out, blob);
    EXPECT_EQ(serial.transfers, 1.0);
    EXPECT_EQ(parallel.transfers, 1.0);
    EXPECT_GT(serial.doneAt, Tick(0));
    EXPECT_EQ(serial.doneAt, parallel.doneAt);
    // Lines crossed the link as executor messages, identically.
    EXPECT_GT(serial.messages, 0u);
    EXPECT_EQ(serial.messages, parallel.messages);
}

TEST(PciePeerSharded, ReverseDirectionCrossesBackToItsShard)
{
    ShardedTwoCardRig rig(2, true);
    ASSERT_TRUE(rig.socket.trainAll());
    std::vector<std::uint8_t> blob(4096, 0xEE);
    rig.socket.channelInSlot(2)->functionalWrite(0, blob.size(),
                                                 blob.data());
    Tick done_at = rig.runTransfer(1, 0, 0x2000, blob.size());
    EXPECT_GT(done_at, Tick(0));
    std::vector<std::uint8_t> out(blob.size());
    rig.socket.channelInSlot(0)->functionalRead(0x2000, out.size(),
                                                out.data());
    EXPECT_EQ(out, blob);
}

TEST(PciePeer, CardMemoryStillServesHostDuringTransfer)
{
    TwoCardRig rig;
    ASSERT_TRUE(rig.socket.trainAll());

    bool transfer_done = false;
    rig.link.transfer(0, 0, 0x100000, 1 * MiB,
                      [&] { transfer_done = true; });
    // Meanwhile the host keeps using card A over DMI.
    int host_reads = 0;
    auto &port = rig.socket.channelInSlot(0)->port();
    std::function<void()> chase = [&] {
        if (host_reads >= 50)
            return;
        port.read(Addr(host_reads) * 4096,
                  [&](const HostOpResult &) {
                      ++host_reads;
                      chase();
                  });
    };
    chase();
    while ((!transfer_done || host_reads < 50)
           && rig.socket.eventq().step()) {
    }
    EXPECT_TRUE(transfer_done);
    EXPECT_EQ(host_reads, 50);
}

} // namespace
