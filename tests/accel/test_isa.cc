/** @file Access-processor ISA and assembler tests. */

#include <gtest/gtest.h>

#include "accel/isa.hh"
#include "sim/logging.hh"

using namespace contutto;
using namespace contutto::accel;

namespace
{

TEST(Assembler, BasicProgram)
{
    auto prog = assemble(R"(
        li r1, 0x100
        addi r2, r1, 28
        halt
    )");
    ASSERT_EQ(prog.code.size(), 3u);
    EXPECT_EQ(prog.code[0].op, Op::li);
    EXPECT_EQ(prog.code[0].rd, 1);
    EXPECT_EQ(prog.code[0].imm, 0x100);
    EXPECT_EQ(prog.code[1].op, Op::addi);
    EXPECT_EQ(prog.code[1].imm, 28);
    EXPECT_EQ(prog.code[2].op, Op::halt);
}

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    auto prog = assemble(R"(
start:  addi r1, r1, 1
        blt r1, r2, start
        jmp end
        nop
end:    halt
    )");
    ASSERT_EQ(prog.code.size(), 5u);
    EXPECT_EQ(prog.code[1].imm, 0); // back to start
    EXPECT_EQ(prog.code[2].imm, 4); // forward to end
}

TEST(Assembler, CommentsAndCommasIgnored)
{
    auto prog = assemble(R"(
        add r1, r2, r3   ; sum
        ; a full-line comment
        halt
    )");
    ASSERT_EQ(prog.code.size(), 2u);
    EXPECT_EQ(prog.code[0].op, Op::add);
    EXPECT_EQ(prog.code[0].rb, 3);
}

TEST(Assembler, ErrorsAreFatal)
{
    EXPECT_THROW(assemble("bogus r1, r2"), FatalError);
    EXPECT_THROW(assemble("jmp nowhere"), FatalError);
    EXPECT_THROW(assemble("li r99, 5"), FatalError);
    EXPECT_THROW(assemble("dup: nop\ndup: nop"), FatalError);
    EXPECT_THROW(assemble("add r1, r2"), FatalError); // arity
}

TEST(Program, EncodeDecodeRoundTrip)
{
    auto prog = assemble(R"(
        li r5, -12345
        shl r6, r5, 7
loop:   lineRead r6
        bge r5, r3, loop
        halt
    )");
    auto image = prog.encode();
    EXPECT_EQ(image.size(), prog.code.size() * 16);
    auto back = Program::decode(image);
    ASSERT_EQ(back.code.size(), prog.code.size());
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        EXPECT_EQ(back.code[i].op, prog.code[i].op);
        EXPECT_EQ(back.code[i].rd, prog.code[i].rd);
        EXPECT_EQ(back.code[i].ra, prog.code[i].ra);
        EXPECT_EQ(back.code[i].imm, prog.code[i].imm);
    }
}

TEST(Assembler, DriverProgramsAssemble)
{
    // The shipped kernels must stay valid.
    EXPECT_NO_THROW(assemble(R"(
        add r5, r0, r14
        shl r6, r4, 7
loop:   bge r5, r3, end
        lineRead r8
        add r5, r5, r4
        jmp loop
end:    halt
    )"));
}

} // namespace
