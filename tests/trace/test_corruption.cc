/**
 * @file
 * Decoder corruption fuzz: zero-length files, truncation at every
 * prefix length, every single-bit flip of every byte, and crafted
 * header/footer tampering with recomputed checksums must all be
 * rejected with a typed trace::Error — the decoder never crashes
 * and never surfaces garbage records.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

using namespace contutto;
using namespace contutto::trace;

namespace
{

namespace fs = std::filesystem;

std::string
tmpPath(const std::string &leaf)
{
    return ::testing::TempDir() + "trace_corrupt_" + leaf;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good());
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    return bytes;
}

void
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             std::streamsize(bytes.size()));
    ASSERT_TRUE(os.good());
}

/** Recompute the footer checksum so tampering upstream of it stays
 *  checksum-consistent — isolating the non-checksum validations. */
void
resealChecksum(std::vector<std::uint8_t> &bytes)
{
    ASSERT_GE(bytes.size(), headerBytes + footerBytes);
    std::uint64_t sum =
        ckpt::fnv1a(bytes.data(), bytes.size() - 8);
    std::memcpy(bytes.data() + bytes.size() - 8, &sum, 8);
}

/** A small valid trace to corrupt; created once per suite run. */
std::vector<std::uint8_t>
makeValidTrace(const std::string &path, int records = 5)
{
    TraceWriter writer(path);
    for (int i = 0; i < records; ++i) {
        Record rec;
        rec.tickDelta = 100 + i;
        rec.addr = 0x1000 + 128 * i;
        rec.op = Op(i % numOps);
        rec.threadId = std::uint16_t(i);
        writer.append(rec);
    }
    writer.close();
    return readFile(path);
}

/** Expect MappedTrace + full decode to throw trace::Error (any
 *  code); anything else — success or another exception — fails. */
void
expectRejected(const std::string &path, const std::string &what)
{
    try {
        MappedTrace bin(path);
        bin.validateAll();
        FAIL() << what << ": accepted";
    } catch (const Error &) {
        // Typed rejection — exactly what we want.
    } catch (...) {
        FAIL() << what << ": escaped with a non-trace exception";
    }
}

ErrorCode
rejectionCode(const std::string &path)
{
    try {
        MappedTrace bin(path);
        bin.validateAll();
    } catch (const Error &e) {
        return e.code();
    }
    ADD_FAILURE() << path << " was accepted";
    return ErrorCode::ioError;
}

TEST(TraceCorruption, MissingFile)
{
    EXPECT_EQ(rejectionCode(tmpPath("does_not_exist.bin")),
              ErrorCode::ioError);
}

TEST(TraceCorruption, ZeroLengthFile)
{
    const std::string path = tmpPath("zero.bin");
    writeFile(path, {});
    EXPECT_EQ(rejectionCode(path), ErrorCode::tooShort);
    fs::remove(path);
}

TEST(TraceCorruption, TruncationAtEveryPrefixLength)
{
    const std::string base = tmpPath("trunc_base.bin");
    auto bytes = makeValidTrace(base);
    const std::string path = tmpPath("trunc.bin");
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() + len);
        writeFile(path, prefix);
        expectRejected(path, "truncated to " + std::to_string(len));
    }
    // The full file, untampered, still opens.
    writeFile(path, bytes);
    MappedTrace bin(path);
    EXPECT_EQ(bin.recordCount(), 5u);
    fs::remove(path);
    fs::remove(base);
}

TEST(TraceCorruption, EverySingleBitFlipIsRejected)
{
    const std::string base = tmpPath("flip_base.bin");
    auto bytes = makeValidTrace(base);
    const std::string path = tmpPath("flip.bin");
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            auto mutated = bytes;
            mutated[i] ^= std::uint8_t(1u << bit);
            writeFile(path, mutated);
            expectRejected(path, "bit " + std::to_string(bit)
                                     + " of byte "
                                     + std::to_string(i));
        }
    }
    fs::remove(path);
    fs::remove(base);
}

TEST(TraceCorruption, VersionMismatchWithValidChecksum)
{
    const std::string base = tmpPath("ver_base.bin");
    auto bytes = makeValidTrace(base);
    const std::string path = tmpPath("ver.bin");

    std::uint32_t version = formatVersion + 1;
    std::memcpy(bytes.data() + 8, &version, sizeof(version));
    resealChecksum(bytes);
    writeFile(path, bytes);
    EXPECT_EQ(rejectionCode(path), ErrorCode::badVersion);
    fs::remove(path);
    fs::remove(base);
}

TEST(TraceCorruption, BadMagicWithValidChecksum)
{
    const std::string base = tmpPath("magic_base.bin");
    auto bytes = makeValidTrace(base);
    const std::string path = tmpPath("magic.bin");
    bytes[0] = 'X';
    resealChecksum(bytes);
    writeFile(path, bytes);
    EXPECT_EQ(rejectionCode(path), ErrorCode::badMagic);
    fs::remove(path);
    fs::remove(base);
}

TEST(TraceCorruption, CountMismatchWithValidChecksum)
{
    const std::string base = tmpPath("count_base.bin");
    auto bytes = makeValidTrace(base);
    const std::string path = tmpPath("count.bin");

    std::uint64_t count = 0;
    std::memcpy(&count, bytes.data() + bytes.size() - 16, 8);
    ++count;
    std::memcpy(bytes.data() + bytes.size() - 16, &count, 8);
    resealChecksum(bytes);
    writeFile(path, bytes);
    EXPECT_EQ(rejectionCode(path), ErrorCode::badCount);
    fs::remove(path);
    fs::remove(base);
}

TEST(TraceCorruption, NonRecordMultipleLengthWithValidChecksum)
{
    const std::string base = tmpPath("len_base.bin");
    auto bytes = makeValidTrace(base);
    const std::string path = tmpPath("len.bin");

    // Inject 8 stray bytes between the records and the footer: the
    // byte length is no longer header + N*record + footer.
    std::vector<std::uint8_t> mutated(
        bytes.begin(), bytes.end() - footerBytes);
    mutated.insert(mutated.end(), 8, std::uint8_t(0xab));
    mutated.insert(mutated.end(), bytes.end() - footerBytes,
                   bytes.end());
    resealChecksum(mutated);
    writeFile(path, mutated);
    EXPECT_EQ(rejectionCode(path), ErrorCode::badLength);
    fs::remove(path);
    fs::remove(base);
}

TEST(TraceCorruption, BadRecordPayloadWithValidChecksum)
{
    const std::string base = tmpPath("rec_base.bin");
    auto bytes = makeValidTrace(base);
    const std::string path = tmpPath("rec.bin");

    // Corrupt record 2's op to an out-of-range value and reseal:
    // the file is structurally perfect, so MappedTrace opens, but
    // decoding the record must throw badRecord.
    bytes[headerBytes + 2 * recordBytes + 16] = numOps;
    resealChecksum(bytes);
    writeFile(path, bytes);

    MappedTrace bin(path); // structure is fine
    EXPECT_EQ(bin.recordCount(), 5u);
    EXPECT_EQ(bin.record(0).tickDelta, Tick(100)); // others decode
    try {
        bin.validateAll();
        FAIL() << "validateAll accepted a bad record payload";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::badRecord);
    }
    fs::remove(path);
    fs::remove(base);
}

TEST(TraceCorruption, ChecksumFieldItselfFlipped)
{
    const std::string base = tmpPath("sum_base.bin");
    auto bytes = makeValidTrace(base);
    const std::string path = tmpPath("sum.bin");
    bytes[bytes.size() - 1] ^= 0x80;
    writeFile(path, bytes);
    EXPECT_EQ(rejectionCode(path), ErrorCode::badChecksum);
    fs::remove(path);
    fs::remove(base);
}

} // namespace
