/**
 * @file
 * Capture-side tests: absolute-tick→delta encoding, the base shift,
 * sharded capture with a deterministic k-way merge (including under
 * the real sharded executor, for the TSan job), the seeded fake
 * generators, and the binary→MemTrace bridge.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "cpu/trace_replay.hh"
#include "sim/parallel.hh"
#include "trace/capture.hh"
#include "trace/generate.hh"
#include "trace/reader.hh"

using namespace contutto;
using namespace contutto::trace;

namespace
{

namespace fs = std::filesystem;

std::string
tmpPath(const std::string &leaf)
{
    return ::testing::TempDir() + "trace_capture_" + leaf;
}

TEST(CaptureSink, DeltaEncodesAbsoluteTicks)
{
    const std::string path = tmpPath("delta.bin");
    fs::remove(path);
    CaptureSink sink(path);
    sink.record(100, 0x1000, Op::read);
    sink.record(250, 0x2000, Op::write);
    sink.record(250, 0x3000, Op::depRead); // same-tick neighbour
    sink.record(400, 0x4000, Op::depWrite);
    sink.close();

    MappedTrace bin(path);
    ASSERT_EQ(bin.recordCount(), 4u);
    EXPECT_EQ(bin.record(0).tickDelta, Tick(100));
    EXPECT_EQ(bin.record(1).tickDelta, Tick(150));
    EXPECT_EQ(bin.record(2).tickDelta, Tick(0));
    EXPECT_EQ(bin.record(3).tickDelta, Tick(150));
    EXPECT_EQ(bin.validateAll(), Tick(400));
    fs::remove(path);
}

TEST(CaptureSink, BaseShiftRestoresOrigin)
{
    // The same access stream captured at ticks T and T+shift (with
    // setBase(shift)) must produce byte-identical files — the
    // property that makes a mid-run recapture match its input.
    const std::string a = tmpPath("origin.bin");
    const std::string b = tmpPath("shifted.bin");
    fs::remove(a);
    fs::remove(b);

    CaptureSink sa(a);
    sa.record(100, 0x1000, Op::read);
    sa.record(250, 0x2000, Op::write);
    sa.close();

    CaptureSink sb(b);
    sb.setBase(7777);
    sb.record(7777 + 100, 0x1000, Op::read);
    sb.record(7777 + 250, 0x2000, Op::write);
    sb.close();

    EXPECT_EQ(sa.checksum(), sb.checksum());
    fs::remove(a);
    fs::remove(b);
}

TEST(ShardCapture, MergeIsTimeOrderedAndCleansUp)
{
    const std::string path = tmpPath("sharded.bin");
    fs::remove(path);
    ShardCapture cap(path, 3);
    ASSERT_EQ(cap.shards(), 3u);

    // Interleaved in time across shards, including a tick collision
    // between shards 0 and 2 (ordered by threadId).
    cap.shard(0).record(100, 0xa0, Op::read);
    cap.shard(1).record(50, 0xb0, Op::write);
    cap.shard(2).record(100, 0xc0, Op::read);
    cap.shard(0).record(300, 0xa1, Op::read);
    cap.shard(1).record(200, 0xb1, Op::depRead);

    EXPECT_EQ(cap.finish(), 5u);
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_FALSE(
            fs::exists(path + ".shard" + std::to_string(i)));

    MappedTrace bin(path);
    ASSERT_EQ(bin.recordCount(), 5u);
    struct Expect
    {
        Tick tick;
        Addr addr;
        std::uint16_t thread;
    };
    const Expect want[] = {{50, 0xb0, 1},
                           {100, 0xa0, 0},
                           {100, 0xc0, 2},
                           {200, 0xb1, 1},
                           {300, 0xa1, 0}};
    Tick tick = 0;
    for (std::uint64_t i = 0; i < bin.recordCount(); ++i) {
        Record r = bin.record(i);
        tick += r.tickDelta;
        EXPECT_EQ(tick, want[i].tick) << "record " << i;
        EXPECT_EQ(r.addr, want[i].addr) << "record " << i;
        EXPECT_EQ(r.threadId, want[i].thread) << "record " << i;
    }
    fs::remove(path);
}

TEST(ShardCapture, ParallelCaptureMatchesSerial)
{
    // Same per-shard streams written serially and under the real
    // task farm: the merged file must be byte-identical (and the
    // parallel run gives TSan a real multi-writer workload).
    auto fill = [](ShardCapture &cap, unsigned shard) {
        for (int i = 0; i < 200; ++i)
            cap.shard(shard).record(
                Tick(10 * i + shard), 0x1000 * shard + 128 * i,
                i % 2 ? Op::write : Op::read);
    };

    const std::string serialPath = tmpPath("serial.bin");
    fs::remove(serialPath);
    ShardCapture serial(serialPath, 4);
    for (unsigned s = 0; s < 4; ++s)
        fill(serial, s);
    serial.finish();

    const std::string parPath = tmpPath("parallel.bin");
    fs::remove(parPath);
    ShardCapture par(parPath, 4);
    std::vector<std::function<void()>> tasks;
    for (unsigned s = 0; s < 4; ++s)
        tasks.push_back([&par, &fill, s] { fill(par, s); });
    sim::ShardedExecutor::runTasks(
        4, sim::ShardedExecutor::Mode::parallel, tasks);
    par.finish();

    MappedTrace a(serialPath), b(parPath);
    EXPECT_EQ(a.recordCount(), 800u);
    EXPECT_EQ(a.checksum(), b.checksum());
    fs::remove(serialPath);
    fs::remove(parPath);
}

TEST(TraceGenerate, DeterministicPerSpec)
{
    const std::string a = tmpPath("gen_a.bin");
    const std::string b = tmpPath("gen_b.bin");

    for (Shape shape : {Shape::uniform, Shape::qsort,
                        Shape::matmul}) {
        GenerateSpec spec;
        spec.shape = shape;
        spec.records = 2000;
        spec.seed = 42;
        spec.meanDelay = nanoseconds(50);

        GenerateResult ra = generate(spec, a);
        GenerateResult rb = generate(spec, b);
        EXPECT_EQ(ra.recordCount, spec.records)
            << shapeName(shape);
        EXPECT_EQ(ra.checksum, rb.checksum) << shapeName(shape);

        // A different seed moves the trace.
        spec.seed = 43;
        GenerateResult rc = generate(spec, b);
        EXPECT_NE(ra.checksum, rc.checksum) << shapeName(shape);

        // And the file validates end to end.
        MappedTrace bin(a);
        EXPECT_EQ(bin.recordCount(), spec.records);
        EXPECT_GT(bin.validateAll(), Tick(0));
    }

    // Different shapes with the same seed differ too.
    GenerateSpec qs;
    qs.shape = Shape::qsort;
    qs.records = 2000;
    qs.seed = 42;
    GenerateSpec mm = qs;
    mm.shape = Shape::matmul;
    EXPECT_NE(generate(qs, a).checksum, generate(mm, b).checksum);

    fs::remove(a);
    fs::remove(b);
}

TEST(TraceGenerate, UnknownShapeNameIsTyped)
{
    try {
        shapeFromName("fibonacci");
        FAIL() << "unknown shape accepted";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::badRecord);
    }
    EXPECT_EQ(shapeFromName("uniform"), Shape::uniform);
    EXPECT_EQ(shapeFromName("qsort"), Shape::qsort);
    EXPECT_EQ(shapeFromName("matmul"), Shape::matmul);
}

TEST(TraceGenerate, FromBinaryBridgesLosslessly)
{
    const std::string path = tmpPath("bridge.bin");
    GenerateSpec spec;
    spec.shape = Shape::qsort;
    spec.records = 1000;
    spec.seed = 9;
    spec.meanDelay = nanoseconds(20);
    generate(spec, path);

    MappedTrace bin(path);
    cpu::MemTrace mem = cpu::MemTrace::fromBinary(bin);
    ASSERT_EQ(mem.records.size(), bin.recordCount());
    for (std::uint64_t i = 0; i < bin.recordCount(); ++i) {
        Record r = bin.record(i);
        const cpu::TraceRecord &m = mem.records[i];
        EXPECT_EQ(m.delay, r.tickDelta);
        EXPECT_EQ(m.addr, r.addr & ~Addr(127));
        EXPECT_EQ(m.isWrite, opIsWrite(r.op));
        EXPECT_EQ(m.dependent, opIsDependent(r.op));
    }
    fs::remove(path);
}

} // namespace
