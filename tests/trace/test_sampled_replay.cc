/**
 * @file
 * Sampled traced replay: TimedTraceReplayer under SMARTS sampling
 * must stay within the 5% error ceiling of the full-detail traced
 * replay, with the reported 95% CI covering the detailed truth —
 * the same regression pinning as tests/cpu/test_sampling.cc, on the
 * binary-trace path campaigns use.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "cpu/system.hh"
#include "cpu/trace_replay.hh"
#include "trace/generate.hh"
#include "trace/reader.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

namespace fs = std::filesystem;

Power8System::Params
smallCard()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

sim::SamplingConfig
testSampling()
{
    sim::SamplingConfig cfg;
    cfg.enabled = true;
    cfg.warmupUnits = 16;
    cfg.windowUnits = 64;
    cfg.periodUnits = 1024;
    return cfg;
}

struct ReplayOutcome
{
    TimedTraceReplayer::Result result;
    sim::SamplingReport sampling;
};

ReplayOutcome
runReplay(const std::string &tracePath, bool sampled,
          std::uint64_t seed)
{
    trace::MappedTrace bin(tracePath);
    Power8System sys(smallCard());
    EXPECT_TRUE(sys.train());
    ClockDomain core("core", 250);
    TimedTraceReplayer::Params rp;
    sim::SamplingController *ctl = nullptr;
    if (sampled) {
        ctl = &sys.enableSampling(testSampling(), seed);
        rp.sampler = ctl;
    }
    TimedTraceReplayer rep("replay", sys.eventq(), core, &sys, rp,
                           sys.port());
    ReplayOutcome out;
    bool finished = false;
    rep.start(bin,
              [&](const TimedTraceReplayer::Result &r) {
                  out.result = r;
                  finished = true;
              });
    while (!finished && sys.eventq().step()) {
    }
    EXPECT_TRUE(finished);
    if (ctl)
        out.sampling = ctl->report();
    return out;
}

/** The shared trace under test, generated once. */
const std::string &
tracePath()
{
    static const std::string path = [] {
        std::string p =
            ::testing::TempDir() + "trace_sampled_replay.bin";
        trace::GenerateSpec spec;
        spec.shape = trace::Shape::qsort;
        spec.records = 30000;
        spec.seed = 2026;
        spec.meanDelay = nanoseconds(100);
        spec.footprint = 64 * MiB;
        trace::generate(spec, p);
        return p;
    }();
    return path;
}

TEST(SampledTracedReplay, WithinErrorCeilingOfFullDetail)
{
    ReplayOutcome detail = runReplay(tracePath(), false, 5);
    ReplayOutcome sampled = runReplay(tracePath(), true, 5);

    // Both replayed the whole trace; sampling fast-forwarded most
    // of it.
    EXPECT_EQ(detail.result.replayed, 30000u);
    EXPECT_EQ(sampled.result.replayed, 30000u);
    EXPECT_EQ(detail.result.detailed, 30000u);
    EXPECT_LT(sampled.result.detailed, 30000u / 2);
    ASSERT_TRUE(sampled.sampling.enabled);
    EXPECT_GE(sampled.sampling.windows, 2u);
    EXPECT_GT(sampled.sampling.fastForwardUnits,
              sampled.sampling.detailedUnits);

    // The 5% error ceiling against the detailed truth.
    ASSERT_GT(detail.result.runtime, Tick(0));
    double relErr =
        std::abs(double(sampled.result.runtime)
                 - double(detail.result.runtime))
        / double(detail.result.runtime);
    EXPECT_LT(relErr, 0.05)
        << "sampled " << sampled.result.runtime << " detail "
        << detail.result.runtime;

    // And the statistical estimate's 95% CI covers it.
    double est = sampled.sampling.estimatedRuntimeTicks;
    double ciHalf = sampled.sampling.ciHalfWidthTicks;
    EXPECT_LE(std::abs(est - double(detail.result.runtime)), ciHalf)
        << "estimate " << est << " ± " << ciHalf << " vs detail "
        << detail.result.runtime;
}

TEST(SampledTracedReplay, SameSeedSameOutcome)
{
    ReplayOutcome a = runReplay(tracePath(), true, 17);
    ReplayOutcome b = runReplay(tracePath(), true, 17);
    EXPECT_EQ(a.result.runtime, b.result.runtime);
    EXPECT_EQ(a.result.detailed, b.result.detailed);
    EXPECT_EQ(a.sampling.windows, b.sampling.windows);

    // A different sampling seed moves the window schedule but not
    // the functional outcome.
    ReplayOutcome c = runReplay(tracePath(), true, 18);
    EXPECT_EQ(c.result.replayed, a.result.replayed);
    EXPECT_EQ(c.result.reads, a.result.reads);
    EXPECT_EQ(c.result.writes, a.result.writes);
}

TEST(SampledTracedReplay, ReadWriteCountsMatchDetail)
{
    ReplayOutcome detail = runReplay(tracePath(), false, 5);
    ReplayOutcome sampled = runReplay(tracePath(), true, 5);
    EXPECT_EQ(detail.result.reads, sampled.result.reads);
    EXPECT_EQ(detail.result.writes, sampled.result.writes);
}

} // namespace
