/**
 * @file
 * Capture→replay round trip: a CoreModel run captured to a binary
 * trace, then replayed at recorded ticks through an identical fresh
 * system, must drive the memory channel byte-identically — same
 * channel stats JSON, same error log — and a recapture of the
 * replay must reproduce the trace file checksum-for-checksum.
 * Swept over 16 seeds, serial and under 2-/4-shard task farms.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "cpu/core_model.hh"
#include "cpu/system.hh"
#include "cpu/trace_replay.hh"
#include "firmware/error_log.hh"
#include "trace/capture.hh"
#include "trace/reader.hh"

#include "../integration/seed_sweep.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

namespace fs = std::filesystem;

Power8System::Params
smallCard()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

WorkloadProfile
missHeavy()
{
    WorkloadProfile prof;
    prof.name = "missHeavy";
    prof.baseCpi = 1.0;
    prof.missesPerKiloInstr = 30;
    prof.chaseFraction = 0.05;
    prof.streamFraction = 0.2;
    prof.mlp = 8;
    prof.workingSet = 64 * MiB;
    return prof;
}

std::string
serializeLog(const firmware::ErrorLog &log)
{
    std::ostringstream os;
    for (const auto &e : log.entries())
        os << e.when << '|' << e.component << '|' << int(e.severity)
           << '|' << e.message << '\n';
    os << "overflow=" << log.overflowCount() << '\n';
    return os.str();
}

/** What the channel saw during one run. */
struct ChannelView
{
    std::string statsJson;
    std::string errorLog;
};

ChannelView
channelView(Power8System &sys)
{
    ChannelView v;
    std::ostringstream os;
    stats::toJson(sys.channel(), os);
    v.statsJson = os.str();
    v.errorLog = serializeLog(sys.channel().errorLog());
    return v;
}

/** Direct CoreModel run with a capture sink; the trace lands at
 *  @p tracePath. */
ChannelView
directRun(std::uint64_t seed, const std::string &tracePath,
          std::uint64_t *capturedRecords)
{
    Power8System sys(smallCard());
    EXPECT_TRUE(sys.train());
    trace::CaptureSink sink(tracePath);
    ClockDomain core("core", 250);
    CoreModel::Params cp;
    cp.instructions = 20000;
    cp.seed = seed;
    cp.capture = &sink;
    CoreModel model("core", sys.eventq(), core, &sys, missHeavy(),
                    cp, sys.port());
    bool finished = false;
    model.start([&](const CoreModel::Result &) { finished = true; });
    while (!finished && sys.eventq().step()) {
    }
    EXPECT_TRUE(finished);
    sink.close();
    *capturedRecords = sink.recordCount();
    return channelView(sys);
}

/** Timed replay of the captured trace on an identical fresh system,
 *  recapturing itself; returns the channel view and the recapture
 *  checksum. */
ChannelView
replayRun(const std::string &tracePath,
          const std::string &recapturePath,
          std::uint64_t *recaptureChecksum)
{
    trace::MappedTrace bin(tracePath);
    Power8System sys(smallCard());
    EXPECT_TRUE(sys.train());
    trace::CaptureSink sink(recapturePath);
    ClockDomain core("core", 250);
    TimedTraceReplayer::Params rp;
    rp.capture = &sink;
    TimedTraceReplayer rep("replay", sys.eventq(), core, &sys, rp,
                           sys.port());
    bool finished = false;
    rep.start(bin,
              [&](const TimedTraceReplayer::Result &) {
                  finished = true;
              });
    while (!finished && sys.eventq().step()) {
    }
    EXPECT_TRUE(finished);
    sink.close();
    *recaptureChecksum = sink.checksum();
    return channelView(sys);
}

void
roundTripScenario(std::uint64_t seed, sweep::Report &r,
                  const std::string &tag)
{
    const std::string base = ::testing::TempDir() + "trace_rt_"
                             + tag + "_" + std::to_string(seed);
    const std::string tracePath = base + ".bin";
    const std::string recapPath = base + ".recap.bin";
    fs::remove(tracePath);
    fs::remove(recapPath);

    std::uint64_t captured = 0;
    ChannelView direct = directRun(seed, tracePath, &captured);
    sweep::check(r, "captured-nonempty", captured > 0,
                 std::to_string(captured) + " records");

    std::uint64_t inputChecksum = 0;
    {
        trace::MappedTrace bin(tracePath);
        inputChecksum = bin.checksum();
        sweep::check(r, "trace-validates",
                     bin.validateAll() > 0
                         && bin.recordCount() == captured);
    }

    std::uint64_t recapChecksum = 0;
    ChannelView replay =
        replayRun(tracePath, recapPath, &recapChecksum);

    sweep::check(r, "channel-stats-identical",
                 direct.statsJson == replay.statsJson);
    sweep::check(r, "error-log-identical",
                 direct.errorLog == replay.errorLog);
    sweep::check(r, "recapture-byte-identical",
                 recapChecksum == inputChecksum);

    fs::remove(tracePath);
    fs::remove(recapPath);
}

class TraceRoundTrip : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TraceRoundTrip, SixteenSeedsChannelByteIdentical)
{
    const unsigned shards = GetParam();
    const std::string tag = "s" + std::to_string(shards);
    auto reports = sweep::run(
        sweep::seeds(0xBEEF, 16), shards,
        [&tag](std::uint64_t seed, sweep::Report &r) {
            roundTripScenario(seed, r, tag);
        });
    sweep::expectAllPassed(reports);
}

INSTANTIATE_TEST_SUITE_P(Serial2And4Shards, TraceRoundTrip,
                         ::testing::Values(1u, 2u, 4u));

} // namespace
