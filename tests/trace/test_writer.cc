/**
 * @file
 * TraceWriter atomicity: the final path holds either a complete
 * valid trace or nothing, across normal close, abort, destruction
 * without close, tiny-buffer flush paths, and injected short writes
 * (trace::testing::setShortWriteBudget).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "trace/reader.hh"
#include "trace/writer.hh"

using namespace contutto;
using namespace contutto::trace;

namespace
{

namespace fs = std::filesystem;

std::string
tmpPath(const std::string &leaf)
{
    return ::testing::TempDir() + "trace_writer_" + leaf;
}

Record
makeRecord(Tick delta, Addr addr, Op op = Op::read)
{
    Record rec;
    rec.tickDelta = delta;
    rec.addr = addr;
    rec.op = op;
    return rec;
}

TEST(TraceWriter, CloseInstallsValidFile)
{
    const std::string path = tmpPath("close.bin");
    fs::remove(path);
    TraceWriter writer(path);
    for (int i = 0; i < 100; ++i)
        writer.append(makeRecord(10, 0x1000 + 128 * i,
                                 i % 2 ? Op::write : Op::read));

    // Nothing at the final path until close(); the temp holds the
    // in-flight bytes.
    EXPECT_FALSE(fs::exists(path));
    writer.close();
    EXPECT_TRUE(writer.closed());
    EXPECT_TRUE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));

    MappedTrace bin(path);
    EXPECT_EQ(bin.recordCount(), 100u);
    EXPECT_EQ(bin.checksum(), writer.checksum());
    EXPECT_EQ(bin.validateAll(), Tick(100 * 10));
    EXPECT_EQ(bin.record(3).addr, Addr(0x1000 + 128 * 3));
    fs::remove(path);
}

TEST(TraceWriter, EmptyTraceIsValid)
{
    const std::string path = tmpPath("empty.bin");
    fs::remove(path);
    TraceWriter writer(path);
    writer.close();
    MappedTrace bin(path);
    EXPECT_EQ(bin.recordCount(), 0u);
    EXPECT_EQ(bin.validateAll(), Tick(0));
    fs::remove(path);
}

TEST(TraceWriter, AbortLeavesNothing)
{
    const std::string path = tmpPath("abort.bin");
    fs::remove(path);
    TraceWriter writer(path);
    writer.append(makeRecord(1, 0x80));
    writer.abort();
    writer.abort(); // idempotent
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(TraceWriter, DestructionWithoutCloseLeavesNothing)
{
    const std::string path = tmpPath("dtor.bin");
    fs::remove(path);
    {
        TraceWriter writer(path);
        writer.append(makeRecord(1, 0x80));
    }
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(TraceWriter, TinyBufferMatchesBigBuffer)
{
    // A buffer barely larger than one record forces a flush on
    // nearly every append; the resulting file must be byte-identical
    // (same checksum) to the default-buffer one.
    const std::string big = tmpPath("big.bin");
    const std::string tiny = tmpPath("tiny.bin");
    fs::remove(big);
    fs::remove(tiny);

    TraceWriter bigW(big);
    TraceWriter::Options opts;
    opts.bufferBytes = recordBytes + 1;
    TraceWriter tinyW(tiny, opts);
    for (int i = 0; i < 500; ++i) {
        Record rec = makeRecord(i, 0x100 * i,
                                i % 3 ? Op::read : Op::depWrite);
        bigW.append(rec);
        tinyW.append(rec);
    }
    bigW.close();
    tinyW.close();
    EXPECT_EQ(bigW.checksum(), tinyW.checksum());
    EXPECT_EQ(fs::file_size(big), fs::file_size(tiny));
    fs::remove(big);
    fs::remove(tiny);
}

TEST(TraceWriter, ShortWriteRaisesTypedErrorAndCleansUp)
{
    const std::string path = tmpPath("short.bin");
    fs::remove(path);

    // Inject failures at several disk-full points: immediately, mid
    // buffer flush, and during the footer write at close().
    for (long budget : {0L, 64L, 4096L}) {
        trace::testing::setShortWriteBudget(budget);
        bool threw = false;
        try {
            TraceWriter writer(path);
            for (int i = 0; i < 100000; ++i)
                writer.append(makeRecord(1, 128 * i));
            writer.close();
        } catch (const Error &e) {
            threw = true;
            EXPECT_EQ(e.code(), ErrorCode::shortWrite)
                << "budget " << budget;
        }
        trace::testing::setShortWriteBudget(-1);
        EXPECT_TRUE(threw) << "budget " << budget;
        EXPECT_FALSE(fs::exists(path)) << "budget " << budget;
        EXPECT_FALSE(fs::exists(path + ".tmp"))
            << "budget " << budget;
    }
}

TEST(TraceWriter, ShortWriteAtFooterOnlyStillInstallsNothing)
{
    // Budget exactly covers header + records but not the footer:
    // close() must fail and the final path must stay absent even
    // though every record "landed".
    const std::string path = tmpPath("footer.bin");
    fs::remove(path);
    const int n = 10;
    trace::testing::setShortWriteBudget(
        long(headerBytes + n * recordBytes + footerBytes - 1));
    bool threw = false;
    try {
        TraceWriter writer(path);
        for (int i = 0; i < n; ++i)
            writer.append(makeRecord(1, 128 * i));
        writer.close();
    } catch (const Error &e) {
        threw = true;
        EXPECT_EQ(e.code(), ErrorCode::shortWrite);
    }
    trace::testing::setShortWriteBudget(-1);
    EXPECT_TRUE(threw);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

} // namespace
