/**
 * @file
 * Record/header/footer codec unit tests: encode/decode round trips,
 * op helpers, and the badRecord payload checks a matching checksum
 * does not excuse.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "trace/format.hh"

using namespace contutto;
using namespace contutto::trace;

namespace
{

TEST(TraceFormat, OpHelpers)
{
    EXPECT_FALSE(opIsWrite(Op::read));
    EXPECT_TRUE(opIsWrite(Op::write));
    EXPECT_FALSE(opIsWrite(Op::depRead));
    EXPECT_TRUE(opIsWrite(Op::depWrite));

    EXPECT_FALSE(opIsDependent(Op::read));
    EXPECT_FALSE(opIsDependent(Op::write));
    EXPECT_TRUE(opIsDependent(Op::depRead));
    EXPECT_TRUE(opIsDependent(Op::depWrite));

    EXPECT_EQ(makeOp(false, false), Op::read);
    EXPECT_EQ(makeOp(true, false), Op::write);
    EXPECT_EQ(makeOp(false, true), Op::depRead);
    EXPECT_EQ(makeOp(true, true), Op::depWrite);
}

TEST(TraceFormat, RecordRoundTrip)
{
    for (std::uint8_t op = 0; op < numOps; ++op) {
        Record rec;
        rec.tickDelta = 0x0123456789abcdefull;
        rec.addr = 0xfedcba9876543210ull;
        rec.op = Op(op);
        rec.sizeLog2 = 12;
        rec.threadId = 0xbeef;

        std::uint8_t buf[recordBytes];
        encodeRecord(rec, buf);
        Record back = decodeRecord(buf);
        EXPECT_EQ(back, rec);
    }
}

TEST(TraceFormat, HeaderLayout)
{
    std::uint8_t buf[headerBytes];
    encodeHeader(buf);
    EXPECT_EQ(std::memcmp(buf, fileMagic, sizeof(fileMagic)), 0);
    std::uint32_t version = 0;
    std::memcpy(&version, buf + 8, sizeof(version));
    EXPECT_EQ(version, formatVersion);
}

TEST(TraceFormat, FooterLayout)
{
    std::uint8_t buf[footerBytes];
    encodeFooter(42, 0x1122334455667788ull, buf);
    std::uint64_t count = 0, sum = 0;
    std::memcpy(&count, buf, sizeof(count));
    std::memcpy(&sum, buf + 8, sizeof(sum));
    EXPECT_EQ(count, 42u);
    EXPECT_EQ(sum, 0x1122334455667788ull);
}

void
expectBadRecord(const std::uint8_t buf[recordBytes])
{
    try {
        decodeRecord(buf);
        FAIL() << "decodeRecord accepted an invalid payload";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::badRecord);
    }
}

TEST(TraceFormat, DecodeRejectsBadPayload)
{
    Record rec;
    rec.tickDelta = 10;
    rec.addr = 0x1000;
    std::uint8_t buf[recordBytes];

    // Out-of-range op.
    encodeRecord(rec, buf);
    buf[16] = numOps;
    expectBadRecord(buf);

    // sizeLog2 above the sane cap.
    encodeRecord(rec, buf);
    buf[17] = maxSizeLog2 + 1;
    expectBadRecord(buf);

    // Non-zero reserved bytes.
    encodeRecord(rec, buf);
    buf[20] = 1;
    expectBadRecord(buf);

    // Untampered payload decodes fine.
    encodeRecord(rec, buf);
    EXPECT_EQ(decodeRecord(buf), rec);
}

TEST(TraceFormat, ErrorCodeNamesAreStable)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::tooShort),
                 "trace tooShort");
    EXPECT_STREQ(errorCodeName(ErrorCode::badChecksum),
                 "trace badChecksum");
    EXPECT_STREQ(errorCodeName(ErrorCode::shortWrite),
                 "trace shortWrite");

    Error e(ErrorCode::badMagic, "nope");
    EXPECT_EQ(e.code(), ErrorCode::badMagic);
    EXPECT_NE(std::string(e.what()).find("badMagic"),
              std::string::npos);
}

} // namespace
