/** @file NVDIMM-N save/restore and SPD tests. */

#include <gtest/gtest.h>

#include "mem/device.hh"
#include "mem/spd.hh"

using namespace contutto;
using namespace contutto::mem;

namespace
{

struct NvRig
{
    EventQueue eq;
    ClockDomain ddr{"ddr", 1500};
    stats::StatGroup root{"root"};
    NvdimmDevice nv;

    explicit NvRig(NvdimmDevice::Params p = {})
        : nv("nvdimm", eq, ddr, &root, 64 * MiB, p)
    {}
};

TEST(Nvdimm, SavesAndRestoresAcrossPowerLoss)
{
    NvRig rig;
    rig.nv.image().write64(0x1000, 0x0123456789ABCDEFull);
    rig.nv.image().write64(0x3FFF000, 0x42);

    rig.nv.powerLoss();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::saving);
    EXPECT_FALSE(rig.nv.accessible());
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::saved);
    // DRAM array is dark; data lives in flash only.
    EXPECT_EQ(rig.nv.image().read64(0x1000), 0u);

    rig.nv.powerRestore();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::restoring);
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::normal);
    EXPECT_EQ(rig.nv.image().read64(0x1000), 0x0123456789ABCDEFull);
    EXPECT_EQ(rig.nv.image().read64(0x3FFF000), 0x42u);
}

TEST(Nvdimm, SaveDurationScalesWithCapacity)
{
    NvdimmDevice::Params p;
    p.flashBandwidth = 100e6; // 100 MB/s
    NvRig rig(p);
    // 64 MiB at 100 MB/s ~ 0.67 s.
    double secs = ticksToSeconds(rig.nv.saveDuration());
    EXPECT_NEAR(secs, double(64 * MiB) / 100e6, 0.01);
}

TEST(Nvdimm, DeadSupercapLosesData)
{
    NvdimmDevice::Params p;
    p.charged = false;
    NvRig rig(p);
    rig.nv.image().write64(0x2000, 77);
    rig.nv.powerLoss();
    // The save could not even start: the loss is counted right
    // here, once, and the module stops claiming its contents.
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::lost);
    EXPECT_FALSE(rig.nv.contentIntact());
    EXPECT_EQ(rig.nv.dataLossEvents(), 1u);

    // Restoring from lost is explicit: the module comes back
    // serviceable but empty, reports the lost outcome, and does not
    // count the same loss again.
    rig.nv.powerRestore();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::normal);
    EXPECT_EQ(rig.nv.restoreOutcome(), RestoreOutcome::lost);
    EXPECT_FALSE(rig.nv.contentIntact());
    EXPECT_EQ(rig.nv.image().read64(0x2000), 0u);
    EXPECT_EQ(rig.nv.dataLossEvents(), 1u);

    // Each subsequent failed cycle is its own event — exactly one
    // count per loss, never amortized away.
    rig.nv.image().write64(0x2000, 99);
    rig.nv.powerLoss();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::lost);
    EXPECT_EQ(rig.nv.dataLossEvents(), 2u);
    rig.nv.powerRestore();
    EXPECT_EQ(rig.nv.dataLossEvents(), 2u);
}

TEST(Nvdimm, InsufficientEnergyTearsSaveMidStream)
{
    NvdimmDevice::Params p;
    p.supercapJoules = 0.01; // one segment's worth, not 64 MiB
    NvRig rig(p);
    rig.nv.image().write64(0x2000, 77);
    rig.nv.powerLoss();
    // Enough charge to *start* saving — depletion hits mid-stream.
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::saving);
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::partial);
    EXPECT_FALSE(rig.nv.contentIntact());
    EXPECT_EQ(rig.nv.dataLossEvents(), 1u);

    // Restore must detect the torn flash image, never serve it.
    rig.nv.powerRestore();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::normal);
    EXPECT_EQ(rig.nv.restoreOutcome(), RestoreOutcome::torn);
    EXPECT_FALSE(rig.nv.contentIntact());
    EXPECT_EQ(rig.nv.image().read64(0x2000), 0u);
    // The loss was counted at save time, exactly once.
    EXPECT_EQ(rig.nv.dataLossEvents(), 1u);
}

TEST(Nvdimm, SecondPowerCycleWorksAfterRecharge)
{
    NvRig rig;
    rig.nv.image().write64(0x10, 1);
    rig.nv.powerLoss();
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    rig.nv.powerRestore();
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    ASSERT_EQ(rig.nv.state(), NvdimmDevice::State::normal);

    rig.nv.image().write64(0x10, 2);
    rig.nv.powerLoss();
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    rig.nv.powerRestore();
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    EXPECT_EQ(rig.nv.image().read64(0x10), 2u);
}

TEST(Flash, BadBlockRemapsToSpare)
{
    FlashModel flash(4 * MiB, {});
    MemImage src(4 * MiB);
    src.write64(0x100, 0xFEEDu);

    flash.markBad(0);
    EXPECT_TRUE(flash.programSegment(0, src, 1));
    EXPECT_EQ(flash.remappedBlocks(), 1u);
    EXPECT_EQ(flash.sparesLeft(), 3u);
    // The remapped block holds a valid image.
    EXPECT_EQ(flash.validateSegment(0, 1), SegmentState::clean);
    MemImage back(4 * MiB);
    flash.readSegment(0, back);
    EXPECT_EQ(back.read64(0x100), 0xFEEDu);
}

TEST(Flash, ExhaustedSparePoolFailsAsTorn)
{
    FlashModel::Params p;
    p.spareBlocks = 1;
    FlashModel flash(2 * MiB, p);
    MemImage src(2 * MiB);

    flash.markBad(0);
    EXPECT_TRUE(flash.programSegment(0, src, 1)); // uses the spare
    flash.markBad(1);
    EXPECT_FALSE(flash.programSegment(1, src, 1)); // pool is dry
    EXPECT_EQ(flash.validateSegment(1, 1), SegmentState::torn);
    EXPECT_EQ(flash.sparesLeft(), 0u);
}

TEST(Flash, WearCountsProgramsAndRetiresWornBlocks)
{
    FlashModel::Params p;
    p.eraseLimit = 2;
    p.spareBlocks = 2;
    FlashModel flash(1 * MiB, p);
    MemImage src(1 * MiB);

    EXPECT_TRUE(flash.programSegment(0, src, 1));
    EXPECT_EQ(flash.programCycles(0), 1u);
    EXPECT_TRUE(flash.programSegment(0, src, 2));
    // The block just hit its erase limit: it is retired, and the
    // next program transparently lands on a fresh spare.
    EXPECT_EQ(flash.wornBlocks(), 1u);
    EXPECT_TRUE(flash.programSegment(0, src, 3));
    EXPECT_EQ(flash.remappedBlocks(), 1u);
    EXPECT_EQ(flash.programCycles(0), 1u); // spare's own counter
    EXPECT_EQ(flash.validateSegment(0, 3), SegmentState::clean);
    EXPECT_GE(flash.maxProgramCycles(), 2u);
}

TEST(Flash, StaleGenerationIsNeverServedAsClean)
{
    FlashModel flash(1 * MiB, {});
    MemImage src(1 * MiB);
    src.write64(0x40, 0x1111u);
    EXPECT_TRUE(flash.programSegment(0, src, 1));
    // Asked about a newer save, the old image must read stale.
    EXPECT_EQ(flash.validateSegment(0, 2), SegmentState::stale);
    // And a torn program of the newer generation must read torn.
    src.write64(0x40, 0x2222u);
    flash.tearSegment(0, src, 2);
    EXPECT_EQ(flash.validateSegment(0, 2), SegmentState::torn);
}

TEST(Spd, EncodeDecodeRoundTrip)
{
    SpdRecord r;
    r.tech = MemTech::sttMram;
    r.capacity = 256 * MiB;
    r.speedGrade = 1066;
    r.hasBackup = false;
    r.vendor = "EverspinSTT";
    auto rom = r.encode();
    SpdRecord out;
    ASSERT_TRUE(SpdRecord::decode(rom, out));
    EXPECT_EQ(out.tech, MemTech::sttMram);
    EXPECT_EQ(out.capacity, 256 * MiB);
    EXPECT_EQ(out.speedGrade, 1066);
    EXPECT_EQ(out.vendor, "EverspinSTT");
}

TEST(Spd, ChecksumCatchesCorruption)
{
    SpdRecord r;
    r.capacity = 4 * GiB;
    auto rom = r.encode();
    rom[5] ^= 0x10;
    SpdRecord out;
    EXPECT_FALSE(SpdRecord::decode(rom, out));
}

TEST(Spd, ForDeviceDescribesModule)
{
    EventQueue eq;
    ClockDomain ddr("ddr", 1500);
    stats::StatGroup root("root");
    NvdimmDevice nv("nv", eq, ddr, &root, 8 * GiB, {});
    auto spd = SpdRecord::forDevice(nv);
    EXPECT_EQ(spd.tech, MemTech::nvdimmN);
    EXPECT_TRUE(spd.hasBackup);
    EXPECT_EQ(spd.capacity, 8 * GiB);
}

} // namespace
