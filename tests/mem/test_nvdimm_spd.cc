/** @file NVDIMM-N save/restore and SPD tests. */

#include <gtest/gtest.h>

#include "mem/device.hh"
#include "mem/spd.hh"

using namespace contutto;
using namespace contutto::mem;

namespace
{

struct NvRig
{
    EventQueue eq;
    ClockDomain ddr{"ddr", 1500};
    stats::StatGroup root{"root"};
    NvdimmDevice nv;

    explicit NvRig(NvdimmDevice::Params p = {})
        : nv("nvdimm", eq, ddr, &root, 64 * MiB, p)
    {}
};

TEST(Nvdimm, SavesAndRestoresAcrossPowerLoss)
{
    NvRig rig;
    rig.nv.image().write64(0x1000, 0x0123456789ABCDEFull);
    rig.nv.image().write64(0x3FFF000, 0x42);

    rig.nv.powerLoss();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::saving);
    EXPECT_FALSE(rig.nv.accessible());
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::saved);
    // DRAM array is dark; data lives in flash only.
    EXPECT_EQ(rig.nv.image().read64(0x1000), 0u);

    rig.nv.powerRestore();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::restoring);
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::normal);
    EXPECT_EQ(rig.nv.image().read64(0x1000), 0x0123456789ABCDEFull);
    EXPECT_EQ(rig.nv.image().read64(0x3FFF000), 0x42u);
}

TEST(Nvdimm, SaveDurationScalesWithCapacity)
{
    NvdimmDevice::Params p;
    p.flashBandwidth = 100e6; // 100 MB/s
    NvRig rig(p);
    // 64 MiB at 100 MB/s ~ 0.67 s.
    double secs = ticksToSeconds(rig.nv.saveDuration());
    EXPECT_NEAR(secs, double(64 * MiB) / 100e6, 0.01);
}

TEST(Nvdimm, DeadSupercapLosesData)
{
    NvdimmDevice::Params p;
    p.charged = false;
    NvRig rig(p);
    rig.nv.image().write64(0x2000, 77);
    rig.nv.powerLoss();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::lost);
    rig.nv.powerRestore();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::normal);
    EXPECT_EQ(rig.nv.image().read64(0x2000), 0u);
}

TEST(Nvdimm, InsufficientEnergyLosesData)
{
    NvdimmDevice::Params p;
    p.supercapJoules = 0.01; // not enough for 64 MiB
    NvRig rig(p);
    rig.nv.image().write64(0x2000, 77);
    rig.nv.powerLoss();
    EXPECT_EQ(rig.nv.state(), NvdimmDevice::State::lost);
}

TEST(Nvdimm, SecondPowerCycleWorksAfterRecharge)
{
    NvRig rig;
    rig.nv.image().write64(0x10, 1);
    rig.nv.powerLoss();
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    rig.nv.powerRestore();
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    ASSERT_EQ(rig.nv.state(), NvdimmDevice::State::normal);

    rig.nv.image().write64(0x10, 2);
    rig.nv.powerLoss();
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    rig.nv.powerRestore();
    rig.eq.run(rig.eq.curTick() + rig.nv.saveDuration() + 1000);
    EXPECT_EQ(rig.nv.image().read64(0x10), 2u);
}

TEST(Spd, EncodeDecodeRoundTrip)
{
    SpdRecord r;
    r.tech = MemTech::sttMram;
    r.capacity = 256 * MiB;
    r.speedGrade = 1066;
    r.hasBackup = false;
    r.vendor = "EverspinSTT";
    auto rom = r.encode();
    SpdRecord out;
    ASSERT_TRUE(SpdRecord::decode(rom, out));
    EXPECT_EQ(out.tech, MemTech::sttMram);
    EXPECT_EQ(out.capacity, 256 * MiB);
    EXPECT_EQ(out.speedGrade, 1066);
    EXPECT_EQ(out.vendor, "EverspinSTT");
}

TEST(Spd, ChecksumCatchesCorruption)
{
    SpdRecord r;
    r.capacity = 4 * GiB;
    auto rom = r.encode();
    rom[5] ^= 0x10;
    SpdRecord out;
    EXPECT_FALSE(SpdRecord::decode(rom, out));
}

TEST(Spd, ForDeviceDescribesModule)
{
    EventQueue eq;
    ClockDomain ddr("ddr", 1500);
    stats::StatGroup root("root");
    NvdimmDevice nv("nv", eq, ddr, &root, 8 * GiB, {});
    auto spd = SpdRecord::forDevice(nv);
    EXPECT_EQ(spd.tech, MemTech::nvdimmN);
    EXPECT_TRUE(spd.hasBackup);
    EXPECT_EQ(spd.capacity, 8 * GiB);
}

} // namespace
