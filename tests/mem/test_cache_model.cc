/** @file Cache model tests: LRU semantics vs a reference model. */

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "mem/cache_model.hh"
#include "sim/random.hh"

using namespace contutto;
using namespace contutto::mem;

namespace
{

TEST(CacheModel, HitAfterFill)
{
    CacheModel c(8 * 1024, 128, 4);
    EXPECT_FALSE(c.lookup(0x1000));
    c.fill(0x1000);
    EXPECT_TRUE(c.lookup(0x1000));
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x1080));
}

TEST(CacheModel, LruEvictsColdestWay)
{
    // 4-way, 2 sets (1 KiB / 128 B lines): same-set addresses are
    // 256 B apart.
    CacheModel c(1024, 128, 4);
    Addr base = 0;
    // Fill the 4 ways of set 0.
    for (int i = 0; i < 4; ++i)
        c.fill(base + Addr(i) * 256);
    // Touch way 0 so way 1 becomes LRU.
    EXPECT_TRUE(c.lookup(base));
    auto victim = c.fill(base + 4 * 256);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, base + 1 * 256);
    EXPECT_TRUE(c.probe(base));              // recently used stays
    EXPECT_FALSE(c.probe(base + 1 * 256));   // LRU evicted
}

TEST(CacheModel, DirtyVictimsReported)
{
    CacheModel c(1024, 128, 2);
    c.fill(0x0, /*dirty=*/true);
    c.fill(0x200);
    auto victim = c.fill(0x400); // evicts the dirty 0x0
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(victim->lineAddr, 0x0u);
}

TEST(CacheModel, WriteHitMarksDirty)
{
    CacheModel c(1024, 128, 2);
    c.fill(0x0);
    EXPECT_TRUE(c.writeHit(0x0));
    c.fill(0x200);
    auto victim = c.fill(0x400);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
    EXPECT_FALSE(c.writeHit(0x9000)); // miss
}

TEST(CacheModel, InvalidateAndStats)
{
    CacheModel c(1024, 128, 2);
    c.fill(0x0);
    c.invalidate(0x0);
    EXPECT_FALSE(c.probe(0x0));
    c.fill(0x0);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_FALSE(c.lookup(0x0)); // counted as a miss
    EXPECT_GT(c.misses(), 0u);
}

/** Reference model: per-set LRU lists. */
class RefCache
{
  public:
    RefCache(unsigned sets, unsigned ways, unsigned line)
        : sets_(sets), ways_(ways), line_(line), lru_(sets)
    {}

    bool
    access(Addr addr, bool is_write, std::optional<Addr> &victim,
           bool &victim_dirty)
    {
        victim.reset();
        unsigned set = unsigned((addr / line_) % sets_);
        Addr tag = addr / line_ / sets_;
        auto &list = lru_[set];
        for (auto it = list.begin(); it != list.end(); ++it) {
            if (it->tag == tag) {
                Way w = *it;
                w.dirty = w.dirty || is_write;
                list.erase(it);
                list.push_front(w);
                return true;
            }
        }
        // Miss: fill, evicting LRU if full.
        if (list.size() == ways_) {
            victim = (list.back().tag * sets_ + set) * line_;
            victim_dirty = list.back().dirty;
            list.pop_back();
        }
        list.push_front(Way{tag, is_write});
        return false;
    }

  private:
    struct Way
    {
        Addr tag;
        bool dirty;
    };
    unsigned sets_, ways_, line_;
    std::vector<std::list<Way>> lru_;
};

class CacheFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CacheFuzz, MatchesReferenceLru)
{
    constexpr unsigned line = 128, ways = 4, sets = 16;
    CacheModel c(std::uint64_t(line) * ways * sets, line, ways);
    RefCache ref(sets, ways, line);
    Rng rng(GetParam());

    for (int op = 0; op < 5000; ++op) {
        Addr addr = rng.below(sets * ways * 4) * line;
        bool is_write = rng.chance(0.3);

        std::optional<Addr> ref_victim;
        bool ref_dirty = false;
        bool ref_hit =
            ref.access(addr, is_write, ref_victim, ref_dirty);

        bool hit;
        std::optional<CacheModel::Victim> victim;
        if (is_write) {
            hit = c.writeHit(addr);
            if (!hit)
                victim = c.fill(addr, /*dirty=*/true);
        } else {
            hit = c.lookup(addr);
            if (!hit)
                victim = c.fill(addr);
        }

        ASSERT_EQ(hit, ref_hit) << "op " << op;
        ASSERT_EQ(victim.has_value(), ref_victim.has_value())
            << "op " << op;
        if (victim) {
            ASSERT_EQ(victim->lineAddr, *ref_victim) << "op " << op;
            ASSERT_EQ(victim->dirty, ref_dirty) << "op " << op;
        }
    }
    EXPECT_GT(c.hitRate(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz,
                         ::testing::Values(21, 42, 63, 84));

} // namespace
