/** @file Functional memory image tests. */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "mem/mem_image.hh"
#include "sim/random.hh"

using namespace contutto;
using namespace contutto::mem;

namespace
{

TEST(MemImage, ReadsZeroWhenUntouched)
{
    MemImage m(1 * MiB);
    std::uint8_t buf[16];
    m.read(0x1234, 16, buf);
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(m.pagesTouched(), 0u);
}

TEST(MemImage, WriteReadRoundTrip)
{
    MemImage m(1 * MiB);
    std::uint8_t in[64], out[64];
    for (int i = 0; i < 64; ++i)
        in[i] = std::uint8_t(i * 3);
    m.write(0x8000, 64, in);
    m.read(0x8000, 64, out);
    EXPECT_EQ(0, std::memcmp(in, out, 64));
}

TEST(MemImage, CrossPageAccess)
{
    MemImage m(1 * MiB);
    std::uint8_t in[256], out[256];
    for (int i = 0; i < 256; ++i)
        in[i] = std::uint8_t(255 - i);
    Addr addr = MemImage::pageSize - 100; // straddles a boundary
    m.write(addr, 256, in);
    m.read(addr, 256, out);
    EXPECT_EQ(0, std::memcmp(in, out, 256));
    EXPECT_EQ(m.pagesTouched(), 2u);
}

TEST(MemImage, Typed64And32)
{
    MemImage m(1 * MiB);
    m.write64(0x100, 0x1122334455667788ull);
    EXPECT_EQ(m.read64(0x100), 0x1122334455667788ull);
    m.write32(0x200, 0xDEADBEEF);
    EXPECT_EQ(m.read32(0x200), 0xDEADBEEFu);
    // Little-endian layout.
    std::uint8_t b;
    m.read(0x100, 1, &b);
    EXPECT_EQ(b, 0x88);
}

TEST(MemImage, MaskedWriteMergesBytes)
{
    MemImage m(1 * MiB);
    dmi::CacheLine base{};
    for (std::size_t i = 0; i < base.size(); ++i)
        base[i] = 0x11;
    m.write(0, base.size(), base.data());

    dmi::CacheLine update{};
    for (std::size_t i = 0; i < update.size(); ++i)
        update[i] = 0xEE;
    dmi::ByteEnable en;
    en.set(0);
    en.set(64);
    en.set(127);
    m.writeMasked(0, update, en);

    std::uint8_t out[128];
    m.read(0, 128, out);
    EXPECT_EQ(out[0], 0xEE);
    EXPECT_EQ(out[1], 0x11);
    EXPECT_EQ(out[64], 0xEE);
    EXPECT_EQ(out[126], 0x11);
    EXPECT_EQ(out[127], 0xEE);
}

TEST(MemImage, ClearForgetsEverything)
{
    MemImage m(1 * MiB);
    m.write64(0x300, 42);
    m.clear();
    EXPECT_EQ(m.read64(0x300), 0u);
    EXPECT_EQ(m.pagesTouched(), 0u);
}

TEST(MemImage, CopyFromDuplicatesContents)
{
    MemImage a(1 * MiB), b(1 * MiB);
    a.write64(0x400, 0xAAAA);
    a.write64(0x80000, 0xBBBB);
    b.copyFrom(a);
    EXPECT_EQ(b.read64(0x400), 0xAAAAu);
    EXPECT_EQ(b.read64(0x80000), 0xBBBBu);
    // Deep copy: later writes to a don't leak into b.
    a.write64(0x400, 1);
    EXPECT_EQ(b.read64(0x400), 0xAAAAu);
}

TEST(MemImageDeath, OutOfBoundsPanics)
{
    MemImage m(4096);
    std::uint8_t b = 0;
    EXPECT_DEATH(m.write(4096, 1, &b), "capacity");
    EXPECT_DEATH(m.read(4090, 8, &b), "capacity");
}

// Property: random op sequence matches a std::map reference model.
class MemImageFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MemImageFuzz, MatchesReferenceModel)
{
    MemImage m(256 * KiB);
    std::map<Addr, std::uint8_t> ref;
    Rng r(GetParam());
    for (int op = 0; op < 2000; ++op) {
        Addr addr = r.below(256 * KiB - 64);
        std::size_t len = 1 + r.below(64);
        if (r.chance(0.5)) {
            std::uint8_t buf[64];
            for (std::size_t i = 0; i < len; ++i) {
                buf[i] = std::uint8_t(r.next());
                ref[addr + i] = buf[i];
            }
            m.write(addr, len, buf);
        } else {
            std::uint8_t buf[64];
            m.read(addr, len, buf);
            for (std::size_t i = 0; i < len; ++i) {
                auto it = ref.find(addr + i);
                std::uint8_t expect =
                    it == ref.end() ? 0 : it->second;
                ASSERT_EQ(buf[i], expect)
                    << "op " << op << " addr " << (addr + i);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemImageFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
