/** @file DDR3 controller timing and functional tests. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/ddr3_controller.hh"
#include "sim/random.hh"

using namespace contutto;
using namespace contutto::mem;

namespace
{

struct CtrlRig
{
    EventQueue eq;
    ClockDomain ddr{"ddr", 1500}; // DDR3-1333
    stats::StatGroup root{"root"};
    DramDevice dev;
    Ddr3Controller ctrl;

    explicit CtrlRig(Ddr3Controller::Params p = {})
        : dev("dimm", eq, ddr, &root, 256 * MiB),
          ctrl("mc", eq, ddr, &root, p, dev)
    {}

    /** Blocking single access helper. */
    Tick
    access(Addr addr, bool write, std::uint8_t fill = 0)
    {
        auto req = std::make_shared<MemRequest>();
        req->addr = addr;
        req->isWrite = write;
        if (write)
            req->data.fill(fill);
        bool done = false;
        Tick t0 = eq.curTick();
        Tick latency = 0;
        req->onDone = [&](MemRequest &) {
            done = true;
            latency = eq.curTick() - t0;
        };
        ctrl.submit(req);
        // Step just until completion so wall time (and refresh
        // cycles) don't pile up between back-to-back accesses.
        while (!done && eq.step()) {
        }
        EXPECT_TRUE(done);
        return latency;
    }
};

TEST(Ddr3Controller, WriteThenReadReturnsData)
{
    CtrlRig rig;
    rig.access(0x1000, true, 0x7E);
    auto req = std::make_shared<MemRequest>();
    req->addr = 0x1000;
    bool done = false;
    req->onDone = [&](MemRequest &r) {
        done = true;
        for (auto b : r.data)
            EXPECT_EQ(b, 0x7E);
    };
    rig.ctrl.submit(req);
    rig.eq.run(rig.eq.curTick() + microseconds(10));
    EXPECT_TRUE(done);
}

TEST(Ddr3Controller, RowHitIsFasterThanRowMiss)
{
    CtrlRig rig;
    // First access to bank 0 activates the row (closed-bank miss);
    // lines interleave across banks with stride 128 B, so the next
    // same-bank address is numBanks * 128 = 0x400.
    Tick first = rig.access(0x0, false);
    Tick hit_same_bank = rig.access(0x400, false);
    // Conflict: same bank, different row (row span 64 KiB).
    Tick conflict = rig.access(0x400 + 64 * KiB, false);

    EXPECT_LT(hit_same_bank, first);
    EXPECT_LT(hit_same_bank, conflict);
    EXPECT_LT(first, conflict); // conflict also pays precharge
    EXPECT_GT(rig.ctrl.ctrlStats().rowHits.value(), 0.0);
    EXPECT_GT(rig.ctrl.ctrlStats().rowMisses.value(), 0.0);
}

TEST(Ddr3Controller, LatencyInPlausibleDdr3Range)
{
    CtrlRig rig;
    Tick miss = rig.access(0x0, false);
    // A closed-bank DDR3-1333 read with the 2x8 ns frontend should
    // land in the 30-80 ns range.
    EXPECT_GE(miss, nanoseconds(25));
    EXPECT_LE(miss, nanoseconds(80));
    Tick hit = rig.access(0x400, false);
    EXPECT_GE(hit, nanoseconds(20));
    EXPECT_LE(hit, miss);
}

TEST(Ddr3Controller, BandwidthApproachesBusLimit)
{
    // Stream sequential lines; DDR3-1333 peak is 10.67 GB/s; an
    // open-page streaming pattern should get close.
    CtrlRig rig;
    const int n = 2000;
    int done = 0;
    Tick t0 = rig.eq.curTick();
    Tick last_done = t0;
    std::function<void(int)> issue = [&](int i) {
        auto req = std::make_shared<MemRequest>();
        req->addr = Addr(i) * dmi::cacheLineSize;
        req->isWrite = false;
        req->onDone = [&](MemRequest &) {
            ++done;
            last_done = rig.eq.curTick();
        };
        rig.ctrl.submit(req);
    };
    // Respect queue capacity: issue in waves.
    int issued = 0;
    while (issued < n) {
        while (issued < n && rig.ctrl.canAccept())
            issue(issued++);
        rig.eq.step();
    }
    rig.eq.run(rig.eq.curTick() + milliseconds(1));
    ASSERT_EQ(done, n);
    double secs = ticksToSeconds(last_done - t0);
    double bw = double(n) * 128 / secs;
    EXPECT_GT(bw, 7e9);   // at least ~70% of peak
    EXPECT_LT(bw, 10.7e9); // cannot beat the bus
}

TEST(Ddr3Controller, RefreshesHappenForDram)
{
    CtrlRig rig;
    rig.eq.run(milliseconds(1)); // ~128 tREFI intervals
    double refreshes = rig.ctrl.ctrlStats().refreshes.value();
    EXPECT_GT(refreshes, 100.0);
    EXPECT_LT(refreshes, 160.0);
}

TEST(Ddr3Controller, MaskedWriteMerges)
{
    CtrlRig rig;
    rig.access(0x2000, true, 0x33);
    auto req = std::make_shared<MemRequest>();
    req->addr = 0x2000;
    req->isWrite = true;
    req->masked = true;
    req->data.fill(0x44);
    req->enables.set(5);
    bool done = false;
    req->onDone = [&](MemRequest &) { done = true; };
    rig.ctrl.submit(req);
    rig.eq.run(rig.eq.curTick() + microseconds(10));
    ASSERT_TRUE(done);

    std::uint8_t out[128];
    rig.dev.image().read(0x2000, 128, out);
    EXPECT_EQ(out[4], 0x33);
    EXPECT_EQ(out[5], 0x44);
    EXPECT_EQ(out[6], 0x33);
}

TEST(MramDevice, NoRefreshAndSlowerWrites)
{
    EventQueue eq;
    ClockDomain ddr("ddr", 1500);
    stats::StatGroup root("root");
    MramDevice mram("mram", eq, ddr, &root, 256 * MiB,
                    MramDevice::Junction::pMTJ);
    Ddr3Controller ctrl("mc", eq, ddr, &root, {}, mram);

    EXPECT_FALSE(mram.needsRefresh());

    auto write_req = std::make_shared<MemRequest>();
    write_req->addr = 0;
    write_req->isWrite = true;
    Tick wlat = 0;
    Tick t0 = eq.curTick();
    write_req->onDone = [&](MemRequest &) { wlat = eq.curTick() - t0; };
    ctrl.submit(write_req);
    eq.run(eq.curTick() + microseconds(10));

    // Compare with a DRAM write at the same state.
    CtrlRig dram_rig;
    Tick dram_wlat = dram_rig.access(0, true);
    EXPECT_GT(wlat, dram_wlat); // MRAM write pulse costs extra
    // And iMTJ is slower than pMTJ.
    MramDevice imtj("imtj", eq, ddr, &root, 1 * MiB,
                    MramDevice::Junction::iMTJ);
    EXPECT_GT(imtj.extraWriteLatency(), mram.extraWriteLatency());

    // No refreshes ever get scheduled for MRAM.
    eq.run(eq.curTick() + milliseconds(1));
    EXPECT_EQ(ctrl.ctrlStats().refreshes.value(), 0.0);
}

TEST(MramDevice, EnduranceTracking)
{
    EventQueue eq;
    ClockDomain ddr("ddr", 1500);
    stats::StatGroup root("root");
    MramDevice mram("mram", eq, ddr, &root, 1 * MiB,
                    MramDevice::Junction::pMTJ);
    for (int i = 0; i < 100; ++i)
        mram.noteWrite(0x100, 64);
    mram.noteWrite(0x8000, 64);
    EXPECT_EQ(mram.maxBlockWrites(), 100u);
    EXPECT_EQ(mram.wornBlocks(), 0u);
    EXPECT_GT(mram.enduranceLimit(), 1e14);
}

TEST(MramDevice, SurvivesPowerLoss)
{
    EventQueue eq;
    ClockDomain ddr("ddr", 1500);
    stats::StatGroup root("root");
    MramDevice mram("mram", eq, ddr, &root, 1 * MiB,
                    MramDevice::Junction::pMTJ);
    mram.image().write64(0x500, 0xCAFE);
    mram.powerLoss();
    mram.powerRestore();
    EXPECT_EQ(mram.image().read64(0x500), 0xCAFEu);
}

TEST(DramDevice, LosesContentsOnPowerLoss)
{
    EventQueue eq;
    ClockDomain ddr("ddr", 1500);
    stats::StatGroup root("root");
    DramDevice dram("dram", eq, ddr, &root, 1 * MiB);
    dram.image().write64(0x500, 0xCAFE);
    dram.powerLoss();
    EXPECT_EQ(dram.image().read64(0x500), 0u);
}

} // namespace
