/** @file End-to-end system tests: host port through ConTutto. */

#include <gtest/gtest.h>

#include <cstring>

#include "cpu/energy.hh"
#include "cpu/system.hh"

using namespace contutto;
using namespace contutto::cpu;
using namespace contutto::dmi;

namespace
{

Power8System::Params
smallSystem(BufferKind kind = BufferKind::contutto)
{
    Power8System::Params p;
    p.buffer = kind;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

TEST(System, TrainsAndServesReadWrite)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());
    EXPECT_GT(sys.trainingResult().frtl, 0u);

    CacheLine line;
    for (std::size_t i = 0; i < line.size(); ++i)
        line[i] = std::uint8_t(i);

    bool wrote = false;
    sys.port().write(0x10000, line,
                     [&](const HostOpResult &) { wrote = true; });
    ASSERT_TRUE(sys.runUntilIdle());
    ASSERT_TRUE(wrote);

    bool read_ok = false;
    sys.port().read(0x10000, [&](const HostOpResult &r) {
        read_ok = true;
        EXPECT_EQ(r.data, line);
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_TRUE(read_ok);
}

TEST(System, ReadOfUntouchedMemoryIsZero)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());
    bool ok = false;
    sys.port().read(0x2000000, [&](const HostOpResult &r) {
        ok = true;
        for (auto b : r.data)
            EXPECT_EQ(b, 0);
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_TRUE(ok);
}

TEST(System, PartialWriteMergesAtomically)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());

    CacheLine base;
    base.fill(0x11);
    bool done = false;
    sys.port().write(0x5000, base,
                     [&](const HostOpResult &) { done = true; });
    ASSERT_TRUE(sys.runUntilIdle());

    CacheLine update;
    update.fill(0xEE);
    ByteEnable en;
    en.set(0);
    en.set(100);
    done = false;
    sys.port().partialWrite(0x5000, update, en,
                            [&](const HostOpResult &) { done = true; });
    ASSERT_TRUE(sys.runUntilIdle());
    ASSERT_TRUE(done);

    sys.port().read(0x5000, [&](const HostOpResult &r) {
        EXPECT_EQ(r.data[0], 0xEE);
        EXPECT_EQ(r.data[1], 0x11);
        EXPECT_EQ(r.data[100], 0xEE);
        EXPECT_EQ(r.data[127], 0x11);
    });
    ASSERT_TRUE(sys.runUntilIdle());
}

TEST(System, InlineMinMaxStore)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());

    CacheLine init{};
    for (unsigned lane = 0; lane < 16; ++lane) {
        std::int64_t v = 100 + lane;
        std::memcpy(init.data() + lane * 8, &v, 8);
    }
    sys.port().write(0x9000, init, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());

    CacheLine candidate{};
    for (unsigned lane = 0; lane < 16; ++lane) {
        std::int64_t v = (lane % 2 == 0) ? 50 : 500;
        std::memcpy(candidate.data() + lane * 8, &v, 8);
    }
    sys.port().minStore(0x9000, candidate, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());

    sys.port().read(0x9000, [&](const HostOpResult &r) {
        for (unsigned lane = 0; lane < 16; ++lane) {
            std::int64_t v;
            std::memcpy(&v, r.data.data() + lane * 8, 8);
            std::int64_t expect =
                (lane % 2 == 0) ? 50 : std::int64_t(100 + lane);
            EXPECT_EQ(v, expect) << "lane " << lane;
        }
    });
    ASSERT_TRUE(sys.runUntilIdle());

    sys.port().maxStore(0x9000, candidate, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());
    sys.port().read(0x9000, [&](const HostOpResult &r) {
        std::int64_t v;
        std::memcpy(&v, r.data.data() + 8, 8); // lane 1
        EXPECT_EQ(v, 500);
    });
    ASSERT_TRUE(sys.runUntilIdle());
}

TEST(System, InlineCondSwap)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());

    CacheLine init{};
    std::int64_t v = 42;
    std::memcpy(init.data(), &v, 8);
    sys.port().write(0xA000, init, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());

    // Failing swap: expected 7 != current 42.
    bool failed_cb = false;
    sys.port().condSwap(0xA000, 7, 99, [&](const HostOpResult &r) {
        failed_cb = true;
        EXPECT_FALSE(r.swapSucceeded);
        std::int64_t old;
        std::memcpy(&old, r.data.data(), 8);
        EXPECT_EQ(old, 42);
    });
    ASSERT_TRUE(sys.runUntilIdle());
    ASSERT_TRUE(failed_cb);

    // Succeeding swap.
    bool ok_cb = false;
    sys.port().condSwap(0xA000, 42, 99, [&](const HostOpResult &r) {
        ok_cb = true;
        EXPECT_TRUE(r.swapSucceeded);
    });
    ASSERT_TRUE(sys.runUntilIdle());
    ASSERT_TRUE(ok_cb);

    sys.port().read(0xA000, [&](const HostOpResult &r) {
        std::int64_t now;
        std::memcpy(&now, r.data.data(), 8);
        EXPECT_EQ(now, 99);
    });
    ASSERT_TRUE(sys.runUntilIdle());
}

TEST(System, FlushCompletesAfterOutstandingWrites)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());

    CacheLine line;
    line.fill(0x55);
    int writes_done = 0;
    Tick flush_done_at = 0;
    Tick last_write_at = 0;
    for (int i = 0; i < 8; ++i) {
        sys.port().write(Addr(i) * 128, line,
                         [&](const HostOpResult &r) {
                             ++writes_done;
                             last_write_at =
                                 std::max(last_write_at, r.doneAt);
                         });
    }
    sys.port().flush([&](const HostOpResult &r) {
        flush_done_at = r.doneAt;
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_EQ(writes_done, 8);
    ASSERT_GT(flush_done_at, 0u);
    // Flush must not complete before the writes it covers.
    EXPECT_GE(flush_done_at, last_write_at);
}

TEST(System, TagExhaustionStallsButCompletes)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());

    int done = 0;
    for (int i = 0; i < 100; ++i)
        sys.port().read(Addr(i) * 4096,
                        [&](const HostOpResult &) { ++done; });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_EQ(done, 100);
    EXPECT_GT(sys.port().portStats().tagStalls.value(), 0.0);
}

TEST(System, SurvivesChannelErrorsEndToEnd)
{
    auto p = smallSystem();
    p.channelErrorRate = 0.01;
    Power8System sys(p);
    ASSERT_TRUE(sys.train());

    CacheLine line;
    line.fill(0x77);
    int done = 0;
    for (int i = 0; i < 50; ++i)
        sys.port().write(Addr(i) * 128, line,
                         [&](const HostOpResult &) { ++done; });
    ASSERT_TRUE(sys.runUntilIdle(milliseconds(200)));
    EXPECT_EQ(done, 50);

    int reads_ok = 0;
    for (int i = 0; i < 50; ++i)
        sys.port().read(Addr(i) * 128, [&](const HostOpResult &r) {
            ++reads_ok;
            EXPECT_EQ(r.data[0], 0x77);
        });
    ASSERT_TRUE(sys.runUntilIdle(milliseconds(200)));
    EXPECT_EQ(reads_ok, 50);
}

TEST(System, MramAndNvdimmBehindConTutto)
{
    Power8System::Params p;
    p.buffer = BufferKind::contutto;
    p.dimms = {
        DimmSpec{mem::MemTech::sttMram, 256 * MiB,
                 mem::MramDevice::Junction::pMTJ, {}},
        DimmSpec{mem::MemTech::nvdimmN, 256 * MiB, {}, {}},
    };
    Power8System sys(p);
    ASSERT_TRUE(sys.train());

    CacheLine line;
    line.fill(0x3C);
    bool done = false;
    sys.port().write(0x4000, line,
                     [&](const HostOpResult &) { done = true; });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_TRUE(done);
    sys.port().read(0x4000, [&](const HostOpResult &r) {
        EXPECT_EQ(r.data[5], 0x3C);
    });
    ASSERT_TRUE(sys.runUntilIdle());
    EXPECT_EQ(sys.dimm(0).tech(), mem::MemTech::sttMram);
    EXPECT_EQ(sys.dimm(1).tech(), mem::MemTech::nvdimmN);
}

TEST(System, FunctionalAccessRoundTripsThroughTimingPath)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());

    std::vector<std::uint8_t> blob(1000);
    for (std::size_t i = 0; i < blob.size(); ++i)
        blob[i] = std::uint8_t(i * 7);
    sys.functionalWrite(0x20000, blob.size(), blob.data());

    // Timing-path read must see functionally staged data.
    sys.port().read(0x20000, [&](const HostOpResult &r) {
        for (int i = 0; i < 128; ++i)
            EXPECT_EQ(r.data[i], std::uint8_t(i * 7));
    });
    ASSERT_TRUE(sys.runUntilIdle());

    // And the reverse: timing write visible functionally.
    CacheLine line;
    line.fill(0x99);
    sys.port().write(0x30000, line, nullptr);
    ASSERT_TRUE(sys.runUntilIdle());
    std::uint8_t out[128];
    sys.functionalRead(0x30000, 128, out);
    EXPECT_EQ(out[0], 0x99);
    EXPECT_EQ(out[127], 0x99);
}

TEST(EnergyMeter, AccountsTrafficByComponent)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());
    EnergyMeter meter(sys);

    // 16 reads: link, dram, host and buffer columns all move.
    int done = 0;
    for (int i = 0; i < 16; ++i)
        sys.port().read(Addr(i) * 4096,
                        [&](const HostOpResult &) { ++done; });
    ASSERT_TRUE(sys.runUntilIdle());
    ASSERT_EQ(done, 16);

    auto r = meter.report();
    EXPECT_GT(r.linkPj, 0.0);
    EXPECT_GT(r.dramPj, 0.0);
    EXPECT_GT(r.hostPj, 0.0);
    EXPECT_GT(r.bufferPj, 0.0);
    EXPECT_EQ(r.apPj, 0.0);
    // DRAM: 16 lines x 128 B x 200 pJ/B = 409.6 nJ.
    EXPECT_NEAR(r.dramPj, 16 * 128 * 200.0, 1.0);
    // Host: 16 lines at 200 pJ each.
    EXPECT_NEAR(r.hostPj, 16 * 200.0, 1.0);

    // reset() re-baselines.
    meter.reset();
    EXPECT_EQ(meter.report().totalPj(), 0.0);
}

TEST(System, RandomMixedTrafficMatchesReferenceModel)
{
    Power8System sys(smallSystem());
    ASSERT_TRUE(sys.train());
    Rng rng(777);

    // Reference model of a small region.
    constexpr Addr region = 64 * 1024;
    std::vector<std::uint8_t> ref(region, 0);

    for (int round = 0; round < 60; ++round) {
        Addr addr = (rng.below(region / 128)) * 128;
        if (rng.chance(0.5)) {
            CacheLine line;
            for (auto &b : line)
                b = std::uint8_t(rng.next());
            std::memcpy(ref.data() + addr, line.data(), 128);
            sys.port().write(addr, line, nullptr);
        } else {
            std::uint8_t expect[128];
            std::memcpy(expect, ref.data() + addr, 128);
            sys.port().read(addr, [expect](const HostOpResult &r) {
                for (int i = 0; i < 128; ++i)
                    ASSERT_EQ(r.data[i], expect[i]);
            });
        }
        // Interleave: only sync every few ops to get overlap.
        if (round % 7 == 6)
            ASSERT_TRUE(sys.runUntilIdle());
    }
    ASSERT_TRUE(sys.runUntilIdle());
}

} // namespace
