/** @file Cache hierarchy tests, including cached trace replay. */

#include <gtest/gtest.h>

#include "cpu/system.hh"
#include "cpu/trace_replay.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

TEST(CacheHierarchy, SmallWorkingSetLivesInL1)
{
    stats::StatGroup root("root");
    CacheHierarchy caches("caches", &root, {});
    // 32 KiB working set inside the 64 KiB L1.
    Rng rng(1);
    for (int i = 0; i < 20000; ++i)
        caches.access(rng.below(32 * KiB / 128) * 128,
                      rng.chance(0.3));
    EXPECT_GT(caches.l1HitRate(), 0.95);
    EXPECT_LT(caches.memoryRate(), 0.05);
}

TEST(CacheHierarchy, WorkingSetsLandAtTheRightLevel)
{
    stats::StatGroup root("root");

    auto memory_rate = [&](std::uint64_t ws, const char *name) {
        CacheHierarchy caches(name, &root, {});
        // Warm: touch every line so cold misses don't pollute the
        // capacity measurement.
        for (Addr a = 0; a < ws; a += 128)
            caches.access(a, false);
        double refs0 = caches.hierarchyStats().references.value();
        double mem0 = caches.hierarchyStats().memoryAccesses.value();
        Rng rng(2);
        for (int i = 0; i < 30000; ++i)
            caches.access(rng.below(ws / 128) * 128, false);
        double refs =
            caches.hierarchyStats().references.value() - refs0;
        double mem =
            caches.hierarchyStats().memoryAccesses.value() - mem0;
        return mem / refs;
    };

    double tiny = memory_rate(32 * KiB, "c1");   // fits L1
    double mid = memory_rate(256 * KiB, "c2");   // fits L2
    double big = memory_rate(4 * MiB, "c3");     // fits L3
    double huge = memory_rate(64 * MiB, "c4");   // spills to memory

    EXPECT_LT(tiny, 0.05);
    EXPECT_LT(mid, 0.10);
    EXPECT_LT(big, 0.25);
    EXPECT_GT(huge, 0.70);
    EXPECT_LT(tiny, huge);
}

TEST(CacheHierarchy, DirtyVictimsGenerateWritebacks)
{
    stats::StatGroup root("root");
    CacheHierarchy::Params p;
    p.l1 = {8 * KiB, 2, picoseconds(750)};
    p.l2 = {16 * KiB, 2, nanoseconds(3)};
    p.l3 = {32 * KiB, 2, nanoseconds(9)};
    CacheHierarchy caches("caches", &root, p);

    // Dirty a large footprint so L3 keeps evicting dirty lines.
    int writebacks = 0;
    for (Addr a = 0; a < 1 * MiB; a += 128) {
        auto r = caches.access(a, true);
        if (r.writeback)
            ++writebacks;
    }
    EXPECT_GT(writebacks, 1000);
    EXPECT_EQ(caches.hierarchyStats().writebacks.value(),
              double(writebacks));
}

TEST(CacheHierarchy, HitDelaysOrdered)
{
    stats::StatGroup root("root");
    CacheHierarchy caches("caches", &root, {});
    auto miss = caches.access(0x10000, false);
    EXPECT_EQ(miss.servedBy, CacheHierarchy::Level::memory);
    auto hit1 = caches.access(0x10000, false);
    EXPECT_EQ(hit1.servedBy, CacheHierarchy::Level::l1);
    EXPECT_LT(hit1.delay, miss.delay + nanoseconds(20));
}

TEST(CachedReplay, CachesAbsorbSmallFootprints)
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};

    auto run = [&](Addr footprint, Tick &runtime,
                   std::uint64_t &hits) {
        Power8System sys(p);
        EXPECT_TRUE(sys.train());
        CacheHierarchy caches("caches", &sys, {});
        // Warm the hierarchy over the footprint first.
        for (Addr a = 0; a < footprint && a < 16 * MiB; a += 128)
            caches.access(a, false);
        auto trace = MemTrace::synthesize(800, nanoseconds(10),
                                          footprint, 0.3, 0.5, 23);
        TraceReplayer::Params rp;
        rp.caches = &caches;
        TraceReplayer replayer("replay", sys.eventq(),
                               sys.nestDomain(), &sys, rp,
                               sys.port());
        bool finished = false;
        TraceReplayer::Result result;
        replayer.start(trace, [&](const TraceReplayer::Result &r) {
            result = r;
            finished = true;
        });
        while (!finished && sys.eventq().step()) {
        }
        runtime = result.runtime;
        hits = result.cacheHits;
    };

    Tick small_rt = 0, big_rt = 0;
    std::uint64_t small_hits = 0, big_hits = 0;
    run(64 * KiB, small_rt, small_hits);
    run(128 * MiB, big_rt, big_hits);

    // The hot trace mostly hits on-chip and finishes far sooner.
    EXPECT_GT(small_hits, 700u);
    EXPECT_LT(big_hits, 400u);
    EXPECT_GT(double(big_rt), double(small_rt) * 2.0);
}

} // namespace
