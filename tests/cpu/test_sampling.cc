/**
 * @file
 * Sampled execution through the real drivers: determinism (same
 * seed, byte-identical stats; serial vs task farm), error bounds
 * against full detail, and functional state parity.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/core_model.hh"
#include "cpu/system.hh"
#include "cpu/trace_replay.hh"
#include "sim/parallel.hh"
#include "workloads/spec.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

Power8System::Params
smallCard()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

WorkloadProfile
missHeavy()
{
    WorkloadProfile prof;
    prof.name = "missHeavy";
    prof.baseCpi = 1.0;
    prof.missesPerKiloInstr = 30;
    prof.chaseFraction = 0.05;
    prof.streamFraction = 0.2;
    prof.mlp = 8;
    prof.workingSet = 64 * MiB;
    return prof;
}

sim::SamplingConfig
testSampling()
{
    sim::SamplingConfig cfg;
    cfg.enabled = true;
    cfg.warmupUnits = 16;
    cfg.windowUnits = 64;
    cfg.periodUnits = 1024;
    return cfg;
}

/** One sampled CoreModel run on a fresh system; returns the full
 *  stats-JSON of the system (sampler stats included). */
std::string
sampledRunJson(const sim::SamplingConfig &cfg, std::uint64_t seed,
               CoreModel::Result *out = nullptr)
{
    Power8System sys(smallCard());
    EXPECT_TRUE(sys.train());
    ClockDomain core("core", 250);
    CoreModel::Params cp;
    cp.instructions = 200000;
    cp.seed = seed;
    if (cfg.enabled)
        cp.sampler = &sys.enableSampling(cfg, seed);
    CoreModel model("core", sys.eventq(), core, &sys, missHeavy(),
                    cp, sys.port());
    bool finished = false;
    CoreModel::Result result;
    model.start([&](const CoreModel::Result &r) {
        result = r;
        finished = true;
    });
    while (!finished && sys.eventq().step()) {
    }
    EXPECT_TRUE(finished);
    if (out)
        *out = result;
    std::ostringstream os;
    stats::toJson(sys, os);
    return os.str();
}

TEST(SampledCore, SameSeedByteIdenticalStats)
{
    CoreModel::Result a, b;
    std::string ja = sampledRunJson(testSampling(), 7, &a);
    std::string jb = sampledRunJson(testSampling(), 7, &b);
    EXPECT_EQ(ja, jb);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.misses, b.misses);

    // A different seed moves the run (schedule and addresses).
    std::string jc = sampledRunJson(testSampling(), 8);
    EXPECT_NE(ja, jc);
}

TEST(SampledCore, SerialAndTaskFarmAreByteIdentical)
{
    // Four sampled runs as a task farm across 2 shards, then the
    // same four serially: the stats JSON must match byte for byte.
    const std::uint64_t seeds[] = {1, 2, 3, 4};
    auto farm = [&](sim::ShardedExecutor::Mode mode) {
        std::vector<std::string> out(4);
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 4; ++i)
            tasks.push_back([&out, &seeds, i] {
                out[i] = sampledRunJson(testSampling(), seeds[i]);
            });
        sim::ShardedExecutor::runTasks(2, mode, tasks);
        return out;
    };
    auto parallel = farm(sim::ShardedExecutor::Mode::parallel);
    auto serial = farm(sim::ShardedExecutor::Mode::serial);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(parallel[i], serial[i]) << "seed " << seeds[i];
}

TEST(SampledCore, DisabledSamplerMatchesNullSampler)
{
    // A present-but-disabled controller must not perturb the run:
    // the RNG draw order is identical, so runtime and misses are.
    CoreModel::Result with, without;
    sim::SamplingConfig off; // enabled = false
    sampledRunJson(off, 11, &without);

    Power8System sys(smallCard());
    ASSERT_TRUE(sys.train());
    sim::SamplingController ctl(off, 11);
    ClockDomain core("core", 250);
    CoreModel::Params cp;
    cp.instructions = 200000;
    cp.seed = 11;
    cp.sampler = &ctl;
    CoreModel model("core", sys.eventq(), core, &sys, missHeavy(),
                    cp, sys.port());
    bool finished = false;
    model.start([&](const CoreModel::Result &r) {
        with = r;
        finished = true;
    });
    while (!finished && sys.eventq().step()) {
    }
    ASSERT_TRUE(finished);
    EXPECT_EQ(with.runtime, without.runtime);
    EXPECT_EQ(with.misses, without.misses);
}

TEST(SampledCore, ErrorBoundAgainstFullDetail)
{
    // Calibration-length workload, both regimes, same seed: the
    // sampled stitched runtime must sit within 5% of the detailed
    // truth, and the reported 95% CI around the statistical
    // estimate must cover it. Deterministic per seed, so this is a
    // regression gate, not a flaky statistical assertion.
    using workloads::runSpecProfile;
    using workloads::specCint2006;
    const auto profiles = specCint2006();
    const WorkloadProfile *mcf = nullptr;
    for (const auto &p : profiles)
        if (p.name == "429.mcf")
            mcf = &p;
    ASSERT_NE(mcf, nullptr);

    const std::uint64_t instructions = 400000;
    Power8System detail(smallCard());
    ASSERT_TRUE(detail.train());
    auto d = runSpecProfile(detail, *mcf, instructions);

    Power8System sampled(smallCard());
    ASSERT_TRUE(sampled.train());
    auto s = runSpecProfile(sampled, *mcf, instructions,
                            testSampling());

    ASSERT_GT(d.runtimeSeconds, 0.0);
    double relErr =
        std::abs(s.runtimeSeconds - d.runtimeSeconds)
        / d.runtimeSeconds;
    EXPECT_LT(relErr, 0.05) << "sampled " << s.runtimeSeconds
                            << " detail " << d.runtimeSeconds;

    ASSERT_TRUE(s.sampling.enabled);
    EXPECT_GE(s.sampling.windows, 2u);
    double est = s.sampling.estimatedRuntimeSec();
    double ciHalf =
        ticksToSeconds(Tick(s.sampling.ciHalfWidthTicks));
    EXPECT_LE(std::abs(est - d.runtimeSeconds), ciHalf)
        << "estimate " << est << " ± " << ciHalf << " vs detail "
        << d.runtimeSeconds;

    // And it actually fast-forwarded most of the work.
    EXPECT_GT(s.sampling.fastForwardUnits,
              s.sampling.detailedUnits);
}

TEST(SampledReplay, CacheContentsStayExact)
{
    // The cache hierarchy is probed functionally in both regimes:
    // hit/miss/writeback counts must be identical detailed vs
    // sampled even though most channel trips are fast-forwarded.
    auto trace = MemTrace::synthesize(6000, nanoseconds(10),
                                      32 * MiB, 0.3, 0.1, 21);

    auto run = [&](bool sampledMode) {
        Power8System sys(smallCard());
        EXPECT_TRUE(sys.train());
        CacheHierarchy caches("caches", &sys, {});
        TraceReplayer::Params rp;
        rp.caches = &caches;
        if (sampledMode) {
            sim::SamplingConfig cfg = testSampling();
            cfg.warmupUnits = 8;
            cfg.windowUnits = 32;
            cfg.periodUnits = 256;
            rp.sampler = &sys.enableSampling(cfg, 5);
        }
        TraceReplayer replayer("replay", sys.eventq(),
                               sys.nestDomain(), &sys, rp,
                               sys.port());
        bool finished = false;
        TraceReplayer::Result result;
        replayer.start(trace, [&](const TraceReplayer::Result &r) {
            result = r;
            finished = true;
        });
        while (!finished && sys.eventq().step()) {
        }
        EXPECT_TRUE(finished);
        return result;
    };

    auto detailed = run(false);
    auto sampled = run(true);
    EXPECT_EQ(detailed.cacheHits, sampled.cacheHits);
    EXPECT_EQ(detailed.writebacks, sampled.writebacks);
    EXPECT_EQ(detailed.reads, sampled.reads);
    EXPECT_EQ(detailed.writes, sampled.writes);
    EXPECT_EQ(detailed.computeTime, sampled.computeTime);
}

TEST(SampledReplay, SameSeedSameRuntime)
{
    auto trace = MemTrace::synthesize(4000, nanoseconds(10),
                                      32 * MiB, 0.3, 0.1, 33);
    auto run = [&] {
        Power8System sys(smallCard());
        EXPECT_TRUE(sys.train());
        TraceReplayer::Params rp;
        sim::SamplingConfig cfg;
        cfg.enabled = true;
        cfg.warmupUnits = 8;
        cfg.windowUnits = 32;
        cfg.periodUnits = 256;
        rp.sampler = &sys.enableSampling(cfg, 17);
        TraceReplayer replayer("replay", sys.eventq(),
                               sys.nestDomain(), &sys, rp,
                               sys.port());
        bool finished = false;
        TraceReplayer::Result result;
        replayer.start(trace, [&](const TraceReplayer::Result &r) {
            result = r;
            finished = true;
        });
        while (!finished && sys.eventq().step()) {
        }
        EXPECT_TRUE(finished);
        return result.runtime;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
