/** @file Core model latency-sensitivity tests. */

#include <gtest/gtest.h>

#include "cpu/core_model.hh"
#include "cpu/system.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

Power8System::Params
smallCard()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

CoreModel::Result
runProfile(Power8System &sys, const WorkloadProfile &prof,
           std::uint64_t instructions = 300000)
{
    ClockDomain core("core", 250); // 4 GHz
    CoreModel::Params cp;
    cp.instructions = instructions;
    CoreModel model("core", sys.eventq(), core, &sys, prof, cp,
                    sys.port());
    bool finished = false;
    CoreModel::Result result;
    model.start([&](const CoreModel::Result &r) {
        result = r;
        finished = true;
    });
    while (!finished && sys.eventq().step()) {
    }
    EXPECT_TRUE(finished);
    return result;
}

TEST(CoreModel, ComputeBoundWorkloadIgnoresMemoryLatency)
{
    WorkloadProfile prof;
    prof.name = "computeBound";
    prof.baseCpi = 0.8;
    prof.missesPerKiloInstr = 0.05;

    Power8System a(smallCard());
    ASSERT_TRUE(a.train());
    auto r0 = runProfile(a, prof);

    Power8System b(smallCard());
    ASSERT_TRUE(b.train());
    b.card()->mbs().setKnobPosition(7); // +168 ns to memory
    auto r7 = runProfile(b, prof);

    double slowdown = double(r7.runtime) / double(r0.runtime);
    EXPECT_LT(slowdown, 1.03);
    // CPI should be near the base CPI.
    EXPECT_NEAR(r0.cpi, prof.baseCpi, 0.25);
}

TEST(CoreModel, PointerChaseWorkloadDegradesSteeply)
{
    WorkloadProfile prof;
    prof.name = "chaseHeavy";
    prof.baseCpi = 0.9;
    prof.missesPerKiloInstr = 30;
    prof.chaseFraction = 0.7;
    prof.streamFraction = 0.05;
    prof.mlp = 4;

    Power8System a(smallCard());
    ASSERT_TRUE(a.train());
    auto r0 = runProfile(a, prof, 100000);

    Power8System b(smallCard());
    ASSERT_TRUE(b.train());
    b.card()->mbs().setKnobPosition(7);
    auto r7 = runProfile(b, prof, 100000);

    double slowdown = double(r7.runtime) / double(r0.runtime);
    EXPECT_GT(slowdown, 1.15);
}

TEST(CoreModel, StreamingHidesLatencyBetterThanChasing)
{
    WorkloadProfile stream;
    stream.name = "streaming";
    stream.missesPerKiloInstr = 12;
    stream.chaseFraction = 0.0;
    stream.streamFraction = 0.95;

    WorkloadProfile chase = stream;
    chase.name = "chasing";
    chase.chaseFraction = 0.8;
    chase.streamFraction = 0.05;

    auto slowdown_of = [&](const WorkloadProfile &prof) {
        Power8System a(smallCard());
        EXPECT_TRUE(a.train());
        auto r0 = runProfile(a, prof, 100000);
        Power8System b(smallCard());
        EXPECT_TRUE(b.train());
        b.card()->mbs().setKnobPosition(7);
        auto r7 = runProfile(b, prof, 100000);
        return double(r7.runtime) / double(r0.runtime);
    };

    double s_stream = slowdown_of(stream);
    double s_chase = slowdown_of(chase);
    EXPECT_LT(s_stream, s_chase);
}

TEST(CoreModel, ReportsPlausibleCounts)
{
    WorkloadProfile prof;
    prof.name = "counter";
    prof.missesPerKiloInstr = 10;

    Power8System sys(smallCard());
    ASSERT_TRUE(sys.train());
    auto r = runProfile(sys, prof, 200000);
    EXPECT_EQ(r.instructions, 200000u);
    // ~10 MPKI over 200k instructions = ~2000 misses (jittered).
    EXPECT_GT(r.misses, 1000u);
    EXPECT_LT(r.misses, 4000u);
    EXPECT_GT(r.cpi, prof.baseCpi); // memory cost shows up
}

} // namespace
