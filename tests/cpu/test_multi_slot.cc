/** @file Multi-slot socket tests: plug rules, interleave, scaling. */

#include <gtest/gtest.h>

#include <atomic>

#include "cpu/multi_slot.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

ChannelParams
smallChannel(std::uint64_t dimm = 64 * MiB)
{
    ChannelParams p;
    p.dimms = {DimmSpec{mem::MemTech::dram, dimm, {}, {}},
               DimmSpec{mem::MemTech::dram, dimm, {}, {}}};
    return p;
}

MultiSlotSystem::Params
allCdimm(unsigned n = 8)
{
    MultiSlotSystem::Params p;
    for (unsigned s = 0; s < MultiSlotSystem::numSlots; ++s) {
        p.slots[s].kind =
            s < n ? SlotKind::cdimm : SlotKind::empty;
        p.slots[s].channel = smallChannel();
    }
    return p;
}

TEST(PlugRules, ContuttoOnlyInEvenSlots)
{
    auto p = allCdimm(8);
    p.slots[3].kind = SlotKind::contutto;
    auto v = MultiSlotSystem::validate(p);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("even"), std::string::npos);
}

TEST(PlugRules, ContuttoBlocksAdjacentSlot)
{
    auto p = allCdimm(8);
    p.slots[2].kind = SlotKind::contutto;
    // slot 3 still holds a CDIMM: violates the blocking rule.
    auto v = MultiSlotSystem::validate(p);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("blocks"), std::string::npos);

    p.slots[3].kind = SlotKind::empty;
    EXPECT_TRUE(MultiSlotSystem::validate(p).ok);
}

TEST(PlugRules, PaperConfigurationsAreLegal)
{
    // One ConTutto + six CDIMMs (paper §3.1).
    auto one = allCdimm(8);
    one.slots[0].kind = SlotKind::contutto;
    one.slots[1].kind = SlotKind::empty;
    EXPECT_TRUE(MultiSlotSystem::validate(one).ok);

    // Two ConTutto + four CDIMMs.
    auto two = allCdimm(8);
    two.slots[0].kind = SlotKind::contutto;
    two.slots[1].kind = SlotKind::empty;
    two.slots[2].kind = SlotKind::contutto;
    two.slots[3].kind = SlotKind::empty;
    EXPECT_TRUE(MultiSlotSystem::validate(two).ok);

    // The validator is also what the constructor enforces.
    auto bad = allCdimm(8);
    bad.slots[1].kind = SlotKind::contutto;
    EXPECT_THROW(MultiSlotSystem{bad}, FatalError);
}

TEST(MultiSlot, MixedConfigTrainsAndServes)
{
    auto p = allCdimm(4);
    p.slots[0].kind = SlotKind::contutto;
    p.slots[1].kind = SlotKind::empty;
    MultiSlotSystem socket(p);
    ASSERT_EQ(socket.populatedChannels(), 3u);
    ASSERT_TRUE(socket.trainAll());

    // The ConTutto channel and the CDIMM channels all serve global
    // interleaved traffic.
    dmi::CacheLine line;
    int done = 0;
    for (int i = 0; i < 30; ++i) {
        line.fill(std::uint8_t(i + 1));
        socket.write(Addr(i) * 128, line,
                     [&](const HostOpResult &) { ++done; });
    }
    ASSERT_TRUE(socket.runUntilIdle());
    EXPECT_EQ(done, 30);

    int verified = 0;
    for (int i = 0; i < 30; ++i) {
        std::uint8_t expect = std::uint8_t(i + 1);
        socket.read(Addr(i) * 128,
                    [&, expect](const HostOpResult &r) {
                        if (r.data[0] == expect)
                            ++verified;
                    });
    }
    ASSERT_TRUE(socket.runUntilIdle());
    EXPECT_EQ(verified, 30);
}

TEST(MultiSlot, InterleaveCoversAllChannels)
{
    auto p = allCdimm(4);
    MultiSlotSystem socket(p);
    std::vector<unsigned> counts(4, 0);
    for (Addr a = 0; a < 4096 * 128; a += 128)
        ++counts[socket.channelOf(a)];
    for (unsigned c : counts)
        EXPECT_EQ(c, 1024u);
    // Local addresses are dense per channel.
    EXPECT_EQ(socket.localAddr(0), 0u);
    EXPECT_EQ(socket.localAddr(4 * 128), 128u);
    EXPECT_EQ(socket.localAddr(4 * 128 + 5), 133u);
}

TEST(MultiSlot, BandwidthScalesWithChannels)
{
    double bw2, bw8;
    {
        MultiSlotSystem socket(allCdimm(2));
        ASSERT_TRUE(socket.trainAll());
        bw2 = socket.measureAggregateReadBandwidth();
    }
    {
        MultiSlotSystem socket(allCdimm(8));
        ASSERT_TRUE(socket.trainAll());
        bw8 = socket.measureAggregateReadBandwidth();
    }
    // Near-linear channel scaling (the Figure 1 organization).
    EXPECT_GT(bw8, bw2 * 3.2);
    // And each Centaur channel sustains double-digit GB/s.
    EXPECT_GT(bw2, 20.0);
}

MultiSlotSystem::Params
shardedCdimm(unsigned channels, unsigned shards, bool parallel)
{
    auto p = allCdimm(channels);
    p.shards = shards;
    p.parallelExec = parallel;
    return p;
}

TEST(ShardedSocket, DerivedWindowTracksFrameLatency)
{
    // 28-byte downstream frame = 224 bits on 14 lanes = 16 UI;
    // plus 1 ns flight; x1024 batching.
    auto cdimm = allCdimm(4);
    EXPECT_EQ(MultiSlotSystem::deriveWindow(cdimm),
              Tick((16 * 104 + 1000) * 1024));
    auto mixed = allCdimm(4);
    mixed.slots[0].kind = SlotKind::contutto;
    mixed.slots[1].kind = SlotKind::empty;
    // The CDIMM channels' faster UI...no: 104 < 125, so the CDIMM
    // frame is the *minimum* and still governs the lookahead.
    EXPECT_EQ(MultiSlotSystem::deriveWindow(mixed),
              Tick((16 * 104 + 1000) * 1024));
}

TEST(ShardedSocket, TrainsAndServesInterleavedTraffic)
{
    for (bool parallel : {false, true}) {
        MultiSlotSystem socket(shardedCdimm(4, 4, parallel));
        ASSERT_TRUE(socket.sharded());
        ASSERT_TRUE(socket.trainAll()) << "parallel=" << parallel;

        // Ops issued from setup complete on each channel's own
        // shard, so these counters are written from several worker
        // threads: atomics, settled by runUntilIdle's barrier.
        dmi::CacheLine line;
        std::atomic<int> done{0};
        for (int i = 0; i < 40; ++i) {
            line.fill(std::uint8_t(i + 1));
            socket.write(Addr(i) * 128, line,
                         [&](const HostOpResult &) { ++done; });
        }
        ASSERT_TRUE(socket.runUntilIdle());
        EXPECT_EQ(done.load(), 40);

        std::atomic<int> verified{0};
        for (int i = 0; i < 40; ++i) {
            std::uint8_t expect = std::uint8_t(i + 1);
            socket.read(Addr(i) * 128,
                        [&, expect](const HostOpResult &r) {
                            if (r.data[0] == expect)
                                ++verified;
                        });
        }
        ASSERT_TRUE(socket.runUntilIdle());
        EXPECT_EQ(verified.load(), 40) << "parallel=" << parallel;
    }
}

TEST(ShardedSocket, CrossShardCompletionsComeBackToTheCaller)
{
    // An op issued from inside channel 0's shard against channel 1
    // (a foreign shard) must cross out and back via mailboxes and
    // still complete — the socket-arbitration path of the paper's
    // Figure 1 organization.
    MultiSlotSystem socket(shardedCdimm(4, 4, true));
    ASSERT_TRUE(socket.trainAll());

    bool peer_done = false;
    unsigned completion_shard = ~0u;
    dmi::CacheLine line;
    line.fill(0x5a);
    // Hop onto shard 0 via its queue, then talk to channel 1.
    socket.executor()->post(
        0, socket.channelQueue(0).curTick(), [&] {
            socket.write(Addr(1) * 128, line,
                         [&](const HostOpResult &) {
                             peer_done = true;
                             completion_shard =
                                 socket.executor()->currentShard();
                         });
        });
    ASSERT_TRUE(socket.runUntilIdle());
    EXPECT_TRUE(peer_done);
    // The completion ran back on the issuing shard, not channel 1's.
    EXPECT_EQ(completion_shard, 0u);
    EXPECT_GE(socket.executor()->counters().messages, 2u);
}

TEST(ShardedSocket, SerialAndParallelBandwidthBitIdentical)
{
    // The measured number is a pure function of simulated time, so
    // the serial fallback and the threaded run must agree exactly —
    // double-equality, not tolerance.
    auto measure = [](bool parallel, unsigned shards) {
        MultiSlotSystem socket(shardedCdimm(4, shards, parallel));
        EXPECT_TRUE(socket.trainAll());
        return socket.measureAggregateReadBandwidth(microseconds(8));
    };
    for (unsigned shards : {2u, 4u}) {
        double serial = measure(false, shards);
        double parallel = measure(true, shards);
        EXPECT_EQ(serial, parallel) << shards << " shards";
        EXPECT_GT(serial, 20.0);
    }
}

TEST(MultiSlot, OneTerabyteSocket)
{
    // Paper §2.1: up to 1 TB per fully configured socket.
    MultiSlotSystem::Params p;
    for (unsigned s = 0; s < 8; ++s) {
        p.slots[s].kind = SlotKind::cdimm;
        p.slots[s].channel = smallChannel(64 * GiB);
    }
    MultiSlotSystem socket(p);
    EXPECT_EQ(socket.totalCapacity(), 1024 * GiB);
}

} // namespace
