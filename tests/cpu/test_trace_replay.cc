/** @file Trace format and replay tests. */

#include <gtest/gtest.h>

#include "cpu/trace_replay.hh"
#include "cpu/system.hh"

using namespace contutto;
using namespace contutto::cpu;

namespace
{

Power8System::Params
smallCard()
{
    Power8System::Params p;
    p.dimms = {DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}},
               DimmSpec{mem::MemTech::dram, 256 * MiB, {}, {}}};
    return p;
}

TraceReplayer::Result
replay(Power8System &sys, const MemTrace &trace,
       TraceReplayer::Params rp = {})
{
    TraceReplayer replayer("replay", sys.eventq(), sys.nestDomain(),
                           &sys, rp, sys.port());
    bool finished = false;
    TraceReplayer::Result result;
    replayer.start(trace, [&](const TraceReplayer::Result &r) {
        result = r;
        finished = true;
    });
    while (!finished && sys.eventq().step()) {
    }
    EXPECT_TRUE(finished);
    return result;
}

TEST(MemTrace, ParsesTextFormat)
{
    auto trace = MemTrace::parse(R"(
# comment line
10.5 r 1000
2 W 2080   # dependent write
0 w 30ff
)");
    ASSERT_EQ(trace.records.size(), 3u);
    EXPECT_EQ(trace.records[0].delay, 10500u);
    EXPECT_FALSE(trace.records[0].isWrite);
    EXPECT_FALSE(trace.records[0].dependent);
    EXPECT_EQ(trace.records[0].addr, 0x1000u);
    EXPECT_TRUE(trace.records[1].isWrite);
    EXPECT_TRUE(trace.records[1].dependent);
    EXPECT_EQ(trace.records[1].addr, 0x2080u);
    // Addresses align down to the 128 B line.
    EXPECT_EQ(trace.records[2].addr, 0x3080u & ~Addr(127));
}

TEST(MemTrace, RejectsGarbage)
{
    EXPECT_THROW(MemTrace::parse("10 x 1000"), FatalError);
    EXPECT_THROW(MemTrace::parse("10 r"), FatalError);
}

TEST(MemTrace, FormatRoundTrips)
{
    auto t = MemTrace::synthesize(50, nanoseconds(20), 1 * MiB, 0.3,
                                  0.2, 7);
    auto back = MemTrace::parse(t.format());
    ASSERT_EQ(back.records.size(), t.records.size());
    for (std::size_t i = 0; i < t.records.size(); ++i) {
        EXPECT_EQ(back.records[i].addr, t.records[i].addr);
        EXPECT_EQ(back.records[i].isWrite, t.records[i].isWrite);
        EXPECT_EQ(back.records[i].dependent,
                  t.records[i].dependent);
    }
}

TEST(TraceReplay, RuntimeRespondsToMemoryLatency)
{
    // The point of the facility: one trace, two knob settings, the
    // dependent-heavy trace stretches with the latency.
    auto trace = MemTrace::synthesize(400, nanoseconds(30), 16 * MiB,
                                      0.3, 0.6, 11);
    Power8System a(smallCard());
    ASSERT_TRUE(a.train());
    auto r0 = replay(a, trace);

    Power8System b(smallCard());
    ASSERT_TRUE(b.train());
    b.card()->mbs().setKnobPosition(7);
    auto r7 = replay(b, trace);

    EXPECT_EQ(r0.reads + r0.writes, 400u);
    EXPECT_GT(double(r7.runtime), double(r0.runtime) * 1.15);
    // Both runs share the same compute floor.
    EXPECT_EQ(r0.computeTime, r7.computeTime);
}

TEST(TraceReplay, IndependentTraceOverlapsAccesses)
{
    // With no dependent records and a wide window, the runtime sits
    // near the compute floor rather than latency * records.
    auto trace = MemTrace::synthesize(300, nanoseconds(100),
                                      16 * MiB, 0.3, 0.0, 13);
    Power8System sys(smallCard());
    ASSERT_TRUE(sys.train());
    auto r = replay(sys, trace);
    double floor_ns = ticksToNs(r.computeTime);
    double runtime_ns = ticksToNs(r.runtime);
    EXPECT_LT(runtime_ns, floor_ns * 1.6);
}

TEST(TraceReplay, DependentRecordsDrainTheWindow)
{
    // A fully dependent trace serializes: runtime ~ n * latency.
    auto trace = MemTrace::synthesize(100, nanoseconds(5), 16 * MiB,
                                      0.0, 1.0, 17);
    Power8System sys(smallCard());
    ASSERT_TRUE(sys.train());
    auto r = replay(sys, trace);
    double per_access = ticksToNs(r.runtime) / 100.0;
    // ~388 ns memory + 44 ns nest overhead + trace delay.
    EXPECT_GT(per_access, 350.0);
    EXPECT_LT(per_access, 520.0);
}

} // namespace
